"""Ablation: ring vs recursive halving-doubling AllReduce.

The paper selects halving-doubling because its number of communication
steps grows logarithmically with the number of agents.  This ablation sweeps
the agent count and reports both algorithms' completion time for the
ResNet-56 model size over a 10 Mbps bottleneck link, plus the effect of the
optional quantized-gradient compressor.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.models.resnet import resnet56_spec
from repro.network.allreduce import halving_doubling_allreduce, ring_allreduce
from repro.network.compression import QuantizationCompressor
from repro.utils.units import mbps_to_bytes_per_second

MODEL_BYTES = resnet56_spec().model_bytes
BANDWIDTH = mbps_to_bytes_per_second(10.0)
AGENT_COUNTS = (4, 8, 16, 32, 64, 128)


def test_allreduce_algorithm_sweep(benchmark):
    """Ring vs halving-doubling completion time across agent counts."""

    def run():
        rows = []
        for count in AGENT_COUNTS:
            ring = ring_allreduce(MODEL_BYTES, count, BANDWIDTH)
            hd = halving_doubling_allreduce(MODEL_BYTES, count, BANDWIDTH)
            compressed = halving_doubling_allreduce(
                MODEL_BYTES, count, BANDWIDTH, compressor=QuantizationCompressor(bits=8)
            )
            rows.append((count, ring, hd, compressed))
        return rows

    rows = run_once(benchmark, run)
    print("\n=== Ablation: AllReduce algorithms (ResNet-56, 10 Mbps bottleneck) ===")
    print("agents   ring steps  ring (s)   h/d steps   h/d (s)   h/d+8-bit (s)")
    for count, ring, hd, compressed in rows:
        print(
            f"{count:6d}   {ring.steps:10d} {ring.time_seconds:9.2f}   "
            f"{hd.steps:9d} {hd.time_seconds:9.2f}   {compressed.time_seconds:13.2f}"
        )
        # Identical per-agent volume; the halving-doubling algorithm pays far
        # fewer latency terms, and compression strictly reduces its time.
        assert abs(ring.per_agent_bytes - hd.per_agent_bytes) < 1e-6
        assert compressed.time_seconds < hd.time_seconds

    large = rows[-1]
    benchmark.extra_info["ring_vs_hd_time_ratio_at_128"] = round(
        large[1].time_seconds / large[2].time_seconds, 3
    )
    assert large[2].steps < large[1].steps
