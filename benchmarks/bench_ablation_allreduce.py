"""Ablation: ring vs recursive halving-doubling AllReduce.

The paper selects halving-doubling because its number of communication
steps grows logarithmically with the number of agents.  This ablation
sweeps the agent count — declared as a
:class:`~repro.experiments.campaign.CampaignSpec` (one cell per population
size) — and reports both algorithms' completion time for the ResNet-56
model size over a 10 Mbps bottleneck link, plus the effect of the optional
quantized-gradient compressor.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.ablations import ALLREDUCE_AGENT_COUNTS, allreduce_spec
from repro.experiments.campaign import execute_campaign


def test_allreduce_algorithm_sweep(benchmark):
    """Ring vs halving-doubling completion time across agent counts."""
    spec = allreduce_spec()

    def run():
        return execute_campaign(spec).payloads()

    rows = run_once(benchmark, run)
    print("\n=== Ablation: AllReduce algorithms (ResNet-56, 10 Mbps bottleneck) ===")
    print("agents   ring steps  ring (s)   h/d steps   h/d (s)   h/d+8-bit (s)")
    for row in rows:
        print(
            f"{row['num_agents']:6d}   {row['ring_steps']:10d} {row['ring_seconds']:9.2f}   "
            f"{row['hd_steps']:9d} {row['hd_seconds']:9.2f}   {row['compressed_seconds']:13.2f}"
        )
        # Identical per-agent volume; the halving-doubling algorithm pays far
        # fewer latency terms, and compression strictly reduces its time.
        assert abs(row["ring_per_agent_bytes"] - row["hd_per_agent_bytes"]) < 1e-6
        assert row["compressed_seconds"] < row["hd_seconds"]

    assert [row["num_agents"] for row in rows] == list(ALLREDUCE_AGENT_COUNTS)
    large = rows[-1]
    benchmark.extra_info["ring_vs_hd_time_ratio_at_128"] = round(
        large["ring_seconds"] / large["hd_seconds"], 3
    )
    assert large["hd_steps"] < large["ring_steps"]
