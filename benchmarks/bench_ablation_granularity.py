"""Ablation: number of candidate split models M.

DESIGN.md calls out the split-candidate granularity as a design choice: the
paper profiles M split models per architecture, and the scheduler evaluates
all of them for every candidate helper.  Finer granularity can only improve
the chosen pairing (more split options) but increases scheduling cost.  The
grid is declared as a :class:`~repro.experiments.campaign.CampaignSpec`
(one cell per granularity) and executed on the shared campaign engine.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.ablations import GRANULARITIES, granularity_spec
from repro.experiments.campaign import execute_campaign


def test_split_granularity_ablation(benchmark):
    """Makespan and candidate count as the split granularity is refined."""
    spec = granularity_spec()

    def run():
        return execute_campaign(spec).payloads()

    rows = run_once(benchmark, run)
    print("\n=== Ablation: split-candidate granularity (10 agents, ResNet-56) ===")
    print("granularity   candidates M   round makespan (s)")
    for row in rows:
        print(
            f"{row['granularity']:11d}   {row['candidates']:12d}   "
            f"{row['makespan_seconds']:18.1f}"
        )

    assert [row["granularity"] for row in rows] == list(GRANULARITIES)
    coarse_makespan = rows[0]["makespan_seconds"]
    fine_makespan = rows[-1]["makespan_seconds"]
    benchmark.extra_info["coarse_vs_fine_makespan_ratio"] = round(
        coarse_makespan / fine_makespan, 3
    )
    # Finer granularity never hurts the achievable makespan.
    assert fine_makespan <= coarse_makespan * 1.001
