"""Ablation: number of candidate split models M.

DESIGN.md calls out the split-candidate granularity as a design choice: the
paper profiles M split models per architecture, and the scheduler evaluates
all of them for every candidate helper.  Finer granularity can only improve
the chosen pairing (more split options) but increases scheduling cost.  This
ablation quantifies both effects on a 10-agent heterogeneous population.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.agents.registry import AgentRegistry
from repro.core.pairing import greedy_pairing, pairing_makespan
from repro.core.profiling import profile_architecture
from repro.models.resnet import resnet56_spec
from repro.network.link import LinkModel
from repro.network.topology import full_topology

GRANULARITIES = (27, 13, 9, 6, 3, 1)


def test_split_granularity_ablation(benchmark):
    """Makespan and candidate count as the split granularity is refined."""
    spec = resnet56_spec()
    registry = AgentRegistry.build(
        num_agents=10,
        rng=np.random.default_rng(7),
        samples_per_agent=1_000,
        batch_size=100,
    )
    link_model = LinkModel(full_topology(registry.ids))

    def run():
        rows = []
        for granularity in GRANULARITIES:
            profile = profile_architecture(spec, granularity=granularity)
            decisions = greedy_pairing(registry.agents, link_model, profile)
            rows.append(
                (granularity, profile.num_options, pairing_makespan(decisions))
            )
        return rows

    rows = run_once(benchmark, run)
    print("\n=== Ablation: split-candidate granularity (10 agents, ResNet-56) ===")
    print("granularity   candidates M   round makespan (s)")
    for granularity, options, makespan in rows:
        print(f"{granularity:11d}   {options:12d}   {makespan:18.1f}")

    coarse_makespan = rows[0][2]
    fine_makespan = rows[-1][2]
    benchmark.extra_info["coarse_vs_fine_makespan_ratio"] = round(
        coarse_makespan / fine_makespan, 3
    )
    # Finer granularity never hurts the achievable makespan.
    assert fine_makespan <= coarse_makespan * 1.001
