"""Ablation: how much ComDML's gain depends on resource heterogeneity.

The paper motivates workload balancing with heterogeneous agents; this
ablation sweeps the spread of CPU profiles (from homogeneous to the paper's
full 4–0.2 range) and reports ComDML's round-makespan reduction over the
no-balancing AllReduce baseline.  Gains should vanish for homogeneous
populations and grow with heterogeneity.  The sweep is a
:class:`~repro.experiments.campaign.CampaignSpec` (one cell per CPU spread)
executed on the shared campaign engine.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.ablations import heterogeneity_spec
from repro.experiments.campaign import execute_campaign


def test_heterogeneity_ablation(benchmark):
    """ComDML's makespan reduction as a function of CPU heterogeneity."""
    spec = heterogeneity_spec()

    def run():
        return execute_campaign(spec).payloads()

    rows = run_once(benchmark, run)
    print("\n=== Ablation: gain vs resource heterogeneity (10 agents) ===")
    print("population                          no-balancing (s)   ComDML (s)   reduction")
    for row in rows:
        print(
            f"{row['spread']:34s}   {row['unbalanced_seconds']:15.1f}   "
            f"{row['balanced_seconds']:10.1f}   {row['reduction']:9.1%}"
        )

    reductions = [row["reduction"] for row in rows]
    benchmark.extra_info["reductions"] = [round(r, 3) for r in reductions]
    # Homogeneous populations gain (almost) nothing; the paper's profile mix
    # gains the most.
    assert reductions[0] < 0.05
    assert reductions[-1] == max(reductions)
    assert reductions[-1] > 0.4
