"""Ablation: how much ComDML's gain depends on resource heterogeneity.

The paper motivates workload balancing with heterogeneous agents; this
ablation sweeps the spread of CPU profiles (from homogeneous to the paper's
full 4–0.2 range) and reports ComDML's round-makespan reduction over the
no-balancing AllReduce baseline.  Gains should vanish for homogeneous
populations and grow with heterogeneity.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.agents.registry import AgentRegistry
from repro.agents.resources import ResourceProfile
from repro.core.pairing import greedy_pairing, pairing_makespan
from repro.core.profiling import profile_architecture
from repro.core.workload import individual_training_time
from repro.models.resnet import resnet56_spec
from repro.network.link import LinkModel
from repro.network.topology import full_topology

PROFILE = profile_architecture(resnet56_spec(), granularity=6)

CPU_SPREADS = {
    "homogeneous (1.0 only)": [1.0],
    "mild (2.0 / 1.0)": [2.0, 1.0],
    "moderate (4.0 / 1.0 / 0.5)": [4.0, 1.0, 0.5],
    "paper (4 / 2 / 1 / 0.5 / 0.2)": [4.0, 2.0, 1.0, 0.5, 0.2],
}


def _population(cpu_pool, num_agents=10, seed=0):
    rng = np.random.default_rng(seed)
    profiles = [
        ResourceProfile(cpu_share=float(cpu_pool[i % len(cpu_pool)]), bandwidth_mbps=50.0)
        for i in range(num_agents)
    ]
    return AgentRegistry.build(
        num_agents=num_agents, rng=rng, samples_per_agent=1_000, profiles=profiles
    )


def test_heterogeneity_ablation(benchmark):
    """ComDML's makespan reduction as a function of CPU heterogeneity."""

    def run():
        rows = []
        for name, cpu_pool in CPU_SPREADS.items():
            registry = _population(cpu_pool)
            link_model = LinkModel(full_topology(registry.ids))
            decisions = greedy_pairing(registry.agents, link_model, PROFILE)
            balanced = pairing_makespan(decisions)
            unbalanced = max(
                individual_training_time(agent, PROFILE, 100)
                for agent in registry.agents
            )
            reduction = 1.0 - balanced / unbalanced
            rows.append((name, unbalanced, balanced, reduction))
        return rows

    rows = run_once(benchmark, run)
    print("\n=== Ablation: gain vs resource heterogeneity (10 agents) ===")
    print("population                          no-balancing (s)   ComDML (s)   reduction")
    for name, unbalanced, balanced, reduction in rows:
        print(f"{name:34s}   {unbalanced:15.1f}   {balanced:10.1f}   {reduction:9.1%}")

    reductions = [row[3] for row in rows]
    benchmark.extra_info["reductions"] = [round(r, 3) for r in reductions]
    # Homogeneous populations gain (almost) nothing; the paper's profile mix
    # gains the most.
    assert reductions[0] < 0.05
    assert reductions[-1] == max(reductions)
    assert reductions[-1] > 0.4
