"""Ablation: greedy decentralized pairing vs the exact integer program.

The paper's pairing scheduler is a greedy heuristic for the integer program
of Eq. (5).  This ablation measures how close the greedy makespan gets to
the exhaustive optimum on small populations (where the exact solver is
feasible) — declared as a :class:`~repro.experiments.campaign.CampaignSpec`
(one cell per population seed) — and benchmarks the scheduling cost of the
greedy pairing itself at the paper's population sizes.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.agents.registry import AgentRegistry
from repro.core.pairing import greedy_pairing
from repro.core.profiling import profile_architecture
from repro.experiments.ablations import pairing_spec
from repro.experiments.campaign import execute_campaign
from repro.models.resnet import resnet56_spec
from repro.network.link import LinkModel
from repro.network.topology import full_topology

PROFILE = profile_architecture(resnet56_spec(), granularity=9)


def _population(num_agents: int, seed: int) -> AgentRegistry:
    return AgentRegistry.build(
        num_agents=num_agents,
        rng=np.random.default_rng(seed),
        samples_per_agent=1_000,
        batch_size=100,
    )


def test_greedy_vs_exact_makespan(benchmark):
    """Greedy pairing must stay close to the exhaustive optimum (8 agents)."""
    spec = pairing_spec(seeds=tuple(range(5)), num_agents=8)

    def run():
        return execute_campaign(spec).payloads()

    rows = run_once(benchmark, run)
    print("\n=== Ablation: greedy pairing vs exact integer program (8 agents) ===")
    print("seed    greedy (s)    exact (s)    ratio")
    for row in rows:
        print(
            f"{row['seed']:4d}   {row['greedy_seconds']:10.1f}   "
            f"{row['exact_seconds']:10.1f}   {row['ratio']:6.3f}"
        )
    ratios = [row["ratio"] for row in rows]
    benchmark.extra_info["worst_ratio"] = round(max(ratios), 3)
    # The greedy scheduler should be within 25 % of the exact optimum.
    assert max(ratios) < 1.25


@pytest.mark.parametrize("num_agents", [10, 50, 100])
def test_greedy_pairing_scheduling_cost(benchmark, num_agents):
    """Wall-clock cost of one round of greedy pairing at paper population sizes."""
    registry = _population(num_agents, seed=0)
    link_model = LinkModel(full_topology(registry.ids))

    result = benchmark(greedy_pairing, registry.agents, link_model, PROFILE)
    assert len(result) >= num_agents / 2
