"""Benchmark harness for Figure 1: round timeline with and without balancing."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.fig1 import run_fig1


def test_fig1_workload_balancing_timeline(benchmark):
    """Reproduce the Figure 1 comparison for a heterogeneous 2-agent round."""
    timeline = run_once(benchmark, run_fig1)
    print("\n=== Figure 1: one round, with vs without workload balancing ===")
    print(f"slow agent solo time          : {timeline.slow_solo_time:10.1f} s")
    print(f"fast agent solo time          : {timeline.fast_solo_time:10.1f} s")
    print(f"round time without balancing  : {timeline.round_time_without_balancing:10.1f} s")
    print(f"idle time without balancing   : {timeline.idle_without_balancing:10.1f} s")
    print(f"offloaded layers (chosen)     : {timeline.offloaded_layers:10d}")
    print(f"communication overhead        : {timeline.communication_overhead:10.1f} s")
    print(f"round time with balancing     : {timeline.round_time_with_balancing:10.1f} s")
    print(f"idle time with balancing      : {timeline.idle_with_balancing:10.1f} s")
    print(f"round-time reduction          : {timeline.round_time_reduction_fraction:10.1%}")

    benchmark.extra_info["reduction_fraction"] = round(
        timeline.round_time_reduction_fraction, 3
    )
    assert timeline.round_time_with_balancing < timeline.round_time_without_balancing
    assert timeline.idle_with_balancing < timeline.idle_without_balancing
