"""Benchmark harness for Figure 3: 20 % link connectivity, 50 agents.

Regenerates the limited-connectivity comparison (random topology keeping
20 % of the full graph's links) on the three I.I.D. datasets and prints the
total-training-time series behind the paper's bar chart.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.fig3 import format_fig3, run_fig3


def test_fig3_limited_connectivity(benchmark):
    """Reproduce Figure 3 (all datasets, all methods, sparse random topology)."""
    bars = run_once(benchmark, run_fig3)
    print("\n=== Figure 3: time (s) to target accuracy under 20% connectivity ===")
    print(format_fig3(bars))

    lookup = {(bar.dataset, bar.method): bar for bar in bars}
    datasets = sorted({bar.dataset for bar in bars})
    for dataset in datasets:
        comdml = lookup[(dataset, "ComDML")]
        assert comdml.time_to_target_seconds is not None, (
            f"ComDML failed to reach the target on {dataset} under sparse connectivity"
        )
        for method in ("Gossip Learning", "BrainTorrent", "AllReduce", "FedAvg"):
            baseline = lookup[(dataset, method)]
            if baseline.time_to_target_seconds is None:
                continue
            assert comdml.time_to_target_seconds < baseline.time_to_target_seconds
            benchmark.extra_info[f"{dataset}_speedup_vs_{method.replace(' ', '_')}"] = round(
                baseline.time_to_target_seconds / comdml.time_to_target_seconds, 2
            )
