"""Micro-benchmarks of the hot paths (proper pytest-benchmark statistics).

These are not paper reproductions; they track the library's own performance:
split profiling, the per-pair offload optimisation, round-timing assembly,
and one round of local-loss split training of the proxy model.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents.agent import Agent
from repro.agents.registry import AgentRegistry
from repro.agents.resources import ResourceProfile
from repro.core.pairing import greedy_pairing
from repro.core.profiling import profile_architecture
from repro.core.timing import compute_round_timing
from repro.core.workload import best_offload
from repro.data.synthetic import cifar10_like
from repro.models.proxy import ProxyModelFactory
from repro.models.resnet import resnet56_spec, resnet110_spec
from repro.network.link import LinkModel
from repro.network.topology import full_topology
from repro.training.local_loss import LocalLossSplitTrainer
from repro.utils.units import mbps_to_bytes_per_second


@pytest.mark.parametrize("spec_builder", [resnet56_spec, resnet110_spec])
def test_profile_architecture_speed(benchmark, spec_builder):
    """Cost of full-granularity split profiling."""
    spec = spec_builder()
    profile = benchmark(profile_architecture, spec, None, 1)
    assert profile.num_options == spec.num_layers


def test_best_offload_speed(benchmark):
    """Cost of one AgentTrainingTime minimisation over all split candidates."""
    profile = profile_architecture(resnet56_spec(), granularity=1)
    slow = Agent(0, ResourceProfile(0.2, 50.0), num_samples=5_000, batch_size=100)
    fast = Agent(1, ResourceProfile(4.0, 100.0), num_samples=5_000, batch_size=100)
    estimate = benchmark(
        best_offload, slow, fast, profile, mbps_to_bytes_per_second(50.0)
    )
    assert estimate.offloaded_layers > 0


def test_round_timing_speed(benchmark):
    """Cost of planning and timing one 50-agent round."""
    registry = AgentRegistry.build(
        num_agents=50, rng=np.random.default_rng(0), samples_per_agent=1_000
    )
    profile = profile_architecture(resnet56_spec(), granularity=9)
    link_model = LinkModel(full_topology(registry.ids))

    def plan_and_time():
        decisions = greedy_pairing(registry.agents, link_model, profile)
        return compute_round_timing(decisions, registry, profile)

    timing = benchmark(plan_and_time)
    assert timing.total_time > 0


def test_local_loss_split_training_round(benchmark):
    """Cost of one real local-loss split-training round on the proxy model."""
    train, _ = cifar10_like(train_samples=500, test_samples=100, num_features=32, seed=0)
    factory = ProxyModelFactory(
        spec=resnet56_spec(), input_features=32, num_blocks=3, width=32
    )
    trainer = LocalLossSplitTrainer(learning_rate=0.03, batch_size=50)

    def round_of_training():
        split = factory.build_split(27, rng=np.random.default_rng(1))
        return trainer.train(split, train)

    result = benchmark(round_of_training)
    assert result.batches > 0
