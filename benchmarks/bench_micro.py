"""Micro-benchmarks of the hot paths (proper pytest-benchmark statistics).

These are not paper reproductions; they track the library's own performance:
split profiling, the per-pair offload optimisation, round-timing assembly
(both the vectorized kernel and the scalar reference it replaced, so every
run records the speedup on the same machine), and one round of local-loss
split training of the proxy model.

``tools/bench_trajectory.py`` runs this suite and appends the medians to
the repo's perf history (``BENCH_<n>.json``); see docs/performance.md.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import attach_peak_memory
from repro.agents.agent import Agent
from repro.agents.registry import AgentRegistry
from repro.agents.resources import ResourceProfile
from repro.core.csr import IncrementalCsr
from repro.core.fastpath import PairCostModel
from repro.core.pairing import greedy_pairing, greedy_pairing_reference
from repro.core.planner import PlannerStats, PrunedPlanner
from repro.core.shard import ShardedPlanner
from repro.core.profiling import profile_architecture
from repro.core.timing import compute_round_timing
from repro.core.workload import best_offload
from repro.data.synthetic import cifar10_like
from repro.models.proxy import ProxyModelFactory
from repro.models.resnet import resnet56_spec, resnet110_spec
from repro.network.link import LinkModel
from repro.network.topology import full_topology, random_k_topology, ring_topology
from repro.training.local_loss import LocalLossSplitTrainer
from repro.utils.units import mbps_to_bytes_per_second


@pytest.mark.parametrize("spec_builder", [resnet56_spec, resnet110_spec])
def test_profile_architecture_speed(benchmark, spec_builder):
    """Cost of full-granularity split profiling (cold cache every round)."""
    spec = spec_builder()

    def profile_cold():
        profile_architecture.cache_clear()
        return profile_architecture(spec, None, 1)

    profile = benchmark(profile_cold)
    assert profile.num_options == spec.num_layers


def test_best_offload_speed(benchmark):
    """Cost of one AgentTrainingTime minimisation over all split candidates."""
    profile = profile_architecture(resnet56_spec(), granularity=1)
    slow = Agent(0, ResourceProfile(0.2, 50.0), num_samples=5_000, batch_size=100)
    fast = Agent(1, ResourceProfile(4.0, 100.0), num_samples=5_000, batch_size=100)
    estimate = benchmark(
        best_offload, slow, fast, profile, mbps_to_bytes_per_second(50.0)
    )
    assert estimate.offloaded_layers > 0


def _round_planning_workload():
    """The 50-agent plan-and-time workload shared by the two paths below."""
    registry = AgentRegistry.build(
        num_agents=50, rng=np.random.default_rng(0), samples_per_agent=1_000
    )
    profile = profile_architecture(resnet56_spec(), granularity=9)
    link_model = LinkModel(full_topology(registry.ids))
    return registry, profile, link_model


def test_round_timing_speed(benchmark):
    """Cost of planning and timing one 50-agent round (vectorized kernel).

    This is the gated trajectory bench: CI fails if its median regresses
    more than 2x against the committed ``BENCH_5.json`` baseline.
    """
    registry, profile, link_model = _round_planning_workload()

    def plan_and_time():
        decisions = greedy_pairing(registry.agents, link_model, profile)
        return compute_round_timing(decisions, registry, profile)

    timing = benchmark(plan_and_time)
    assert timing.total_time > 0


def test_round_timing_speed_scalar(benchmark):
    """The same 50-agent round on the scalar reference path.

    Kept so every trajectory run records the kernel speedup on identical
    hardware (vectorized vs scalar medians in one BENCH json).
    """
    registry, profile, link_model = _round_planning_workload()

    def plan_and_time_scalar():
        decisions = greedy_pairing_reference(registry.agents, link_model, profile)
        return compute_round_timing(decisions, registry, profile)

    timing = benchmark(plan_and_time_scalar)
    assert timing.total_time > 0


def test_pair_cost_model_speed(benchmark):
    """Cost of one kernel evaluation (the full 50x50xM pair-time tensor)."""
    registry, profile, link_model = _round_planning_workload()

    model = benchmark(
        PairCostModel, registry.agents, profile, link_model=link_model
    )
    assert np.isfinite(model.best_pair_times).any()


def test_local_loss_split_training_round(benchmark):
    """Cost of one real local-loss split-training round on the proxy model."""
    train, _ = cifar10_like(train_samples=500, test_samples=100, num_features=32, seed=0)
    factory = ProxyModelFactory(
        spec=resnet56_spec(), input_features=32, num_blocks=3, width=32
    )
    trainer = LocalLossSplitTrainer(learning_rate=0.03, batch_size=50)

    def round_of_training():
        split = factory.build_split(27, rng=np.random.default_rng(1))
        return trainer.train(split, train)

    result = benchmark(round_of_training)
    assert result.batches > 0


# ----------------------------------------------------------------------
# Scalable-planner scaling curve (PR 6)
# ----------------------------------------------------------------------
#: Candidate budget used by every pruned-planner bench.
PLANNER_TOP_K = 8

#: The scaling grid.  The full topology stops at n=500: the benches time
#: the planner, not networkx's O(n²) complete-graph construction (the
#: planner itself handles complete graphs via the O(n·k) global pool).
#: The sparse topologies extend to n=50 000, the first sharded-runtime
#: population (the 500 000 point lives in the ``scale500k``-marked
#: sharded benches below).  Population is the OUTER loop so every small
#: case — including the gated random-k-5000 point — runs before the
#: 50 000-agent cases dirty the process's memory state: the
#: --planner-dense-ratio gate compares medians within one run, and
#: hundreds of MB of allocator churn between the two benches skews the
#: pair by double-digit percentages.
PLANNER_SCALING_CASES = [
    pytest.param(kind, n, id=f"{kind}-{n}")
    for n in (50, 500, 5_000, 50_000)
    for kind in ("ring", "random-k", "full")
    if not (kind == "full" and n > 500)
]


def _planner_population(n: int) -> list[Agent]:
    """A heterogeneous n-agent population.

    Populations on the historical grid (n ≤ 5 000) keep the original
    per-agent draw order so their workloads — and the committed
    trajectory medians measured on them — stay comparable across
    snapshots.  Larger populations draw vectorized (the scalar loop's
    three RNG calls per agent are prohibitive at 500 000).
    """
    rng = np.random.default_rng(n)
    if n <= 5_000:
        return [
            Agent(
                agent_id=index,
                profile=ResourceProfile(
                    float(rng.choice([4.0, 2.0, 1.0, 0.5])),
                    float(rng.choice([10.0, 50.0, 100.0])),
                ),
                num_samples=int(rng.integers(200, 3_000)),
                batch_size=100,
            )
            for index in range(n)
        ]
    cpu_shares = rng.choice(np.array([4.0, 2.0, 1.0, 0.5]), size=n)
    bandwidths = rng.choice(np.array([10.0, 50.0, 100.0]), size=n)
    samples = rng.integers(200, 3_000, size=n)
    return [
        Agent(
            agent_id=index,
            profile=ResourceProfile(float(cpu_shares[index]), float(bandwidths[index])),
            num_samples=int(samples[index]),
            batch_size=100,
        )
        for index in range(n)
    ]


def _planner_link_model(agents: list[Agent], kind: str) -> LinkModel:
    ids = [agent.agent_id for agent in agents]
    if kind == "ring":
        return LinkModel(ring_topology(ids))
    if kind == "random-k":
        return LinkModel(random_k_topology(ids, 6, np.random.default_rng(1)))
    return LinkModel(full_topology(ids))


def test_dense_round_speed_500(benchmark):
    """The dense kernel planning a 500-agent round (comparison partner:
    the acceptance bar is pruned-5000 faster than dense-500).

    Defined ahead of the scaling curve so it runs before the
    50 000-agent cases for the same reason the grid puts population
    outermost: the --planner-dense-ratio gate pairs this bench with
    random-k-5000 and both must see a comparably clean process.
    """
    profile = profile_architecture(resnet56_spec(), granularity=9)
    agents = _planner_population(500)
    link_model = _planner_link_model(agents, "random-k")

    decisions = benchmark(greedy_pairing, agents, link_model, profile)
    assert decisions


@pytest.mark.parametrize("kind, n", PLANNER_SCALING_CASES)
def test_planner_round_speed(benchmark, kind, n):
    """Steady-state pruned-planner round: 1% churn, then plan.

    This is the scaling-curve bench: ``tools/bench_trajectory.py`` fits
    the exponent of median-vs-n on the random-k column and CI fails if
    planning cost grows super-linearly beyond tolerance, or if the 5000-
    agent round is slower than the dense kernel's 500-agent round.
    """
    profile = profile_architecture(resnet56_spec(), granularity=9)
    agents = _planner_population(n)
    link_model = _planner_link_model(agents, kind)
    planner = PrunedPlanner(profile, link_model, top_k=PLANNER_TOP_K)
    planner.plan(agents)  # first-round build happens outside the timer
    churned = max(1, n // 100)
    rng = np.random.default_rng(99)

    def dynamics_round():
        for index in rng.choice(n, size=churned, replace=False):
            agent = agents[int(index)]
            agent.update_profile(
                ResourceProfile(
                    float(rng.choice([4.0, 2.0, 1.0, 0.5])),
                    agent.profile.bandwidth_mbps,
                )
            )
        return planner.plan(agents)

    decisions, taus_by_id = benchmark(dynamics_round)
    attach_peak_memory(benchmark, dynamics_round)
    assert len(taus_by_id) == n
    assert decisions


def test_planner_cold_build_speed(benchmark):
    """Worst case: plan 5 000 agents from scratch (no caches at all)."""
    profile = profile_architecture(resnet56_spec(), granularity=9)
    agents = _planner_population(5_000)
    link_model = _planner_link_model(agents, "random-k")

    def cold_plan():
        planner = PrunedPlanner(profile, link_model, top_k=PLANNER_TOP_K)
        return planner.plan(agents)

    decisions, _ = benchmark(cold_plan)
    assert decisions


# ----------------------------------------------------------------------
# Sharded-runtime scaling (PR 8, extended to 1M in PR 9): 50k–1M agents
# ----------------------------------------------------------------------
#: Worker count of the sharded benches.  Explicit rather than "auto" so
#: the bench measures the same configuration on every host (on a
#: single-core box "auto" resolves to 1 and would silently bench the
#: plain pruned path).
SHARDED_BENCH_SHARDS = 2

SHARDED_POPULATIONS = [
    pytest.param(50_000, id="50000"),
    pytest.param(500_000, id="500000", marks=pytest.mark.scale500k),
    pytest.param(1_000_000, id="1000000", marks=pytest.mark.scale1m),
]


@pytest.mark.parametrize("n", SHARDED_POPULATIONS)
def test_sharded_planner_round_speed(benchmark, n):
    """Steady-state sharded round: 1% churn, coalesced replan over the pool.

    Same workload shape as ``test_planner_round_speed`` so the trajectory
    tool can report a same-run sharded-vs-single-process ratio at 50 000
    agents (gated by ``--shard-ratio``).  The 500 000-agent point carries
    the ``scale500k`` marker: it is the sharded runtime's headline
    population but too slow for every CI run.  The 1 000 000-agent point
    (``scale1m``) extends the curve one octave further; it exists to prove
    the incremental CSR engine and double-buffered segments keep
    steady-state rounds tractable where a full O(E) rescan per round would
    not be, and its peak-memory columns bound the footprint of the shared
    segments at that population.
    """
    profile = profile_architecture(resnet56_spec(), granularity=9)
    agents = _planner_population(n)
    link_model = _planner_link_model(agents, "random-k")
    planner = ShardedPlanner(
        profile,
        link_model,
        top_k=PLANNER_TOP_K,
        shards=SHARDED_BENCH_SHARDS,
        shard_min_population=0,
    )
    try:
        planner.plan(agents)  # pool spin-up + cold build outside the timer
        churned = max(1, n // 100)
        rng = np.random.default_rng(99)

        def dynamics_round():
            indices = rng.choice(n, size=churned, replace=False)
            cpu_shares = rng.choice(np.array([4.0, 2.0, 1.0, 0.5]), size=churned)
            for index, cpu in zip(indices, cpu_shares):
                agent = agents[int(index)]
                agent.update_profile(
                    ResourceProfile(float(cpu), agent.profile.bandwidth_mbps)
                )
            return planner.plan(agents)

        decisions, taus_by_id = benchmark(dynamics_round)
        attach_peak_memory(benchmark, dynamics_round)
        benchmark.extra_info["sharded_rounds"] = planner.shard_stats.sharded_rounds
        benchmark.extra_info["worker_failures"] = planner.shard_stats.worker_failures
        benchmark.extra_info["cost_spread_max"] = round(
            planner.shard_stats.cost_spread_max, 4
        )
        assert len(taus_by_id) == n
        assert decisions
        assert planner.shard_stats.sharded_rounds >= 1
        assert planner.shard_stats.worker_failures == 0
    finally:
        planner.close()


def test_sharded_planner_cold_build_speed(benchmark):
    """Worst case at 50 000 agents: pool spin-up, parallel CSR build from
    the raw topology, and a first full plan — no warm state at all."""
    profile = profile_architecture(resnet56_spec(), granularity=9)
    agents = _planner_population(50_000)
    link_model = _planner_link_model(agents, "random-k")

    def cold_plan():
        planner = ShardedPlanner(
            profile,
            link_model,
            top_k=PLANNER_TOP_K,
            shards=SHARDED_BENCH_SHARDS,
            shard_min_population=0,
        )
        try:
            return planner.plan(agents)
        finally:
            planner.close()

    decisions, _ = benchmark.pedantic(cold_plan, rounds=3, iterations=1)
    assert decisions


# ----------------------------------------------------------------------
# Incremental CSR engine (PR 9): arrival-wave edit vs full rebuild
# ----------------------------------------------------------------------
#: Base population of the arrival-wave CSR benches.
CSR_WAVE_POPULATION = 50_000

#: Agents arriving per timed wave.  Small relative to the population so
#: the incremental bench measures the O(Δ) edit path; the rebuild bench
#: applies the *same* wave but pays the O(E) from-scratch price, and
#: ``tools/bench_trajectory.py`` gates on the same-run ratio
#: (``--csr-ratio``).
CSR_WAVE_ARRIVALS = 500

#: Timed waves per bench.  Bounded so the journal window
#: (``MAX_JOURNAL_EVENTS``) never overflows mid-bench — an overflow would
#: silently degrade the incremental path to a rebuild and void the ratio.
CSR_WAVE_ROUNDS = 5


def _csr_wave_topology():
    ids = list(range(CSR_WAVE_POPULATION))
    return random_k_topology(ids, 6, np.random.default_rng(17))


def _apply_arrival_wave(topology, rng, next_id):
    """Journal ``CSR_WAVE_ARRIVALS`` arrivals, each wired to 3 peers."""
    for offset in range(CSR_WAVE_ARRIVALS):
        neighbors = rng.integers(0, CSR_WAVE_POPULATION, size=3)
        topology.add_agent(
            next_id + offset,
            sorted({int(neighbor) for neighbor in neighbors}),
        )
    return next_id + CSR_WAVE_ARRIVALS


def test_csr_arrival_wave_incremental_speed(benchmark):
    """O(Δ) path: absorbing a 500-agent arrival wave as journal edits.

    Each timed round syncs one wave the untimed ``setup`` journalled —
    the engine appends rows and stages neighbour-column inserts in its
    delta lists, cost proportional to the wave, not the graph.  The
    topology mutation itself is deliberately outside the timer: both
    benches of the pair pay it identically, and the ``--csr-ratio`` gate
    compares the *engine* paths, not ``add_agent`` bookkeeping.  The
    assertions pin that the timed rounds really took the edit path: no
    rebuild beyond the initial build and no journal truncation.
    """
    topology = _csr_wave_topology()
    stats = PlannerStats()
    csr = IncrementalCsr(topology, stats=stats)
    assert csr.sync() is None  # initial O(E) build, outside the timer
    rng = np.random.default_rng(23)
    state = {"next_id": CSR_WAVE_POPULATION}

    def journal_wave():
        state["next_id"] = _apply_arrival_wave(topology, rng, state["next_id"])
        return (), {}

    affected = benchmark.pedantic(
        csr.sync, setup=journal_wave, rounds=CSR_WAVE_ROUNDS, iterations=1
    )
    benchmark.extra_info["csr_edits"] = stats.csr_edits
    benchmark.extra_info["csr_compactions"] = stats.csr_compactions
    assert affected is not None and len(affected) >= CSR_WAVE_ARRIVALS
    assert stats.csr_rebuilds == 1  # the initial build only


def test_csr_arrival_wave_rebuild_speed(benchmark):
    """O(E) reference: absorbing the same wave via a full rebuild.

    This is what every wave cost before the incremental engine — a
    from-scratch rescan of all ~300k links.  The trajectory tool divides
    this median by the incremental one and fails CI below 3×.
    """
    topology = _csr_wave_topology()
    csr = IncrementalCsr(topology)
    csr.rebuild()
    rng = np.random.default_rng(23)
    state = {"next_id": CSR_WAVE_POPULATION}

    def journal_wave():
        state["next_id"] = _apply_arrival_wave(topology, rng, state["next_id"])
        return (), {}

    benchmark.pedantic(
        csr.rebuild, setup=journal_wave, rounds=CSR_WAVE_ROUNDS, iterations=1
    )
    nodes, links = csr.counts()
    # Under --benchmark-disable pedantic runs a single round, so assert
    # on whole waves applied rather than the full round count.
    assert nodes >= CSR_WAVE_POPULATION + CSR_WAVE_ARRIVALS
    assert (nodes - CSR_WAVE_POPULATION) % CSR_WAVE_ARRIVALS == 0
    assert links > 0
