"""Benchmark harness for the privacy-integration results (Section V-B-4).

Runs real proxy-model training through the full ComDML pipeline once per
privacy mechanism (no protection, distance correlation α=0.5, patch
shuffling, differential privacy ε=0.5) and prints the accuracy comparison
the paper reports.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.privacy import format_privacy_results, run_privacy_comparison


def test_privacy_integration_accuracy(benchmark):
    """Reproduce the privacy-mechanism accuracy comparison."""
    results = run_once(benchmark, run_privacy_comparison)
    print("\n=== Privacy integration: ComDML accuracy per mechanism ===")
    print(format_privacy_results(results))

    by_mechanism = {result.mechanism: result for result in results}
    baseline = by_mechanism["none"]
    benchmark.extra_info["baseline_accuracy"] = round(baseline.final_accuracy, 3)

    for mechanism in ("distance_correlation", "patch_shuffle", "differential_privacy"):
        protected = by_mechanism[mechanism]
        benchmark.extra_info[f"{mechanism}_accuracy"] = round(protected.final_accuracy, 3)
        # Paper shape: each mechanism costs at most a few points of accuracy
        # relative to undefended ComDML training — it must not collapse.
        assert protected.final_accuracy > baseline.final_accuracy - 0.15
