"""Benchmark harness for Table I: 2-agent layer-offloading sweep.

Regenerates both resource settings of the paper's Table I (fast-agent train
time, communication time, combined idle time, total time for each offload
choice) and prints them in the paper's layout.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.table1 import format_table1, run_table1


def test_table1_layer_offloading_sweep(benchmark):
    """Reproduce Table I (both settings, all eight offload options)."""
    results = run_once(benchmark, run_table1)
    print("\n=== Table I: 2-agent training with varying layer offloading ===")
    print(format_table1(results))

    for setting_name, rows in results.items():
        by_offload = {row.layers_offloaded: row for row in rows}
        best = min(rows, key=lambda row: row.total_seconds)
        benchmark.extra_info[f"{setting_name}_best_offload"] = best.layers_offloaded
        benchmark.extra_info[f"{setting_name}_best_total_s"] = round(best.total_seconds)
        benchmark.extra_info[f"{setting_name}_no_offload_total_s"] = round(
            by_offload[0].total_seconds
        )

        # Paper shape: offloading beats no offloading, and the optimum is an
        # interior split (not the no-offload or offload-everything endpoint).
        assert best.total_seconds < by_offload[0].total_seconds
        assert 0 < best.layers_offloaded < 55
