"""Benchmark harness for Table II: 10-agent time-to-accuracy vs baselines.

Regenerates the full Table II grid (CIFAR-10 / CIFAR-100 / CINIC-10, I.I.D.
and non-I.I.D., five methods) and prints the time-to-target matrix in the
paper's layout.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.table2 import TABLE2_TARGETS, format_table2, run_table2


def test_table2_time_to_accuracy_grid(benchmark):
    """Reproduce Table II (all six dataset settings, all five methods)."""
    cells = run_once(benchmark, run_table2)
    print("\n=== Table II: training time (s) to target accuracy, 10 agents ===")
    print(format_table2(cells))

    lookup = {(c.method, c.dataset, c.iid): c for c in cells}
    for (dataset, iid), target in TABLE2_TARGETS.items():
        comdml = lookup[("ComDML", dataset, iid)]
        assert comdml.time_to_target_seconds is not None, (
            f"ComDML failed to reach {target} on {dataset} (iid={iid})"
        )
        for method in ("Gossip Learning", "BrainTorrent", "AllReduce", "FedAvg"):
            baseline = lookup[(method, dataset, iid)]
            if baseline.time_to_target_seconds is None:
                continue
            reduction = 1.0 - comdml.time_to_target_seconds / baseline.time_to_target_seconds
            benchmark.extra_info[
                f"{dataset}_{'iid' if iid else 'noniid'}_reduction_vs_{method.replace(' ', '_')}"
            ] = round(reduction, 3)
            # Paper headline: ComDML reduces training time substantially
            # (up to 71 %) against every baseline, in every setting.
            assert comdml.time_to_target_seconds < baseline.time_to_target_seconds
