"""Benchmark harness for Table III: scalability with 20 / 50 / 100 agents.

Regenerates the ResNet-56 and ResNet-110 scalability grid at the paper's
20 % participation rate and prints the time-to-80 % matrix.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.table3 import TABLE3_TARGET_ACCURACY, format_table3, run_table3


def test_table3_scalability_grid(benchmark):
    """Reproduce Table III (both models, 20/50/100 agents, all methods)."""
    cells = run_once(benchmark, run_table3)
    print("\n=== Table III: training time (s) to 80% accuracy, IID CIFAR-10 ===")
    print(format_table3(cells))

    lookup = {(c.model, c.num_agents, c.method): c for c in cells}
    models = sorted({c.model for c in cells})
    agent_counts = sorted({c.num_agents for c in cells})

    for model in models:
        comdml_times = []
        for count in agent_counts:
            comdml = lookup[(model, count, "ComDML")]
            assert comdml.time_to_target_seconds is not None
            comdml_times.append(comdml.time_to_target_seconds)
            for method in ("Gossip Learning", "BrainTorrent", "AllReduce", "FedAvg"):
                baseline = lookup[(model, count, method)]
                if baseline.time_to_target_seconds is None:
                    continue
                # ComDML retains its advantage at every scale.
                assert comdml.time_to_target_seconds < baseline.time_to_target_seconds
        benchmark.extra_info[f"{model}_comdml_times_s"] = [round(t) for t in comdml_times]
        # Scalability: going from 20 to 100 agents must not blow up ComDML's
        # training time (the paper observes graceful growth).
        assert comdml_times[-1] < comdml_times[0] * 3
