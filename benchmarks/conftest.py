"""Shared benchmark helpers.

Every experiment benchmark runs its harness exactly once (``rounds=1``) —
these are reproduction harnesses whose value is the produced table, not a
statistically tight latency estimate — and attaches the produced rows to
``benchmark.extra_info`` so they appear in the saved benchmark JSON.

Scaling benches additionally record their peak memory footprint
(:func:`attach_peak_memory`): the process high-water RSS plus the peak of
one *untimed* pass under ``tracemalloc``, both attached to
``benchmark.extra_info`` so ``tools/bench_trajectory.py`` snapshots carry
memory columns alongside the latency medians.
"""

from __future__ import annotations

import resource
import tracemalloc


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "scale500k: half-million-agent benches (slow; deselect with -m 'not scale500k')",
    )
    config.addinivalue_line(
        "markers",
        "scale1m: million-agent benches (slowest; deselect with -m 'not scale1m')",
    )


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment harness exactly once under pytest-benchmark."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


def attach_peak_memory(benchmark, function) -> None:
    """Record a bench workload's memory footprint in ``extra_info``.

    Runs ``function`` once more *outside* the timer under ``tracemalloc``
    (its several-fold allocation overhead must never touch the timed
    rounds) and records the traced peak, plus the process-wide high-water
    RSS — the number that decides whether a population fits on a host.
    """
    tracemalloc.start()
    try:
        function()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    ru_maxrss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    benchmark.extra_info["peak_traced_mb"] = round(peak / 2**20, 3)
    benchmark.extra_info["peak_rss_mb"] = round(ru_maxrss_kb / 1024, 3)
