"""Shared benchmark helpers.

Every experiment benchmark runs its harness exactly once (``rounds=1``) —
these are reproduction harnesses whose value is the produced table, not a
statistically tight latency estimate — and attaches the produced rows to
``benchmark.extra_info`` so they appear in the saved benchmark JSON.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment harness exactly once under pytest-benchmark."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
