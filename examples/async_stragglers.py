#!/usr/bin/env python3
"""Straggler mitigation with semi-sync quorum rounds under resource churn.

Runs ComDML on a heterogeneous population whose resources churn every few
rounds, in all three runtime execution modes:

* ``sync``       — every round waits for the slowest pair (full barrier);
* ``semi-sync``  — a round closes once 60 % of the pairs finish, dropping
  the stragglers from that round's aggregation;
* ``async``      — no barrier at all: each pair gossips its update the
  moment it finishes.

Prints the per-mode round times and, for semi-sync, which agents were
dropped as stragglers — read straight from the runtime's event trace.

Run with:  python examples/async_stragglers.py
"""

from repro.experiments.reporting import format_table
from repro.experiments.runner import ExperimentRunner
from repro.experiments.scenarios import ScenarioConfig

MODES = ("sync", "semi-sync", "async")


def run_modes(max_rounds: int = 30, seed: int = 0):
    """Run ComDML in every execution mode; returns {mode: (history, trace)}."""
    results = {}
    for mode in MODES:
        config = ScenarioConfig(
            num_agents=10,
            dataset="cifar10",
            model="resnet56",
            max_rounds=max_rounds,
            churn_fraction=0.3,          # 30 % of agents change resources...
            churn_interval_rounds=5,     # ...every 5 rounds: constant stragglers
            offload_granularity=6,
            execution_mode=mode,
            quorum_fraction=0.6,         # semi-sync: round closes at 60 % of pairs
            seed=seed,
        )
        runner = ExperimentRunner(config)
        results[mode] = runner.run_method_with_trace("ComDML")
    return results


def main() -> None:
    results = run_modes()

    rows = []
    for mode, (history, trace) in results.items():
        durations = [record.duration_seconds for record in history.records]
        rows.append(
            {
                "mode": mode,
                "rounds": len(history),
                "mean round (s)": f"{sum(durations) / len(durations):.1f}",
                "total time (s)": f"{history.total_time:.0f}",
                "final accuracy": f"{history.final_accuracy:.3f}",
                "events traced": len(trace),
            }
        )
    print("ComDML under churn — one runtime, three execution modes")
    print(format_table(rows))

    _, semi_trace = results["semi-sync"]
    dropped = semi_trace.of_kind("straggler_dropped")
    print(f"\nsemi-sync dropped {len(dropped)} straggler unit(s) across the run:")
    for event in dropped[:8]:
        agents = ", ".join(str(agent_id) for agent_id in event.agent_ids)
        print(
            f"  round {event.round_index:>2}: agents [{agents}] "
            f"(would have finished {event.detail['projected_completion'] - event.timestamp:.0f}s late)"
        )
    if len(dropped) > 8:
        print(f"  ... and {len(dropped) - 8} more")


if __name__ == "__main__":
    main()
