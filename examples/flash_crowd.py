#!/usr/bin/env python3
"""Flash crowd: staggered arrivals + mid-round churn under every execution mode.

A small population starts training; shortly into the first round a churn
event re-assigns every original agent's resources *while their work is in
flight* (the affected units are re-costed, not re-started), and a wave of
fast helpers then joins one by one, becoming eligible for the next pairing
plan as they arrive.  Late in the run one original agent departs.

The same :class:`~repro.runtime.dynamics.DynamicsSchedule` shape is applied
to ComDML under all three runtime execution modes (``sync``, ``semi-sync``,
``async``) — each mode gets its own schedule instance because schedules
carry concrete :class:`~repro.agents.agent.Agent` objects whose profiles
the run mutates.

Run with:  python examples/flash_crowd.py
"""

from repro.agents.agent import Agent
from repro.agents.resources import ResourceProfile
from repro.experiments.reporting import (
    format_agent_timeline,
    format_dynamics_summary,
    format_table,
)
from repro.experiments.runner import ExperimentRunner
from repro.experiments.scenarios import ScenarioConfig
from repro.runtime.dynamics import DynamicsSchedule

MODES = ("sync", "semi-sync", "async")

#: The arriving helpers: capable CPUs on decent links (a "flash crowd").
CROWD_PROFILES = (
    ResourceProfile(cpu_share=4.0, bandwidth_mbps=100.0),
    ResourceProfile(cpu_share=2.0, bandwidth_mbps=100.0),
    ResourceProfile(cpu_share=4.0, bandwidth_mbps=50.0),
    ResourceProfile(cpu_share=2.0, bandwidth_mbps=50.0),
)


def base_config(mode: str, max_rounds: int = 8, seed: int = 0) -> ScenarioConfig:
    """The shared six-agent scenario, parameterised only by execution mode."""
    return ScenarioConfig(
        num_agents=6,
        dataset="cifar10",
        model="resnet56",
        max_rounds=max_rounds,
        offload_granularity=9,
        execution_mode=mode,
        quorum_fraction=0.6,
        seed=seed,
    )


def probe_first_round(seed: int = 0) -> tuple[float, float]:
    """Learn the first round's shape from a dynamics-free sync run.

    Returns ``(first_unit_completion, round_duration)`` of round 0 — the
    anchor points the schedule below is expressed in.  Round 0's plan is
    identical across modes (same seed, same fresh registry), so a churn
    event placed before the first unit completion is guaranteed to land
    while work is in flight in *every* mode.
    """
    runner = ExperimentRunner(base_config("sync", max_rounds=1, seed=seed))
    _, trace = runner.run_method_with_trace("ComDML")
    completions = [e.timestamp for e in trace.of_kind("unit_complete")]
    round_end = trace.of_kind("round_end")[0].timestamp
    return min(completions), round_end


def make_schedule(
    first_completion: float, round_duration: float, num_base_agents: int = 6
) -> DynamicsSchedule:
    """Build one run's dynamics: in-flight churn, an arrival wave, a departure.

    A fresh schedule (with fresh :class:`Agent` objects) must be built for
    every run — training mutates the agents it carries.
    """
    schedule = DynamicsSchedule()
    # Mid-round churn: hits every original agent at half-way to the first
    # unit completion, so all of round 0's units are still in flight.
    schedule.churn(0.5 * first_completion, agent_ids=range(num_base_agents))
    # Staggered flash crowd: one helper joins every 0.6 round-lengths.
    crowd = [
        Agent(
            agent_id=num_base_agents + index,
            profile=profile,
            num_samples=500,
            batch_size=100,
        )
        for index, profile in enumerate(CROWD_PROFILES)
    ]
    schedule.arrival_wave(
        start=0.8 * round_duration, interval=0.6 * round_duration, agents=crowd
    )
    # A second perturbation once the crowd is in, and one original leaves.
    schedule.churn(3.2 * round_duration, fraction=0.3)
    schedule.departure(4.0 * round_duration, agent_id=num_base_agents - 1)
    return schedule


def run_modes(max_rounds: int = 8, seed: int = 0):
    """Run ComDML under the flash-crowd schedule in every execution mode."""
    first_completion, round_duration = probe_first_round(seed)
    results = {}
    for mode in MODES:
        runner = ExperimentRunner(base_config(mode, max_rounds, seed))
        schedule = make_schedule(first_completion, round_duration)
        results[mode] = runner.run_method_with_trace("ComDML", dynamics=schedule)
    return results


def main() -> None:
    results = run_modes()

    rows = []
    for mode, (history, trace) in results.items():
        counts = trace.kind_counts()
        rows.append(
            {
                "mode": mode,
                "rounds": len(history),
                "total time (s)": f"{history.total_time:.0f}",
                "final accuracy": f"{history.final_accuracy:.3f}",
                "arrivals": counts.get("arrival", 0),
                "departures": counts.get("departure", 0),
                "churn": counts.get("churn", 0),
                "repriced in flight": counts.get("unit_repriced", 0),
                "dropped": counts.get("straggler_dropped", 0),
            }
        )
    print("ComDML under a flash crowd — one schedule, three execution modes")
    print(format_table(rows))

    _, semi_trace = results["semi-sync"]
    print("\nsemi-sync dynamics, round by round:")
    print(format_dynamics_summary(semi_trace))

    first_arrival = semi_trace.of_kind("arrival")[0].agent_ids[0]
    print(f"\nfirst helper to join (agent {first_arrival}):")
    print(format_agent_timeline(semi_trace, first_arrival, max_rows=10))


if __name__ == "__main__":
    main()
