#!/usr/bin/env python3
"""Limited-connectivity study (the paper's Figure 3 scenario, reduced scale).

Agents are connected by a random topology retaining only 20 % of the
complete graph's links.  ComDML's pairing scheduler only ever pairs agents
that share a usable link, so it keeps its advantage even when most links are
missing.  The example sweeps the link fraction and reports the time to the
target accuracy for ComDML and the AllReduce baseline.

Run with:  python examples/limited_connectivity.py
"""

from repro.experiments.reporting import format_table
from repro.experiments.runner import ExperimentRunner
from repro.experiments.scenarios import ScenarioConfig

LINK_FRACTIONS = (1.0, 0.5, 0.2, 0.1)
TARGET = 0.80


def main() -> None:
    rows = []
    for fraction in LINK_FRACTIONS:
        config = ScenarioConfig(
            num_agents=20,
            dataset="cifar10",
            model="resnet56",
            iid=True,
            topology="full" if fraction >= 1.0 else "random",
            link_fraction=fraction,
            participation_fraction=0.5,
            target_accuracy=TARGET,
            max_rounds=800,
            offload_granularity=9,
            seed=1,
        )
        runner = ExperimentRunner(config)
        results = runner.compare(["ComDML", "AllReduce", "Gossip Learning"])
        row = {"links kept": f"{fraction:.0%}"}
        for method, history in results.items():
            time_to_target = history.time_to_accuracy(TARGET)
            row[method] = round(time_to_target) if time_to_target else "n/a"
        comdml = results["ComDML"].time_to_accuracy(TARGET)
        allreduce = results["AllReduce"].time_to_accuracy(TARGET)
        if comdml and allreduce:
            row["reduction vs AllReduce"] = f"{100 * (1 - comdml / allreduce):.0f}%"
        rows.append(row)

    print("Time (simulated s) to 80% accuracy, 20 agents, varying connectivity")
    print(format_table(rows))
    print(
        "\nComDML keeps most of its advantage even when only a fifth of the\n"
        "links exist, because pairing decisions are made per neighbourhood."
    )


if __name__ == "__main__":
    main()
