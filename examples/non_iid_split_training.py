#!/usr/bin/env python3
"""Real local-loss split training on non-I.I.D. data (learning plane demo).

Unlike the quickstart (which uses the calibrated learning-curve model for
accuracy), this example genuinely trains the numpy proxy model through the
full ComDML pipeline: Dirichlet(0.5) label-skewed shards, the decentralized
pairing scheduler, local-loss split training on every offloading pair,
and AllReduce parameter averaging.  It prints the accuracy and simulated
time after every round, plus the pairing decisions of the first round.

Run with:  python examples/non_iid_split_training.py
"""

import numpy as np

from repro.agents.registry import AgentRegistry
from repro.agents.resources import assign_profiles_evenly
from repro.core.comdml import ComDML
from repro.core.config import ComDMLConfig
from repro.data.partition import dirichlet_partition
from repro.data.synthetic import cifar10_like
from repro.models.proxy import ProxyModelFactory
from repro.models.resnet import resnet56_spec
from repro.training.accuracy import ProxyAccuracyTracker

NUM_AGENTS = 8
ROUNDS = 10
SEED = 0


def main() -> None:
    rng = np.random.default_rng(SEED)

    # --- data: synthetic CIFAR-10 stand-in, Dirichlet(0.5) label skew ---
    train, test = cifar10_like(train_samples=4_000, test_samples=1_000, seed=SEED)
    shards = dirichlet_partition(train.labels, NUM_AGENTS, rng, alpha=0.5)
    datasets = {i: train.subset(shards[i], f"agent{i}") for i in range(NUM_AGENTS)}

    # --- heterogeneous population with the paper's resource profiles ---
    registry = AgentRegistry.build(
        num_agents=NUM_AGENTS,
        rng=rng,
        samples_per_agent=[len(shard) for shard in shards],
        batch_size=50,
        profiles=assign_profiles_evenly(NUM_AGENTS, rng),
    )
    print("Agent shards (non-I.I.D.):")
    for agent in registry:
        print(
            f"  agent {agent.agent_id}: {agent.num_samples:4d} samples, "
            f"{agent.profile.cpu_share:>3.1f} CPU, {agent.profile.bandwidth_mbps:>5.1f} Mbps"
        )

    # --- learning plane: real proxy-model training ---
    spec = resnet56_spec()
    factory = ProxyModelFactory(spec=spec, input_features=train.num_features, num_blocks=4, width=48)
    tracker = ProxyAccuracyTracker(
        factory=factory,
        agent_datasets=datasets,
        test_dataset=test,
        batch_size=50,
        seed=SEED,
    )

    comdml = ComDML(
        registry=registry,
        spec=spec,
        config=ComDMLConfig(
            max_rounds=ROUNDS,
            learning_rate=0.03,
            batch_size=50,
            offload_granularity=9,
            seed=SEED,
        ),
        accuracy_tracker=tracker,
    )

    # Show the first round's pairing plan before running.
    decisions = comdml.scheduler.plan_round(comdml.scheduler.select_participants())
    print("\nRound-0 pairing plan (slow -> fast, offloaded layers, estimated round time):")
    for decision in decisions:
        if decision.is_offloading:
            print(
                f"  agent {decision.slow_id} -> agent {decision.fast_id}: "
                f"offload {decision.offloaded_layers:2d} layers, "
                f"~{decision.estimate.pair_time:7.1f} s"
            )
        else:
            print(
                f"  agent {decision.slow_id} trains alone, "
                f"~{decision.estimate.pair_time:7.1f} s"
            )

    print("\nTraining (real numpy proxy model, local-loss split training):")
    history = comdml.run()
    for record in history.records:
        print(
            f"  round {record.round_index:2d}: accuracy {record.accuracy:.3f}, "
            f"round {record.duration_seconds:7.1f} s, total {record.cumulative_seconds:9.1f} s, "
            f"{record.num_pairs} offloading pairs"
        )
    print(f"\nFinal accuracy after {len(history)} rounds: {history.final_accuracy:.3f}")


if __name__ == "__main__":
    main()
