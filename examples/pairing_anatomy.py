#!/usr/bin/env python3
"""Anatomy of a pairing decision (the paper's Algorithm 1, step by step).

For a small heterogeneous population this example shows exactly what the
decentralized scheduler computes each round:

1. the broadcast individual training times τ̂_j,
2. the AgentTrainingTime estimate of the slowest agent for every candidate
   helper and split point,
3. the greedy pairing plan, and
4. how close the greedy plan's makespan gets to the exhaustive optimum of
   the integer program (Eq. 5).

Run with:  python examples/pairing_anatomy.py
"""

import numpy as np

from repro.agents.registry import AgentRegistry
from repro.agents.resources import ResourceProfile
from repro.core.pairing import greedy_pairing, pairing_makespan
from repro.core.profiling import profile_architecture
from repro.core.workload import (
    estimate_offload_time,
    exact_min_makespan,
    individual_training_time,
)
from repro.models.resnet import resnet56_spec
from repro.network.link import LinkModel, pairwise_bandwidth
from repro.network.topology import full_topology

PROFILES = [
    ResourceProfile(4.0, 100.0),
    ResourceProfile(2.0, 50.0),
    ResourceProfile(1.0, 50.0),
    ResourceProfile(0.5, 20.0),
    ResourceProfile(0.5, 20.0),
    ResourceProfile(0.2, 10.0),
]


def main() -> None:
    spec = resnet56_spec()
    profile = profile_architecture(spec, granularity=9)
    registry = AgentRegistry.build(
        num_agents=len(PROFILES),
        rng=np.random.default_rng(0),
        samples_per_agent=1_000,
        batch_size=100,
        profiles=PROFILES,
    )
    link_model = LinkModel(full_topology(registry.ids))

    # 1. Broadcast individual training times (the shared list A).
    print("Step 1 — broadcast individual training times τ̂ (slowest first):")
    times = {
        agent.agent_id: individual_training_time(agent, profile, 100)
        for agent in registry
    }
    for agent_id, tau in sorted(times.items(), key=lambda item: -item[1]):
        agent = registry.get(agent_id)
        print(
            f"  agent {agent_id}: {tau:8.1f} s  "
            f"({agent.profile.cpu_share} CPU, {agent.profile.bandwidth_mbps:.0f} Mbps)"
        )

    # 2. The slowest agent evaluates every candidate helper and split.
    slowest_id = max(times, key=times.get)
    slowest = registry.get(slowest_id)
    print(f"\nStep 2 — AgentTrainingTime estimates for the slowest agent ({slowest_id}):")
    print("  helper   offload m   slow side (s)   fast chain (s)   pair time (s)")
    for candidate in registry:
        if candidate.agent_id == slowest_id:
            continue
        bandwidth = pairwise_bandwidth(slowest, candidate)
        best = None
        for option in profile.offload_options:
            estimate = estimate_offload_time(slowest, candidate, option, profile, bandwidth)
            if best is None or estimate.pair_time < best.pair_time:
                best = estimate
        print(
            f"  {candidate.agent_id:6d}   {best.offloaded_layers:9d}   "
            f"{best.slow_time:13.1f}   {best.fast_chain_time:14.1f}   {best.pair_time:13.1f}"
        )

    # 3. The full greedy plan.
    print("\nStep 3 — greedy pairing plan for the round:")
    decisions = greedy_pairing(registry.agents, link_model, profile)
    for decision in decisions:
        if decision.is_offloading:
            print(
                f"  agent {decision.slow_id} offloads {decision.offloaded_layers:2d} layers "
                f"to agent {decision.fast_id} (pair time {decision.estimate.pair_time:8.1f} s)"
            )
        else:
            print(
                f"  agent {decision.slow_id} trains alone "
                f"(time {decision.estimate.pair_time:8.1f} s)"
            )
    greedy_makespan = pairing_makespan(decisions)

    # 4. Compare with the exact integer program.
    exact_makespan, _ = exact_min_makespan(registry.agents, profile, pairwise_bandwidth)
    unbalanced = max(times.values())
    print("\nStep 4 — makespan comparison:")
    print(f"  no balancing (straggler) : {unbalanced:10.1f} s")
    print(f"  greedy scheduler         : {greedy_makespan:10.1f} s")
    print(f"  exact integer program    : {exact_makespan:10.1f} s")
    print(f"  greedy / exact ratio     : {greedy_makespan / exact_makespan:10.3f}")


if __name__ == "__main__":
    main()
