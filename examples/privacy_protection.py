#!/usr/bin/env python3
"""Privacy-preserving ComDML training (Section IV-C / V-B-4 of the paper).

Runs real proxy-model training through the ComDML pipeline four times —
without protection, with distance-correlation reduction (α = 0.5) on the
intermediate activations, with patch shuffling, and with differential
privacy (Laplace, ε = 0.5) on the model updates — and reports the accuracy
cost of each mechanism, mirroring the paper's comparison.

Run with:  python examples/privacy_protection.py
"""

import numpy as np

from repro.experiments.privacy import format_privacy_results, run_privacy_comparison
from repro.privacy.distance_correlation import distance_correlation


def demonstrate_leakage_reduction() -> None:
    """Show the raw statistic the distance-correlation defense targets."""
    rng = np.random.default_rng(0)
    inputs = rng.normal(size=(128, 64))
    weights = rng.normal(size=(64, 32)) / 8.0
    activations = np.tanh(inputs @ weights)
    undefended = distance_correlation(inputs, activations)
    noised = activations + rng.normal(scale=activations.std() * 2.0, size=activations.shape)
    defended = distance_correlation(inputs, noised)
    print("Distance correlation between raw inputs and shipped activations:")
    print(f"  undefended intermediate data : {undefended:.3f}")
    print(f"  after calibrated noising     : {defended:.3f}")
    print()


def main() -> None:
    demonstrate_leakage_reduction()

    print("Training ComDML (real proxy model) once per privacy configuration...\n")
    results = run_privacy_comparison(num_agents=8, rounds=12, seed=0)
    print(format_privacy_results(results))

    baseline = next(r for r in results if r.mechanism == "none")
    print("\nAccuracy cost of each mechanism relative to undefended training:")
    for result in results:
        if result.mechanism == "none":
            continue
        delta = baseline.final_accuracy - result.final_accuracy
        print(f"  {result.mechanism:<24}: -{max(delta, 0.0):.3f}")


if __name__ == "__main__":
    main()
