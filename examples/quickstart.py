#!/usr/bin/env python3
"""Quickstart: ComDML vs no-balancing baselines on a heterogeneous population.

Builds the paper's Table II setting at reduced scale (10 heterogeneous
agents, ResNet-56, CIFAR-10-scale data), runs ComDML and two baselines to a
90 % accuracy target on the simulated clock, and prints the time-to-target
comparison — the library's one-screen "hello world".

Run with:  python examples/quickstart.py
"""

from repro.experiments.reporting import format_table, speedup_over_baselines
from repro.experiments.runner import ExperimentRunner
from repro.experiments.scenarios import ScenarioConfig


def main() -> None:
    config = ScenarioConfig(
        num_agents=10,
        dataset="cifar10",
        model="resnet56",
        iid=True,
        target_accuracy=0.90,
        max_rounds=400,
        churn_fraction=0.2,          # 20 % of agents change resources every 100 rounds
        churn_interval_rounds=100,
        offload_granularity=6,
        seed=0,
    )
    runner = ExperimentRunner(config)
    results = runner.compare(["ComDML", "AllReduce", "FedAvg"])

    rows = []
    for method, history in results.items():
        rows.append(
            {
                "method": method,
                "rounds": history.rounds_to_accuracy(0.90),
                "time to 90% (s)": history.time_to_accuracy(0.90),
                "final accuracy": f"{history.final_accuracy:.3f}",
            }
        )
    print("ComDML quickstart — 10 heterogeneous agents, ResNet-56, CIFAR-10-scale")
    print(format_table(rows))

    speedups = speedup_over_baselines(results, target=0.90)
    print()
    for method, speedup in speedups.items():
        reduction = 100.0 * (1.0 - 1.0 / speedup)
        print(f"ComDML vs {method:<10}: {speedup:4.2f}x faster ({reduction:.0f}% less training time)")


if __name__ == "__main__":
    main()
