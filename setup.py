"""Setuptools shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 517 editable installs fail with "invalid command 'bdist_wheel'".
Keeping a ``setup.py`` lets ``pip install -e .`` fall back to the legacy
develop-mode install path; all project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
