"""ComDML reproduction library.

Reproduction of "Communication-Efficient Training Workload Balancing for
Decentralized Multi-Agent Learning" (ICDCS 2024).

The package is organised in two planes:

* a *timing plane* (``repro.sim``, ``repro.agents``, ``repro.network``) that
  models heterogeneous compute/communication resources with a deterministic
  discrete-event clock, and
* a *learning plane* (``repro.nn``, ``repro.models``, ``repro.training``,
  ``repro.data``) that genuinely trains numpy models with local-loss split
  training.

``repro.core`` implements the paper's contribution (the ComDML pairing
scheduler and round timing), ``repro.baselines`` the comparison systems,
``repro.runtime`` the shared event-driven training runtime that executes
any method in ``sync``/``semi-sync``/``async`` mode, and
``repro.experiments`` the table/figure reproductions.
"""

from repro.version import __version__

from repro.agents.resources import ResourceProfile, CPU_PROFILES, BANDWIDTH_PROFILES_MBPS
from repro.agents.agent import Agent
from repro.core.comdml import ComDML, ComDMLConfig
from repro.core.pairing import PairingDecision, greedy_pairing
from repro.core.profiling import SplitProfile, profile_architecture
from repro.models.resnet import resnet56_spec, resnet110_spec
from repro.data.synthetic import cifar10_like, cifar100_like, cinic10_like
from repro.data.partition import iid_partition, dirichlet_partition
from repro.experiments.runner import ExperimentRunner
from repro.runtime import EventTrace, TrainingRuntime

__all__ = [
    "__version__",
    "ResourceProfile",
    "CPU_PROFILES",
    "BANDWIDTH_PROFILES_MBPS",
    "Agent",
    "ComDML",
    "ComDMLConfig",
    "PairingDecision",
    "greedy_pairing",
    "SplitProfile",
    "profile_architecture",
    "resnet56_spec",
    "resnet110_spec",
    "cifar10_like",
    "cifar100_like",
    "cinic10_like",
    "iid_partition",
    "dirichlet_partition",
    "ExperimentRunner",
    "TrainingRuntime",
    "EventTrace",
]
