"""Agent abstractions: resources, state, population registry, dynamic churn."""

from repro.agents.resources import (
    CPU_PROFILES,
    BANDWIDTH_PROFILES_MBPS,
    ResourceProfile,
    assign_profiles_evenly,
    assign_profiles_randomly,
)
from repro.agents.agent import Agent
from repro.agents.registry import AgentRegistry
from repro.agents.dynamics import ResourceChurn

__all__ = [
    "CPU_PROFILES",
    "BANDWIDTH_PROFILES_MBPS",
    "ResourceProfile",
    "assign_profiles_evenly",
    "assign_profiles_randomly",
    "Agent",
    "AgentRegistry",
    "ResourceChurn",
]
