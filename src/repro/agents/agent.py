"""The :class:`Agent` — one participant in the decentralized system.

An agent owns a local dataset shard, a resource profile, and (in the
learning plane) local model state.  The timing-plane quantities the paper's
scheduler needs are exposed as properties:

* ``processing_speed`` — batches of the *full* model trained per simulated
  second (the paper's ``p_i``);
* ``num_batches`` — the paper's ``Ñ_i``;
* ``individual_training_time`` — ``Ñ_i / p_i``, the time the agent would
  need to finish its round without offloading (the paper's ``τ_i``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.agents.resources import ResourceProfile
from repro.sim.costs import cpu_share_to_throughput
from repro.utils.validation import check_non_negative, check_positive


@dataclass
class Agent:
    """A single learning agent.

    Attributes
    ----------
    agent_id:
        Stable integer identifier (used for pairing decisions and topology
        node labels).
    profile:
        Current :class:`~repro.agents.resources.ResourceProfile`.
    num_samples:
        Number of local training samples (the paper's ``N_i``).
    batch_size:
        Local mini-batch size (the paper uses 100).
    local_epochs:
        Local epochs per round (the paper uses 1).
    data_indices:
        Optional indices into the global dataset backing this agent's shard.
    model_state:
        Learning-plane state (parameters of the local model); opaque to the
        timing plane.
    """

    agent_id: int
    profile: ResourceProfile
    num_samples: int = 0
    batch_size: int = 100
    local_epochs: int = 1
    data_indices: Optional[Any] = None
    model_state: Optional[Any] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        check_non_negative(self.num_samples, "num_samples")
        check_positive(self.batch_size, "batch_size")
        check_positive(self.local_epochs, "local_epochs")

    # ------------------------------------------------------------------
    # Timing-plane quantities
    # ------------------------------------------------------------------
    @property
    def num_batches(self) -> int:
        """Number of mini-batches per local epoch (the paper's ``Ñ_i``), at least 1."""
        if self.num_samples == 0:
            return 0
        return max(1, -(-self.num_samples // self.batch_size))

    @property
    def batches_per_round(self) -> int:
        """Total batches processed per round (``Ñ_i × local_epochs``)."""
        return self.num_batches * self.local_epochs

    def processing_speed(self, flops_per_batch: float) -> float:
        """Batches of the full model trained per second (the paper's ``p_i``).

        Parameters
        ----------
        flops_per_batch:
            Forward+backward cost (flop-equivalents) of the full model for
            one mini-batch.
        """
        check_positive(flops_per_batch, "flops_per_batch")
        return cpu_share_to_throughput(self.profile.cpu_share) / flops_per_batch

    def individual_training_time(self, flops_per_batch: float) -> float:
        """Round time without offloading (the paper's ``τ_i = Ñ_i / p_i``)."""
        if self.batches_per_round == 0:
            return 0.0
        return self.batches_per_round / self.processing_speed(flops_per_batch)

    # ------------------------------------------------------------------
    # Resource updates
    # ------------------------------------------------------------------
    def update_profile(self, profile: ResourceProfile) -> None:
        """Replace the agent's resource profile (dynamic churn)."""
        self.profile = profile

    @property
    def is_connected(self) -> bool:
        """Whether this agent currently has a usable network link."""
        return self.profile.is_connected

    def __hash__(self) -> int:
        return hash(self.agent_id)
