"""Dynamic resource churn.

The paper's Table II setup "randomly changed the profile of 20 % of the
agents after 100 rounds" to mimic real-world variation.  ``ResourceChurn``
generalises this: at configurable round intervals, a configurable fraction
of agents is re-assigned a fresh random profile from the paper's grid.

Round-interval churn (``ComDMLConfig.churn_fraction`` /
``churn_interval_rounds``) fires at round boundaries through
:meth:`ResourceChurn.maybe_apply`.  Timestamp-based churn — a
:class:`~repro.runtime.dynamics.DynamicsSchedule` churn event landing while
work is in flight — reuses the same re-assignment machinery via
:meth:`ResourceChurn.apply` (fraction-based) or :func:`churn_agent_profiles`
(explicit agent ids).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.agents.registry import AgentRegistry
from repro.agents.resources import (
    CONNECTED_BANDWIDTH_PROFILES_MBPS,
    CPU_PROFILES,
    ResourceProfile,
)
from repro.utils.validation import check_positive, check_probability


def churn_agent_profiles(
    registry: AgentRegistry,
    agent_ids: "list[int] | tuple[int, ...]",
    rng: np.random.Generator,
    cpu_profiles: tuple[float, ...] = CPU_PROFILES,
    bandwidth_profiles: tuple[float, ...] = CONNECTED_BANDWIDTH_PROFILES_MBPS,
) -> list[int]:
    """Re-assign fresh random profiles to the given agents.

    Unknown ids are skipped (the agent may have departed before the churn
    event fired).  Returns the ids whose profile actually changed, in the
    order given.
    """
    changed: list[int] = []
    for agent_id in agent_ids:
        if agent_id not in registry:
            continue
        agent = registry.get(agent_id)
        new_profile = ResourceProfile(
            cpu_share=float(rng.choice(cpu_profiles)),
            bandwidth_mbps=float(rng.choice(bandwidth_profiles)),
        )
        agent.update_profile(new_profile)
        changed.append(agent_id)
    return changed


@dataclass
class ResourceChurn:
    """Re-randomise a fraction of agent profiles every ``interval_rounds`` rounds.

    Attributes
    ----------
    fraction:
        Fraction of agents whose profile changes at each churn point.
    interval_rounds:
        Number of rounds between churn points (the paper uses 100).
    cpu_profiles / bandwidth_profiles:
        Pools to draw new profiles from.
    """

    fraction: float = 0.2
    interval_rounds: int = 100
    cpu_profiles: tuple[float, ...] = CPU_PROFILES
    bandwidth_profiles: tuple[float, ...] = CONNECTED_BANDWIDTH_PROFILES_MBPS

    def __post_init__(self) -> None:
        check_probability(self.fraction, "fraction")
        check_positive(self.interval_rounds, "interval_rounds")

    def should_trigger(self, round_index: int) -> bool:
        """Whether churn fires at the *start* of the given (0-based) round."""
        if round_index == 0:
            return False
        return round_index % self.interval_rounds == 0

    def apply(self, registry: AgentRegistry, rng: np.random.Generator) -> list[int]:
        """Re-assign profiles to a random subset of agents.

        Returns the ids of agents whose profile changed.
        """
        agents = registry.agents
        count = int(round(self.fraction * len(agents)))
        if count == 0:
            return []
        chosen = rng.choice(len(agents), size=count, replace=False)
        return churn_agent_profiles(
            registry,
            [agents[int(index)].agent_id for index in chosen],
            rng,
            cpu_profiles=self.cpu_profiles,
            bandwidth_profiles=self.bandwidth_profiles,
        )

    def maybe_apply(
        self,
        round_index: int,
        registry: AgentRegistry,
        rng: np.random.Generator,
    ) -> list[int]:
        """Apply churn if this round is a churn point; return changed agent ids."""
        if not self.should_trigger(round_index):
            return []
        return self.apply(registry, rng)
