"""Registry of the agent population.

Holds all agents of an experiment, supports id lookup, participation
sampling (the paper's 20 % per-round sampling in the scalability study),
and convenience constructors.  The population is *not* fixed for the
lifetime of a run: a :class:`~repro.runtime.dynamics.DynamicsSchedule` may
:meth:`add` late-arriving agents or :meth:`remove` departing ones mid-run,
and the runtime re-reads :attr:`agents` at every round boundary.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.agents.agent import Agent
from repro.agents.resources import ResourceProfile, assign_profiles_evenly
from repro.utils.validation import check_probability


class AgentRegistry:
    """Ordered collection of :class:`~repro.agents.agent.Agent` objects."""

    def __init__(self, agents: Optional[Iterable[Agent]] = None) -> None:
        self._agents: dict[int, Agent] = {}
        if agents is not None:
            for agent in agents:
                self.add(agent)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        num_agents: int,
        rng: np.random.Generator,
        samples_per_agent: Sequence[int] | int = 500,
        batch_size: int = 100,
        profiles: Optional[Sequence[ResourceProfile]] = None,
    ) -> "AgentRegistry":
        """Construct a population with evenly assigned paper profiles.

        ``samples_per_agent`` may be a single int (all agents identical) or a
        sequence of per-agent dataset sizes.
        """
        if profiles is None:
            profiles = assign_profiles_evenly(num_agents, rng)
        if len(profiles) != num_agents:
            raise ValueError(
                f"expected {num_agents} profiles, got {len(profiles)}"
            )
        if isinstance(samples_per_agent, int):
            sample_counts = [samples_per_agent] * num_agents
        else:
            sample_counts = list(samples_per_agent)
            if len(sample_counts) != num_agents:
                raise ValueError(
                    f"expected {num_agents} sample counts, got {len(sample_counts)}"
                )
        agents = [
            Agent(
                agent_id=i,
                profile=profiles[i],
                num_samples=sample_counts[i],
                batch_size=batch_size,
            )
            for i in range(num_agents)
        ]
        return cls(agents)

    # ------------------------------------------------------------------
    # Collection protocol
    # ------------------------------------------------------------------
    def add(self, agent: Agent) -> None:
        """Add an agent; ids must be unique."""
        if agent.agent_id in self._agents:
            raise ValueError(f"duplicate agent id {agent.agent_id}")
        self._agents[agent.agent_id] = agent

    def get(self, agent_id: int) -> Agent:
        """Look up an agent by id."""
        try:
            return self._agents[agent_id]
        except KeyError:
            raise KeyError(f"unknown agent id {agent_id}") from None

    def remove(self, agent_id: int) -> Agent:
        """Remove and return an agent (mid-run departure)."""
        try:
            return self._agents.pop(agent_id)
        except KeyError:
            raise KeyError(f"unknown agent id {agent_id}") from None

    def __contains__(self, agent_id: int) -> bool:
        return agent_id in self._agents

    def __len__(self) -> int:
        return len(self._agents)

    def __iter__(self) -> Iterator[Agent]:
        return iter(self._agents.values())

    @property
    def ids(self) -> list[int]:
        """All agent ids in insertion order."""
        return list(self._agents.keys())

    @property
    def agents(self) -> list[Agent]:
        """All agents in insertion order."""
        return list(self._agents.values())

    @property
    def total_samples(self) -> int:
        """Total number of training samples across the population (``N``)."""
        return sum(agent.num_samples for agent in self._agents.values())

    # ------------------------------------------------------------------
    # Participation sampling
    # ------------------------------------------------------------------
    def sample_participants(
        self,
        fraction: float,
        rng: np.random.Generator,
        minimum: int = 2,
    ) -> list[Agent]:
        """Sample a fraction of agents to participate in a round.

        Used by the Table III scalability experiments (20 % sampling rate).
        At least ``minimum`` agents are returned (bounded by the population
        size) so a round is never degenerate.
        """
        check_probability(fraction, "fraction")
        population = self.agents
        count = max(min(minimum, len(population)), int(round(fraction * len(population))))
        count = min(count, len(population))
        chosen = rng.choice(len(population), size=count, replace=False)
        return [population[i] for i in sorted(chosen)]
