"""Heterogeneous agent resource profiles.

The paper simulates heterogeneity with CPU profiles of {4, 2, 1, 0.5, 0.2}
CPUs and communication profiles of {0, 10, 20, 50, 100} Mbps, where 0 Mbps
means the agent is disconnected.  This module defines those profiles, the
:class:`ResourceProfile` value object attached to every agent, and the two
assignment strategies used by the experiments:

* :func:`assign_profiles_evenly` — Table II style, "randomly assigning 20 %
  of the agents to each CPU and communication speed profile combination";
* :func:`assign_profiles_randomly` — uniform random assignment used by some
  scalability scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.units import mbps_to_bytes_per_second
from repro.utils.validation import check_positive, check_non_negative

#: CPU share profiles from the paper (fraction of a reference CPU).
CPU_PROFILES: tuple[float, ...] = (4.0, 2.0, 1.0, 0.5, 0.2)

#: Link-speed profiles in Mbps from the paper; 0 represents a disconnected agent.
BANDWIDTH_PROFILES_MBPS: tuple[float, ...] = (0.0, 10.0, 20.0, 50.0, 100.0)

#: Link-speed profiles that actually allow communication.
CONNECTED_BANDWIDTH_PROFILES_MBPS: tuple[float, ...] = (10.0, 20.0, 50.0, 100.0)


@dataclass(frozen=True)
class ResourceProfile:
    """Computation and communication capacity of one agent.

    Attributes
    ----------
    cpu_share:
        Fraction of the reference CPU available to the agent (e.g. ``0.5``).
    bandwidth_mbps:
        Uplink/downlink speed of the agent in Mbps; ``0`` means disconnected.
    """

    cpu_share: float
    bandwidth_mbps: float

    def __post_init__(self) -> None:
        check_positive(self.cpu_share, "cpu_share")
        check_non_negative(self.bandwidth_mbps, "bandwidth_mbps")

    @property
    def bandwidth_bytes_per_second(self) -> float:
        """Link speed converted to bytes per second."""
        return mbps_to_bytes_per_second(self.bandwidth_mbps)

    @property
    def is_connected(self) -> bool:
        """Whether the agent can communicate at all."""
        return self.bandwidth_mbps > 0

    def with_cpu(self, cpu_share: float) -> "ResourceProfile":
        """Return a copy with a different CPU share."""
        return ResourceProfile(cpu_share=cpu_share, bandwidth_mbps=self.bandwidth_mbps)

    def with_bandwidth(self, bandwidth_mbps: float) -> "ResourceProfile":
        """Return a copy with a different link speed."""
        return ResourceProfile(cpu_share=self.cpu_share, bandwidth_mbps=bandwidth_mbps)


def default_profile_grid(
    include_disconnected: bool = False,
) -> list[ResourceProfile]:
    """All (CPU, bandwidth) combinations from the paper's profile grid."""
    bandwidths = (
        BANDWIDTH_PROFILES_MBPS
        if include_disconnected
        else CONNECTED_BANDWIDTH_PROFILES_MBPS
    )
    return [
        ResourceProfile(cpu_share=cpu, bandwidth_mbps=bw)
        for cpu in CPU_PROFILES
        for bw in bandwidths
    ]


def assign_profiles_evenly(
    num_agents: int,
    rng: np.random.Generator,
    cpu_profiles: tuple[float, ...] = CPU_PROFILES,
    bandwidth_profiles: tuple[float, ...] = CONNECTED_BANDWIDTH_PROFILES_MBPS,
) -> list[ResourceProfile]:
    """Assign profiles so each CPU tier receives an (almost) equal share of agents.

    Mirrors the paper's Table II setup: 20 % of agents land in each CPU
    profile; bandwidths are drawn uniformly from the connected profiles.
    The assignment order is shuffled so agent index does not correlate with
    speed.
    """
    if num_agents <= 0:
        raise ValueError(f"num_agents must be positive, got {num_agents}")
    cpus: list[float] = []
    per_tier = num_agents // len(cpu_profiles)
    remainder = num_agents - per_tier * len(cpu_profiles)
    for index, cpu in enumerate(cpu_profiles):
        count = per_tier + (1 if index < remainder else 0)
        cpus.extend([cpu] * count)
    rng.shuffle(cpus)
    bandwidths = rng.choice(bandwidth_profiles, size=num_agents)
    return [
        ResourceProfile(cpu_share=float(cpu), bandwidth_mbps=float(bw))
        for cpu, bw in zip(cpus, bandwidths)
    ]


def assign_profiles_randomly(
    num_agents: int,
    rng: np.random.Generator,
    cpu_profiles: tuple[float, ...] = CPU_PROFILES,
    bandwidth_profiles: tuple[float, ...] = CONNECTED_BANDWIDTH_PROFILES_MBPS,
) -> list[ResourceProfile]:
    """Assign each agent an independently uniform (CPU, bandwidth) profile."""
    if num_agents <= 0:
        raise ValueError(f"num_agents must be positive, got {num_agents}")
    cpus = rng.choice(cpu_profiles, size=num_agents)
    bandwidths = rng.choice(bandwidth_profiles, size=num_agents)
    return [
        ResourceProfile(cpu_share=float(cpu), bandwidth_mbps=float(bw))
        for cpu, bw in zip(cpus, bandwidths)
    ]
