"""Baseline training methods the paper compares ComDML against."""

from repro.baselines.base import BaselineTrainer
from repro.baselines.fedavg import FedAvg
from repro.baselines.fedprox import FedProx
from repro.baselines.allreduce_dml import AllReduceDML
from repro.baselines.gossip import GossipLearning
from repro.baselines.braintorrent import BrainTorrent

__all__ = [
    "BaselineTrainer",
    "FedAvg",
    "FedProx",
    "AllReduceDML",
    "GossipLearning",
    "BrainTorrent",
]


def baseline_by_name(name: str):
    """Look up a baseline class by (case-insensitive) name."""
    mapping = {
        "fedavg": FedAvg,
        "fedprox": FedProx,
        "allreduce": AllReduceDML,
        "gossip": GossipLearning,
        "gossip learning": GossipLearning,
        "braintorrent": BrainTorrent,
    }
    key = name.lower().strip()
    if key not in mapping:
        raise KeyError(f"unknown baseline {name!r}; expected one of {sorted(mapping)}")
    return mapping[key]
