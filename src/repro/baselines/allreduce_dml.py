"""Decentralized AllReduce baseline.

"In decentralized learning utilizing AllReduce aggregation, agents update
their models independently and then employ AllReduce to aggregate them,
eliminating the need for a central server."  No workload balancing happens,
so the round is bottlenecked by the slowest agent training the full model,
followed by the collective aggregation.
"""

from __future__ import annotations

from typing import Sequence

from repro.agents.agent import Agent
from repro.baselines.base import BaselineTrainer
from repro.network.allreduce import allreduce_time
from repro.utils.units import mbps_to_bytes_per_second


class AllReduceDML(BaselineTrainer):
    """Independent local training + decentralized AllReduce aggregation."""

    method_name = "AllReduce"
    curve_method_key = "allreduce"

    def round_timing(self, participants: Sequence[Agent]) -> tuple[float, float, float]:
        if not participants:
            return 0.0, 0.0, 0.0
        compute = max(self.full_model_training_time(agent) for agent in participants)
        connected = [
            agent.profile.bandwidth_bytes_per_second
            for agent in participants
            if agent.is_connected
        ]
        bottleneck = min(connected) if connected else mbps_to_bytes_per_second(10.0)
        aggregation = allreduce_time(
            model_bytes=self.model_bytes(),
            num_agents=len(participants),
            bottleneck_bandwidth_bytes_per_second=bottleneck,
            algorithm=self.config.allreduce_algorithm,
        )
        return compute + aggregation, compute, aggregation
