"""Baseline contributions to the shared training runtime.

Since the runtime split, the round loop no longer lives here.  Everything
the baselines share with ComDML — participation sampling, dynamic churn,
the learning-rate schedule, accuracy tracking, the run history, and the
event-driven execution modes — is owned by
:class:`~repro.runtime.TrainingRuntime`.  A baseline contributes only its
**round-timing/aggregation pattern** through the :meth:`BaselineTrainer.round_timing`
hook (and, optionally, a per-agent :meth:`BaselineTrainer.unit_duration`),
which this base class packages as a
:class:`~repro.runtime.strategy.RoundPlan` of one solo work unit per
participant (no workload balancing — every agent trains the full model).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.agents.agent import Agent
from repro.agents.registry import AgentRegistry
from repro.core.config import ComDMLConfig
from repro.core.pairing import PairingDecision
from repro.core.profiling import SplitProfile, profile_architecture
from repro.core.workload import individual_training_time
from repro.models.spec import ArchitectureSpec
from repro.network.link import LinkModel
from repro.network.topology import Topology, full_topology
from repro.runtime.dynamics import DynamicsSchedule
from repro.runtime.runtime import RuntimeDelegate, TrainingRuntime
from repro.runtime.strategy import RoundPlan, StrategyDefaults, WorkUnit, solo_decisions
from repro.runtime.trace import EventTrace
from repro.training.accuracy import AccuracyTracker, CurveAccuracyTracker
from repro.training.curves import LearningCurveModel, curve_preset_for
from repro.utils.seeding import SeedSequenceFactory


class BaselineTrainer(StrategyDefaults, RuntimeDelegate):
    """Base strategy implementing the plan shared by all baselines."""

    #: Human-readable method name used in reports.
    method_name = "Baseline"
    #: Key into the learning-curve efficiency table.
    curve_method_key = "allreduce"

    def __init__(
        self,
        registry: AgentRegistry,
        spec: ArchitectureSpec,
        config: Optional[ComDMLConfig] = None,
        topology: Optional[Topology] = None,
        accuracy_tracker: Optional[AccuracyTracker] = None,
        profile: Optional[SplitProfile] = None,
        dynamics: Optional[DynamicsSchedule] = None,
        trace: Optional["EventTrace"] = None,
    ) -> None:
        self.registry = registry
        self.spec = spec
        self.config = config if config is not None else ComDMLConfig()
        self.topology = (
            topology if topology is not None else full_topology(registry.ids)
        )
        self.link_model = LinkModel(self.topology)
        self.profile = (
            profile
            if profile is not None
            else profile_architecture(spec, granularity=self.config.offload_granularity)
        )
        seeds = SeedSequenceFactory(self.config.seed)
        self._participation_rng = seeds.generator(f"{self.method_name}.participation")
        self._method_rng = seeds.generator(f"{self.method_name}.method")
        tracker = (
            accuracy_tracker
            if accuracy_tracker is not None
            else CurveAccuracyTracker(
                LearningCurveModel(
                    preset=curve_preset_for("cifar10", "resnet56"),
                    method=self.curve_method_key,
                    rng=seeds.generator(f"{self.method_name}.curve"),
                )
            )
        )
        self.runtime = TrainingRuntime(
            strategy=self,
            registry=registry,
            config=self.config,
            accuracy_tracker=tracker,
            churn_rng=seeds.generator(f"{self.method_name}.churn"),
            dynamics=dynamics,
            trace=trace,
        )

    # ------------------------------------------------------------------
    # Hooks for subclasses
    # ------------------------------------------------------------------
    def round_timing(self, participants: Sequence[Agent]) -> tuple[float, float, float]:
        """Return ``(total, compute, communication)`` seconds for one round."""
        raise NotImplementedError

    def unit_duration(self, agent: Agent, decision: PairingDecision) -> float:
        """How long one participant's unit of local work takes.

        Defaults to the solo decision's already-computed training time;
        methods whose agents also block on per-agent communication (e.g.
        FedAvg's download/upload chain) override this so the
        ``semi-sync``/``async`` modes see the real completion times.
        """
        return decision.estimate.pair_time

    # ------------------------------------------------------------------
    # Mid-round dynamics hooks
    # ------------------------------------------------------------------
    def reprice_unit(self, plan: RoundPlan, unit: WorkUnit) -> float:
        """Fresh price of one participant's unit under its present profile.

        Rebuilds the solo decision from the agent's *current* resources and
        runs it back through :meth:`unit_duration`, so methods that chain
        per-agent communication (FedAvg) see churned bandwidths too.
        """
        agent_id = unit.agent_ids[0]
        if agent_id not in self.registry:
            return unit.duration
        agent = self.registry.get(agent_id)
        decision = solo_decisions([agent], self.profile)[0]
        return self.unit_duration(agent, decision)

    def on_agent_arrival(self, agent: Agent, neighbors=None, attachment=None) -> None:
        """Wire a mid-run arrival into the communication topology."""
        if attachment is None:
            self.topology.add_agent(agent.agent_id, neighbors)
        else:
            self.topology.attach_agent(
                agent.agent_id,
                policy=attachment.policy,
                k=attachment.k,
                rng=attachment.rng_for(agent.agent_id),
                neighbors=neighbors,
            )

    def on_agent_departure(self, agent: Agent) -> None:
        """Drop a departed agent's topology links."""
        self.topology.remove_agent(agent.agent_id)

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def select_participants(self) -> list[Agent]:
        """Sample this round's participants."""
        if self.config.participation_fraction >= 1.0:
            return self.registry.agents
        return self.registry.sample_participants(
            self.config.participation_fraction, self._participation_rng
        )

    def full_model_training_time(self, agent: Agent) -> float:
        """Time for an agent to train the full model on its shard."""
        return individual_training_time(agent, self.profile, agent.batch_size)

    def model_bytes(self) -> float:
        """Serialized full-model size in bytes."""
        return self.profile.full_model_bytes

    # ------------------------------------------------------------------
    # RoundStrategy
    # ------------------------------------------------------------------
    def plan_round(
        self, round_index: int, participants: Sequence[Agent]
    ) -> RoundPlan:
        """Price the round with the baseline's timing pattern, one solo unit per agent."""
        total, compute, communication = self.round_timing(participants)
        decisions = tuple(solo_decisions(participants, self.profile))
        units = tuple(
            WorkUnit(
                index=index,
                agent_ids=(agent.agent_id,),
                duration=self.unit_duration(agent, decisions[index]),
                decisions=(decisions[index],),
            )
            for index, agent in enumerate(participants)
        )
        return RoundPlan(
            round_index=round_index,
            decisions=decisions,
            units=units,
            aggregation_seconds=max(0.0, total - compute),
            duration_seconds=total,
            compute_seconds=compute,
            communication_seconds=communication,
            num_pairs=0,
        )
