"""Shared machinery for the baseline training methods.

Each baseline differs from ComDML only in (a) how a round's duration is
computed (no workload balancing — every agent trains the full model) and
(b) its aggregation pattern.  The run loop, participation sampling, dynamic
churn, learning-rate schedule and accuracy tracking are identical, so they
live here.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.agents.agent import Agent
from repro.agents.dynamics import ResourceChurn
from repro.agents.registry import AgentRegistry
from repro.core.config import ComDMLConfig
from repro.core.pairing import PairingDecision
from repro.core.profiling import SplitProfile, profile_architecture
from repro.core.workload import OffloadEstimate, individual_training_time
from repro.models.spec import ArchitectureSpec
from repro.network.link import LinkModel
from repro.network.topology import Topology, full_topology
from repro.nn.schedule import ReduceOnPlateau
from repro.sim.clock import SimClock
from repro.training.accuracy import AccuracyTracker, CurveAccuracyTracker
from repro.training.curves import LearningCurveModel, curve_preset_for
from repro.training.metrics import RoundRecord, RunHistory
from repro.utils.seeding import SeedSequenceFactory


class BaselineTrainer:
    """Base class implementing the round loop shared by all baselines."""

    #: Human-readable method name used in reports.
    method_name = "Baseline"
    #: Key into the learning-curve efficiency table.
    curve_method_key = "allreduce"

    def __init__(
        self,
        registry: AgentRegistry,
        spec: ArchitectureSpec,
        config: Optional[ComDMLConfig] = None,
        topology: Optional[Topology] = None,
        accuracy_tracker: Optional[AccuracyTracker] = None,
        profile: Optional[SplitProfile] = None,
    ) -> None:
        self.registry = registry
        self.spec = spec
        self.config = config if config is not None else ComDMLConfig()
        self.topology = (
            topology if topology is not None else full_topology(registry.ids)
        )
        self.link_model = LinkModel(self.topology)
        self.profile = (
            profile
            if profile is not None
            else profile_architecture(spec, granularity=self.config.offload_granularity)
        )
        seeds = SeedSequenceFactory(self.config.seed)
        self._participation_rng = seeds.generator(f"{self.method_name}.participation")
        self._method_rng = seeds.generator(f"{self.method_name}.method")
        self._churn_rng = seeds.generator(f"{self.method_name}.churn")
        self.churn = (
            ResourceChurn(
                fraction=self.config.churn_fraction,
                interval_rounds=self.config.churn_interval_rounds,
            )
            if self.config.churn_fraction > 0
            else None
        )
        self.accuracy_tracker = (
            accuracy_tracker
            if accuracy_tracker is not None
            else CurveAccuracyTracker(
                LearningCurveModel(
                    preset=curve_preset_for("cifar10", "resnet56"),
                    method=self.curve_method_key,
                    rng=seeds.generator(f"{self.method_name}.curve"),
                )
            )
        )
        self.clock = SimClock()
        self.history = RunHistory(method=self.method_name)
        self._lr_schedule = ReduceOnPlateau(
            learning_rate=self.config.learning_rate,
            factor=self.config.lr_plateau_factor,
            patience=self.config.lr_plateau_patience,
        )

    # ------------------------------------------------------------------
    # Hooks for subclasses
    # ------------------------------------------------------------------
    def round_timing(self, participants: Sequence[Agent]) -> tuple[float, float, float]:
        """Return ``(total, compute, communication)`` seconds for one round."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def select_participants(self) -> list[Agent]:
        """Sample this round's participants."""
        if self.config.participation_fraction >= 1.0:
            return self.registry.agents
        return self.registry.sample_participants(
            self.config.participation_fraction, self._participation_rng
        )

    def full_model_training_time(self, agent: Agent) -> float:
        """Time for an agent to train the full model on its shard."""
        return individual_training_time(agent, self.profile, agent.batch_size)

    def model_bytes(self) -> float:
        """Serialized full-model size in bytes."""
        return self.profile.full_model_bytes

    def _solo_decisions(self, participants: Sequence[Agent]) -> list[PairingDecision]:
        """Every participant trains the full model alone (no offloading)."""
        decisions: list[PairingDecision] = []
        for agent in participants:
            own_time = self.full_model_training_time(agent)
            estimate = OffloadEstimate(
                offloaded_layers=0,
                slow_time=own_time,
                fast_own_time=0.0,
                communication_time=0.0,
                fast_offload_time=0.0,
                pair_time=own_time,
            )
            decisions.append(
                PairingDecision(
                    slow_id=agent.agent_id,
                    fast_id=None,
                    offloaded_layers=0,
                    estimate=estimate,
                )
            )
        return decisions

    def _participation_fraction(self, participants: Sequence[Agent]) -> float:
        total = self.registry.total_samples
        if total == 0:
            return 1.0
        contributed = sum(agent.num_samples for agent in participants)
        return min(1.0, contributed / total)

    # ------------------------------------------------------------------
    # Round loop
    # ------------------------------------------------------------------
    def run_round(self, round_index: int) -> RoundRecord:
        """Execute one global round and return its record."""
        if self.churn is not None:
            self.churn.maybe_apply(round_index, self.registry, self._churn_rng)

        participants = self.select_participants()
        total_time, compute_time, communication_time = self.round_timing(participants)

        decisions = self._solo_decisions(participants)
        participation = self._participation_fraction(participants)
        learning_rate = self._lr_schedule.learning_rate
        accuracy = self.accuracy_tracker.after_round(decisions, participation, learning_rate)
        self._lr_schedule.step(accuracy)

        self.clock.advance(total_time)
        record = RoundRecord(
            round_index=round_index,
            duration_seconds=total_time,
            cumulative_seconds=self.clock.now,
            accuracy=accuracy,
            compute_seconds=compute_time,
            communication_seconds=communication_time,
            aggregation_seconds=max(0.0, total_time - compute_time),
            num_pairs=0,
        )
        self.history.append(record)
        return record

    def run(self) -> RunHistory:
        """Run until the target accuracy is reached or ``max_rounds`` expire."""
        for round_index in range(self.config.max_rounds):
            record = self.run_round(round_index)
            if (
                self.config.target_accuracy is not None
                and record.accuracy >= self.config.target_accuracy
            ):
                break
        return self.history
