"""BrainTorrent baseline (Roy et al., 2019).

A peer-to-peer framework in which, each round, one randomly selected agent
acts as the aggregator: every other agent trains the full model
independently and sends its update to the aggregator, which averages the
models and sends the result back.  There is no permanent server, but the
per-round aggregator's access link carries all of the aggregation traffic,
which makes rounds longer than AllReduce when the selected aggregator has a
slow link.
"""

from __future__ import annotations

from typing import Sequence

from repro.agents.agent import Agent
from repro.baselines.base import BaselineTrainer
from repro.sim.costs import DEFAULT_LINK_LATENCY_SECONDS
from repro.utils.units import mbps_to_bytes_per_second


class BrainTorrent(BaselineTrainer):
    """Rotating-aggregator peer-to-peer training."""

    method_name = "BrainTorrent"
    curve_method_key = "braintorrent"

    def round_timing(self, participants: Sequence[Agent]) -> tuple[float, float, float]:
        if not participants:
            return 0.0, 0.0, 0.0
        compute = max(self.full_model_training_time(agent) for agent in participants)

        # A random participant becomes this round's aggregator.
        aggregator: Agent = participants[
            int(self._method_rng.integers(0, len(participants)))
        ]
        aggregator_bandwidth = aggregator.profile.bandwidth_bytes_per_second
        if aggregator_bandwidth <= 0:
            aggregator_bandwidth = mbps_to_bytes_per_second(10.0)

        other_count = max(0, len(participants) - 1)
        # Receive every other agent's model, then broadcast the average back.
        # The aggregator's access link serialises both directions.
        per_transfer = DEFAULT_LINK_LATENCY_SECONDS + self.model_bytes() / aggregator_bandwidth
        aggregation = 2.0 * other_count * per_transfer
        return compute + aggregation, compute, aggregation
