"""FedAvg baseline (McMahan et al., 2017).

Server-coordinated federated averaging: every selected agent downloads the
global model, trains it on its full local shard, and uploads it back to the
central server, which averages the updates.  The round finishes when the
slowest agent's download + training + upload chain completes; the server's
own link is assumed not to be the bottleneck (it is a datacenter endpoint),
so each agent's chain is limited by its own access link — the configuration
most favourable to FedAvg.
"""

from __future__ import annotations

from typing import Sequence

from repro.agents.agent import Agent
from repro.baselines.base import BaselineTrainer
from repro.sim.costs import DEFAULT_LINK_LATENCY_SECONDS


class FedAvg(BaselineTrainer):
    """Central-server federated averaging."""

    method_name = "FedAvg"
    curve_method_key = "fedavg"

    def agent_round_time(self, agent: Agent) -> tuple[float, float, float]:
        """(total, compute, communication) chain for one agent's round."""
        compute = self.full_model_training_time(agent)
        bandwidth = agent.profile.bandwidth_bytes_per_second
        if bandwidth <= 0:
            # Disconnected agents cannot interact with the server this round;
            # they contribute no time (the server simply skips them).
            return 0.0, 0.0, 0.0
        # Download the global model, then upload the update.
        communication = 2.0 * (
            DEFAULT_LINK_LATENCY_SECONDS + self.model_bytes() / bandwidth
        )
        return compute + communication, compute, communication

    def round_timing(self, participants: Sequence[Agent]) -> tuple[float, float, float]:
        chains = [self.agent_round_time(agent) for agent in participants]
        if not chains:
            return 0.0, 0.0, 0.0
        total = max(chain[0] for chain in chains)
        compute = max(chain[1] for chain in chains)
        communication = max(chain[2] for chain in chains)
        return total, compute, communication
