"""FedAvg baseline (McMahan et al., 2017).

Server-coordinated federated averaging: every selected agent downloads the
global model, trains it on its full local shard, and uploads it back to the
central server, which averages the updates.  The round finishes when the
slowest agent's download + training + upload chain completes; the server's
own link is assumed not to be the bottleneck (it is a datacenter endpoint),
so each agent's chain is limited by its own access link — the configuration
most favourable to FedAvg.
"""

from __future__ import annotations

from typing import Sequence

from repro.agents.agent import Agent
from repro.baselines.base import BaselineTrainer
from repro.core.pairing import PairingDecision
from repro.sim.costs import DEFAULT_LINK_LATENCY_SECONDS


class FedAvg(BaselineTrainer):
    """Central-server federated averaging."""

    method_name = "FedAvg"
    curve_method_key = "fedavg"

    def agent_round_time(self, agent: Agent) -> tuple[float, float, float]:
        """(total, compute, communication) chain for one agent's round."""
        compute = self.full_model_training_time(agent)
        bandwidth = agent.profile.bandwidth_bytes_per_second
        if bandwidth <= 0:
            # Disconnected agents cannot interact with the server this round;
            # they contribute no time (the server simply skips them).
            return 0.0, 0.0, 0.0
        # Download the global model, then upload the update.
        communication = 2.0 * (
            DEFAULT_LINK_LATENCY_SECONDS + self.model_bytes() / bandwidth
        )
        return compute + communication, compute, communication

    def unit_duration(self, agent: Agent, decision: PairingDecision) -> float:
        """An agent's unit completes after its full download+train+upload chain.

        Disconnected agents contribute a zero-cost chain (the server skips
        them), but their unit still takes the local training time — a zero
        duration would let idle agents instantly fill a semi-sync quorum and
        crowd out agents that are actually training.
        """
        total = self.agent_round_time(agent)[0]
        return total if total > 0 else decision.estimate.pair_time

    # FedAvg's communication is priced inside each agent's chain (and thus in
    # unit_duration); the server's averaging itself is free.  Without these
    # overrides the default mode pricing would re-add the round-level
    # communication on top of the chains, double-counting it.
    def semi_sync_aggregation_seconds(self, plan, kept_units) -> float:
        return 0.0

    def async_unit_aggregation_seconds(self, plan, unit) -> float:
        return 0.0

    def round_timing(self, participants: Sequence[Agent]) -> tuple[float, float, float]:
        chains = [self.agent_round_time(agent) for agent in participants]
        if not chains:
            return 0.0, 0.0, 0.0
        total = max(chain[0] for chain in chains)
        compute = max(chain[1] for chain in chains)
        communication = max(chain[2] for chain in chains)
        return total, compute, communication
