"""FedProx baseline (Li et al., 2020).

FedProx follows FedAvg's server-coordinated timing but adds a proximal term
``(mu/2) ||w - w_global||^2`` to each agent's local objective, which
stabilises training under heterogeneity at a small cost in per-round
progress.  The timing plane is identical to FedAvg (the proximal gradient is
negligible extra compute); the learning plane uses the ``fedprox``
efficiency in curve mode and the proximal-term-aware
:class:`~repro.training.trainer.LocalTrainer` in proxy mode.
"""

from __future__ import annotations

from repro.baselines.fedavg import FedAvg


class FedProx(FedAvg):
    """FedAvg with a proximal regulariser on the local objective."""

    method_name = "FedProx"
    curve_method_key = "fedprox"

    def __init__(self, *args, proximal_mu: float = 0.01, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if proximal_mu < 0:
            raise ValueError(f"proximal_mu must be non-negative, got {proximal_mu}")
        self.proximal_mu = proximal_mu
