"""Gossip Learning baseline (Hegedűs et al., 2019).

Each agent trains the full model on its local shard and then exchanges its
model with one randomly chosen connected neighbour, averaging the two.
There is no global synchronisation point, but for comparability with the
other methods a "round" is one train-and-exchange cycle of every agent; the
round time is set by the slowest agent's training plus its model exchange.

Gossip's information mixes much more slowly than a global average — each
round an agent only sees one neighbour's model — which is why its
statistical efficiency in the learning-curve model is the lowest of the
compared methods, matching its longer time-to-accuracy in the paper.
"""

from __future__ import annotations

from typing import Sequence

from repro.agents.agent import Agent
from repro.baselines.base import BaselineTrainer
from repro.sim.costs import DEFAULT_LINK_LATENCY_SECONDS


class GossipLearning(BaselineTrainer):
    """Neighbour-to-neighbour model exchange with local averaging."""

    method_name = "Gossip Learning"
    curve_method_key = "gossip"

    def _exchange_time(self, agent: Agent, participants: Sequence[Agent]) -> float:
        """Time for one model push to a random connected neighbour."""
        neighbors = [
            other
            for other in participants
            if other.agent_id != agent.agent_id
            and self.link_model.can_communicate(agent, other)
        ]
        if not neighbors:
            return 0.0
        choice = neighbors[int(self._method_rng.integers(0, len(neighbors)))]
        bandwidth = self.link_model.bandwidth(agent, choice)
        if bandwidth <= 0:
            return 0.0
        return DEFAULT_LINK_LATENCY_SECONDS + self.model_bytes() / bandwidth

    def round_timing(self, participants: Sequence[Agent]) -> tuple[float, float, float]:
        if not participants:
            return 0.0, 0.0, 0.0
        chains = []
        for agent in participants:
            compute = self.full_model_training_time(agent)
            exchange = self._exchange_time(agent, participants)
            chains.append((compute + exchange, compute, exchange))
        total = max(chain[0] for chain in chains)
        compute = max(chain[1] for chain in chains)
        communication = max(chain[2] for chain in chains)
        return total, compute, communication
