"""Command-line interface for running the paper's experiments.

Installed as the ``comdml`` console script (also runnable as
``python -m repro.cli``).  Every experiment subcommand is a thin alias that
builds a :class:`~repro.experiments.campaign.CampaignSpec` and executes it
on the shared :class:`~repro.experiments.campaign.CampaignExecutor`, so all
of them accept the campaign execution flags: ``--jobs``, ``--cache-dir``
(default also via ``$COMDML_CACHE_DIR``), ``--backend``
(``serial``/``thread``/``process``/``worker-pool``), and
``--progress/--no-progress`` (live cell-level event streaming to stderr):

.. code-block:: console

   comdml compare  --agents 10 --dataset cifar10 --target 0.9
   comdml compare  --mode semi-sync --quorum-policy deadline --schedule sched.json
   comdml table2   --datasets cifar10 --methods ComDML FedAvg --jobs 4
   comdml table3   --models resnet56 --agent-counts 20 50 --backend thread --jobs 8
   comdml campaign run table2 --jobs 4 --progress
   comdml campaign run my_sweep.json --backend worker-pool --bind 0.0.0.0:8765
   comdml worker serve --host coordinator.example --port 8765     # on each host
   comdml campaign show my_sweep.json
   comdml campaign clean
   comdml schedule poisson --horizon 20000 --arrival-rate 0.001 --out sched.json
   comdml trace record --out run.jsonl --mode semi-sync --max-rounds 10
   comdml trace verify run.jsonl
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.experiments import comparison, fig1, fig3, privacy, table1, table2, table3
from repro.experiments.backends import (
    EXECUTION_BACKENDS,
    WorkerPoolBackend,
    serve_worker,
)
from repro.experiments.campaign import (
    CAMPAIGN_PRESETS,
    CampaignCache,
    CampaignExecutor,
    CampaignSpec,
    DEFAULT_CACHE_DIR,
    atomic_write_json,
    execute_campaign,
    resolve_cache_dir,
    resolve_preset,
)
from repro.experiments.reporting import (
    campaign_summary,
    cell_label,
    execution_report,
    format_campaign_summary,
    format_table,
    progress_renderer_for,
)
from repro.experiments.runner import PAPER_COMPARISON_METHODS
from repro.runtime.dynamics import ATTACHMENT_POLICIES, DynamicsSchedule
from repro.utils.logging import configure_logging

#: Columns of the ``compare`` table, in display order.
_COMPARE_COLUMNS = (
    "method",
    "rounds",
    "time_to_target_s",
    "total_time_s",
    "final_accuracy",
    "events",
)


def _add_common_output_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--json",
        dest="json_path",
        default=None,
        help="write machine-readable results to this JSON file",
    )
    parser.add_argument("--seed", type=int, default=0, help="experiment seed")


def _add_campaign_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="parallelism for the thread/process backends (1 = run inline)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="cache finished cells under this directory "
        "(defaults to $COMDML_CACHE_DIR when set)",
    )
    parser.add_argument(
        "--backend",
        choices=sorted(EXECUTION_BACKENDS),
        default=None,
        help="execution backend (default: process when --jobs > 1, else serial)",
    )
    parser.add_argument(
        "--bind",
        default="127.0.0.1:0",
        help="worker-pool only: coordinator bind address HOST:PORT "
        "(port 0 picks a free port, printed at startup)",
    )
    parser.add_argument(
        "--progress",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="stream cell-level progress events to stderr "
        "(default: only when stderr is a TTY)",
    )


def _parse_bind(bind: str) -> tuple[str, int]:
    host, _, port = bind.rpartition(":")
    if not port.isdigit() or not 0 <= int(port) <= 65535:
        raise SystemExit(
            f"error: --bind must look like HOST:PORT (port 0-65535), got {bind!r}"
        )
    return host or "127.0.0.1", int(port)


def _resolve_backend_arg(args: argparse.Namespace):
    """Turn ``--backend``/``--bind`` into what the executor accepts."""
    if args.backend != "worker-pool":
        return args.backend
    host, port = _parse_bind(args.bind)
    backend = WorkerPoolBackend(host=host, port=port)
    host, port = backend.address
    # A wildcard bind is reachable on every interface but dialable on none —
    # tell the operator to substitute a real coordinator address.
    reach = "<coordinator-host>" if host in ("0.0.0.0", "::", "") else host
    print(
        f"worker-pool coordinator listening on {host}:{port} — attach workers "
        f"with: comdml worker serve --host {reach} --port {port}",
        file=sys.stderr,
    )
    return backend


def _campaign_execution(
    args: argparse.Namespace,
    spec: CampaignSpec,
    cache_fallback: Optional[str] = None,
):
    """Shared execution kwargs + renderer for one campaign-backed command."""
    renderer = progress_renderer_for(spec, enabled=args.progress)
    kwargs = {
        "jobs": args.jobs,
        "cache_dir": resolve_cache_dir(args.cache_dir, cache_fallback),
        "backend": _resolve_backend_arg(args),
        "on_event": renderer,
    }
    return kwargs, renderer


def _maybe_write_json(path: Optional[str], payload) -> None:
    """Write ``payload`` as JSON, creating parent directories and replacing
    the target atomically so an interrupted run can never leave a truncated
    results file behind."""
    if path is None:
        return
    atomic_write_json(Path(path), payload, default=lambda obj: obj.__dict__)
    print(f"\nwrote {path}")


# ----------------------------------------------------------------------
# Experiment subcommands (campaign aliases)
# ----------------------------------------------------------------------

def _cmd_compare(args: argparse.Namespace) -> int:
    schedule = None
    if args.schedule is not None:
        with open(args.schedule, "r", encoding="utf-8") as handle:
            schedule = json.load(handle)
    spec = comparison.campaign_spec(
        methods=tuple(args.methods),
        schedule=schedule,
        num_agents=args.agents,
        dataset=args.dataset,
        model=args.model,
        iid=not args.non_iid,
        target_accuracy=args.target,
        max_rounds=args.max_rounds,
        churn_fraction=args.churn,
        churn_interval_rounds=args.churn_interval,
        participation_fraction=args.participation,
        offload_granularity=args.granularity,
        execution_mode=args.mode,
        quorum_fraction=args.quorum,
        quorum_policy=args.quorum_policy,
        quorum_deadline_factor=args.deadline_factor,
        seed=args.seed,
    )
    kwargs, renderer = _campaign_execution(args, spec)
    try:
        result = execute_campaign(spec, **kwargs)
    finally:
        if renderer is not None:
            renderer.close()
    rows = result.payloads()
    print(format_table(rows, columns=_COMPARE_COLUMNS))
    if args.target and any(row["method"] == "ComDML" for row in rows):
        print()
        speedups = comparison.speedups_from_payloads(rows, args.target)
        for method, speedup in speedups.items():
            print(f"ComDML is {speedup:.2f}x faster than {method}")
    # Export only the displayed columns: the payload's bookkeeping extras
    # (exact total time, history digest) would break pre-refactor JSON parity.
    _maybe_write_json(
        args.json_path,
        [{column: row[column] for column in _COMPARE_COLUMNS} for row in rows],
    )
    return 0


def _run_harness_campaign(args: argparse.Namespace, spec: CampaignSpec):
    """Execute one experiment harness spec with the shared campaign flags."""
    kwargs, renderer = _campaign_execution(args, spec)
    try:
        return execute_campaign(spec, **kwargs)
    finally:
        if renderer is not None:
            renderer.close()


def _cmd_table1(args: argparse.Namespace) -> int:
    spec = table1.campaign_spec(samples_per_agent=args.samples, seed=args.seed)
    results = table1.results_from_campaign(_run_harness_campaign(args, spec))
    print(table1.format_table1(results))
    _maybe_write_json(
        args.json_path,
        {name: [row.__dict__ for row in rows] for name, rows in results.items()},
    )
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    spec = table2.campaign_spec(
        datasets=args.datasets,
        methods=args.methods,
        num_agents=args.agents,
        seed=args.seed,
    )
    cells = table2.cells_from_campaign(_run_harness_campaign(args, spec))
    print(table2.format_table2(cells))
    _maybe_write_json(args.json_path, [cell.__dict__ for cell in cells])
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    spec = table3.campaign_spec(
        models=args.models,
        agent_counts=args.agent_counts,
        methods=args.methods,
        seed=args.seed,
    )
    cells = table3.cells_from_campaign(_run_harness_campaign(args, spec))
    print(table3.format_table3(cells))
    _maybe_write_json(args.json_path, [cell.__dict__ for cell in cells])
    return 0


def _cmd_fig1(args: argparse.Namespace) -> int:
    spec = fig1.campaign_spec(
        slow_cpu=args.slow_cpu,
        fast_cpu=args.fast_cpu,
        bandwidth_mbps=args.bandwidth,
    )
    result = _run_harness_campaign(args, spec)
    [timeline] = fig1.timelines_from_campaign(result)
    print(fig1.format_fig1(timeline))
    _maybe_write_json(args.json_path, timeline.__dict__)
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    spec = fig3.campaign_spec(
        datasets=args.datasets, methods=args.methods, seed=args.seed
    )
    bars = fig3.bars_from_campaign(_run_harness_campaign(args, spec))
    print(fig3.format_fig3(bars))
    _maybe_write_json(args.json_path, [bar.__dict__ for bar in bars])
    return 0


def _cmd_privacy(args: argparse.Namespace) -> int:
    spec = privacy.campaign_spec(
        num_agents=args.agents, rounds=args.rounds, seed=args.seed
    )
    results = privacy.results_from_campaign(_run_harness_campaign(args, spec))
    print(privacy.format_privacy_results(results))
    _maybe_write_json(args.json_path, [result.__dict__ for result in results])
    return 0


# ----------------------------------------------------------------------
# Generic campaign subcommand family
# ----------------------------------------------------------------------

def _resolve_spec(spec_arg: str):
    """Resolve a spec argument: preset name or path to a spec JSON file.

    Returns ``(spec, preset or None)``.
    """
    if spec_arg in CAMPAIGN_PRESETS:
        preset = resolve_preset(spec_arg)
        return preset.build_spec(), preset
    path = Path(spec_arg)
    if not path.exists():
        raise SystemExit(
            f"error: {spec_arg!r} is neither a campaign preset "
            f"({', '.join(sorted(CAMPAIGN_PRESETS))}) nor a spec file"
        )
    return CampaignSpec.load(path), None


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    spec, preset = _resolve_spec(args.spec)
    if args.save_spec:
        spec.save(args.save_spec)
        print(f"wrote {args.save_spec}")
    kwargs, renderer = _campaign_execution(args, spec, cache_fallback=DEFAULT_CACHE_DIR)
    executor = CampaignExecutor(spec, **kwargs)
    try:
        result = executor.run(force=args.force)
    finally:
        if renderer is not None:
            renderer.close()
    if preset is not None:
        print(preset.format_result(result))
        print()
    print(format_campaign_summary(result, verbose=preset is None))
    if args.summary_json:
        _maybe_write_json(args.summary_json, campaign_summary(result))
    if args.report_json:
        _maybe_write_json(args.report_json, execution_report(result))
    _maybe_write_json(args.json_path, result.payloads())
    return 0


def _cmd_campaign_show(args: argparse.Namespace) -> int:
    spec, _ = _resolve_spec(args.spec)
    cache_dir = resolve_cache_dir(args.cache_dir, DEFAULT_CACHE_DIR)
    executor = CampaignExecutor(spec, cache_dir=cache_dir, jobs=1)
    plan = executor.plan()
    cached = sum(1 for _, _, _, entry in plan if entry is not None)
    print(f"campaign {spec.name} (runner {spec.runner}): {len(plan)} cells, "
          f"{cached} cached in {cache_dir}")
    axes = [axis for axis, _ in spec.axes]
    for index, params, key, entry in plan:
        status = "cached" if entry is not None else "pending"
        print(f"  [{index:3d}] {status:8s} {key[:12]}  {cell_label(params, axes)}")
    return 0


def _cmd_campaign_clean(args: argparse.Namespace) -> int:
    cache_dir = resolve_cache_dir(args.cache_dir, DEFAULT_CACHE_DIR)
    removed = CampaignCache(cache_dir).clear()
    print(f"removed {removed} cached cell(s) from {cache_dir}")
    return 0


# ----------------------------------------------------------------------
# Worker pool
# ----------------------------------------------------------------------

def _cmd_worker_serve(args: argparse.Namespace) -> int:
    try:
        computed = serve_worker(
            args.host,
            args.port,
            name=args.name,
            capacity=args.capacity,
            retry_seconds=args.retry_seconds,
        )
    except OSError as error:
        print(
            f"error: could not attach to coordinator at {args.host}:{args.port}: "
            f"{error}",
            file=sys.stderr,
        )
        return 1
    print(f"worker detached after computing {computed} cell(s)")
    return 0


# ----------------------------------------------------------------------
# Sealed traces
# ----------------------------------------------------------------------

def _cmd_trace_record(args: argparse.Namespace) -> int:
    from repro.experiments.runner import ExperimentRunner
    from repro.experiments.scenarios import ScenarioConfig

    runner = ExperimentRunner(
        ScenarioConfig(
            num_agents=args.agents,
            dataset=args.dataset,
            model=args.model,
            max_rounds=args.max_rounds,
            execution_mode=args.mode,
            churn_fraction=args.churn,
            seed=args.seed,
        )
    )
    history = runner.run_method_sealed(
        args.method, args.out, segment_events=args.segment_events
    )
    print(
        f"recorded {len(history)} rounds of {args.method} ({args.mode}) "
        f"to sealed trace {args.out}"
    )
    print(f"history digest {history.digest()}")
    return 0


def _cmd_trace_verify(args: argparse.Namespace) -> int:
    from repro.runtime.audit import verify_sealed_jsonl

    result = verify_sealed_jsonl(args.path)
    if result.ok:
        print(
            f"OK: {args.path} verifies clean "
            f"({result.events} events, head {result.head})"
        )
        return 0
    print(f"TAMPERED: {args.path}: {result.error}", file=sys.stderr)
    if result.first_divergent_index is not None:
        print(
            f"first divergent event index: {result.first_divergent_index}",
            file=sys.stderr,
        )
    return 1


# ----------------------------------------------------------------------
# Schedule generation
# ----------------------------------------------------------------------

def _cmd_schedule_poisson(args: argparse.Namespace) -> int:
    schedule = DynamicsSchedule.poisson(
        horizon=args.horizon,
        arrival_rate=args.arrival_rate,
        departure_rate=args.departure_rate,
        seed=args.seed,
        departure_candidates=tuple(args.candidates),
        id_start=args.id_start,
        samples_per_agent=args.samples,
        attachment=args.attachment,
    )
    kinds = [event.kind for event in schedule]
    print(
        f"generated {len(schedule)} events over {args.horizon:.0f}s "
        f"({kinds.count('arrival')} arrivals, {kinds.count('departure')} departures)"
    )
    if args.out:
        schedule.save(args.out)
        print(f"wrote {args.out}")
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="comdml",
        description="ComDML reproduction: run the paper's experiments from the command line.",
    )
    parser.add_argument("--verbose", action="store_true", help="enable info logging")
    subparsers = parser.add_subparsers(dest="command", required=True)

    compare = subparsers.add_parser("compare", help="compare ComDML with baselines on one scenario")
    compare.add_argument("--agents", type=int, default=10)
    compare.add_argument("--dataset", choices=("cifar10", "cifar100", "cinic10"), default="cifar10")
    compare.add_argument("--model", choices=("resnet56", "resnet110"), default="resnet56")
    compare.add_argument("--non-iid", action="store_true", help="use the Dirichlet(0.5) label-skew variant")
    compare.add_argument("--target", type=float, default=0.9, help="target accuracy (0 disables)")
    compare.add_argument("--max-rounds", type=int, default=600)
    compare.add_argument("--churn", type=float, default=0.2, help="fraction of agents whose resources change")
    compare.add_argument(
        "--churn-interval",
        type=int,
        default=100,
        help="rounds between churn points (the paper uses 100)",
    )
    compare.add_argument("--participation", type=float, default=1.0)
    compare.add_argument("--granularity", type=int, default=6, help="split-candidate spacing in layers")
    compare.add_argument(
        "--mode",
        choices=("sync", "semi-sync", "async"),
        default="sync",
        help="runtime execution mode: full barrier, quorum rounds, or event-driven gossip",
    )
    compare.add_argument(
        "--quorum",
        type=float,
        default=0.8,
        help="fraction of work units that closes a semi-sync round",
    )
    compare.add_argument(
        "--quorum-policy",
        choices=("fixed", "deadline", "adaptive"),
        default="fixed",
        help="semi-sync quorum policy: fixed fraction, makespan deadline, or adaptive",
    )
    compare.add_argument(
        "--deadline-factor",
        type=float,
        default=1.5,
        help="deadline policy closes rounds at this multiple of the running makespan mean",
    )
    compare.add_argument(
        "--schedule",
        default=None,
        help="JSON DynamicsSchedule applied to every method's run (see 'comdml schedule')",
    )
    compare.add_argument("--methods", nargs="+", default=list(PAPER_COMPARISON_METHODS))
    _add_common_output_options(compare)
    _add_campaign_options(compare)
    compare.set_defaults(handler=_cmd_compare)

    table1_parser = subparsers.add_parser("table1", help="reproduce Table I")
    table1_parser.add_argument("--samples", type=int, default=25_000, help="samples per agent")
    _add_common_output_options(table1_parser)
    _add_campaign_options(table1_parser)
    table1_parser.set_defaults(handler=_cmd_table1)

    table2_parser = subparsers.add_parser("table2", help="reproduce Table II")
    table2_parser.add_argument("--datasets", nargs="+", default=["cifar10", "cifar100", "cinic10"])
    table2_parser.add_argument("--methods", nargs="+", default=list(PAPER_COMPARISON_METHODS))
    table2_parser.add_argument("--agents", type=int, default=10)
    _add_common_output_options(table2_parser)
    _add_campaign_options(table2_parser)
    table2_parser.set_defaults(handler=_cmd_table2)

    table3_parser = subparsers.add_parser("table3", help="reproduce Table III")
    table3_parser.add_argument("--models", nargs="+", default=["resnet56", "resnet110"])
    table3_parser.add_argument("--agent-counts", nargs="+", type=int, default=[20, 50, 100])
    table3_parser.add_argument("--methods", nargs="+", default=list(PAPER_COMPARISON_METHODS))
    _add_common_output_options(table3_parser)
    _add_campaign_options(table3_parser)
    table3_parser.set_defaults(handler=_cmd_table3)

    fig1_parser = subparsers.add_parser("fig1", help="reproduce the Figure 1 timeline")
    fig1_parser.add_argument("--slow-cpu", type=float, default=0.5)
    fig1_parser.add_argument("--fast-cpu", type=float, default=2.0)
    fig1_parser.add_argument("--bandwidth", type=float, default=50.0)
    _add_common_output_options(fig1_parser)
    _add_campaign_options(fig1_parser)
    fig1_parser.set_defaults(handler=_cmd_fig1)

    fig3_parser = subparsers.add_parser("fig3", help="reproduce Figure 3 (20%% connectivity)")
    fig3_parser.add_argument("--datasets", nargs="+", default=["cifar10", "cifar100", "cinic10"])
    fig3_parser.add_argument("--methods", nargs="+", default=list(PAPER_COMPARISON_METHODS))
    _add_common_output_options(fig3_parser)
    _add_campaign_options(fig3_parser)
    fig3_parser.set_defaults(handler=_cmd_fig3)

    privacy_parser = subparsers.add_parser("privacy", help="reproduce the privacy-integration comparison")
    privacy_parser.add_argument("--agents", type=int, default=8)
    privacy_parser.add_argument("--rounds", type=int, default=12)
    _add_common_output_options(privacy_parser)
    _add_campaign_options(privacy_parser)
    privacy_parser.set_defaults(handler=_cmd_privacy)

    campaign = subparsers.add_parser(
        "campaign", help="run/inspect/clean declarative experiment campaigns"
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    run_parser = campaign_sub.add_parser(
        "run", help="execute a campaign (preset name or spec JSON file)"
    )
    run_parser.add_argument(
        "spec",
        help=f"campaign preset ({', '.join(sorted(CAMPAIGN_PRESETS))}) or spec JSON path",
    )
    _add_campaign_options(run_parser)
    run_parser.add_argument(
        "--force", action="store_true", help="recompute cells even when cached"
    )
    run_parser.add_argument(
        "--save-spec", default=None, help="also write the expanded spec JSON here"
    )
    run_parser.add_argument(
        "--summary-json",
        default=None,
        help="write the deterministic result summary (cell keys + payload digests; "
        "identical bytes for any backend/jobs/cache state) here",
    )
    run_parser.add_argument(
        "--report-json",
        default=None,
        help="write the execution report (backend, cache hits, timing, workers) here",
    )
    run_parser.add_argument(
        "--json", dest="json_path", default=None, help="write cell payloads here"
    )
    run_parser.set_defaults(handler=_cmd_campaign_run)

    show_parser = campaign_sub.add_parser(
        "show", help="expand a campaign and report each cell's cache status"
    )
    show_parser.add_argument("spec", help="campaign preset or spec JSON path")
    show_parser.add_argument(
        "--cache-dir",
        default=None,
        help="cache root (defaults to $COMDML_CACHE_DIR, then .comdml-cache)",
    )
    show_parser.set_defaults(handler=_cmd_campaign_show)

    clean_parser = campaign_sub.add_parser("clean", help="delete the campaign cell cache")
    clean_parser.add_argument(
        "--cache-dir",
        default=None,
        help="cache root (defaults to $COMDML_CACHE_DIR, then .comdml-cache)",
    )
    clean_parser.set_defaults(handler=_cmd_campaign_clean)

    worker = subparsers.add_parser(
        "worker", help="run a worker-pool execution worker"
    )
    worker_sub = worker.add_subparsers(dest="worker_command", required=True)
    serve_parser = worker_sub.add_parser(
        "serve",
        help="attach to a campaign coordinator and compute cells until shutdown",
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="coordinator host")
    serve_parser.add_argument("--port", type=int, required=True, help="coordinator port")
    serve_parser.add_argument(
        "--name", default=None, help="worker name (default: hostname-pid)"
    )
    serve_parser.add_argument(
        "--capacity", type=int, default=1, help="cells this worker runs concurrently"
    )
    serve_parser.add_argument(
        "--retry-seconds",
        type=float,
        default=10.0,
        help="keep retrying the initial connection this long "
        "(workers may be started before the campaign)",
    )
    serve_parser.set_defaults(handler=_cmd_worker_serve)

    trace = subparsers.add_parser(
        "trace", help="record and verify tamper-evident sealed event traces"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    record_parser = trace_sub.add_parser(
        "record", help="run one method with a sealed JSONL trace sink"
    )
    record_parser.add_argument("--out", required=True, help="sealed trace path")
    record_parser.add_argument(
        "--method", default="ComDML", help="training method to run"
    )
    record_parser.add_argument("--agents", type=int, default=10)
    record_parser.add_argument(
        "--dataset", choices=("cifar10", "cifar100", "cinic10"), default="cifar10"
    )
    record_parser.add_argument(
        "--model", choices=("resnet56", "resnet110"), default="resnet56"
    )
    record_parser.add_argument("--max-rounds", type=int, default=20)
    record_parser.add_argument(
        "--mode", choices=("sync", "semi-sync", "async"), default="sync"
    )
    record_parser.add_argument(
        "--churn", type=float, default=0.0, help="churn fraction"
    )
    record_parser.add_argument(
        "--segment-events",
        type=int,
        default=None,
        help="events per sealed segment (default: config value)",
    )
    record_parser.add_argument("--seed", type=int, default=0)
    record_parser.set_defaults(handler=_cmd_trace_record)
    verify_parser = trace_sub.add_parser(
        "verify",
        help="re-derive a sealed trace's hash chain; exit 1 on tampering "
        "with the exact first divergent event index",
    )
    verify_parser.add_argument("path", help="sealed JSONL trace to verify")
    verify_parser.set_defaults(handler=_cmd_trace_verify)

    schedule = subparsers.add_parser(
        "schedule", help="generate dynamics schedules (save/load as JSON)"
    )
    schedule_sub = schedule.add_subparsers(dest="schedule_command", required=True)
    poisson_parser = schedule_sub.add_parser(
        "poisson", help="seeded Poisson arrival/departure schedule"
    )
    poisson_parser.add_argument("--horizon", type=float, required=True, help="simulated seconds")
    poisson_parser.add_argument("--arrival-rate", type=float, default=0.0, help="arrivals per second")
    poisson_parser.add_argument("--departure-rate", type=float, default=0.0, help="departures per second")
    poisson_parser.add_argument("--seed", type=int, default=0)
    poisson_parser.add_argument(
        "--candidates",
        nargs="*",
        type=int,
        default=[],
        help="initial agent ids eligible for departure",
    )
    poisson_parser.add_argument("--id-start", type=int, default=1000, help="first arrival id")
    poisson_parser.add_argument("--samples", type=int, default=500, help="samples per arriving agent")
    poisson_parser.add_argument(
        "--attachment",
        choices=ATTACHMENT_POLICIES,
        default="full",
        help="how arrivals are wired into the topology",
    )
    poisson_parser.add_argument("--out", default=None, help="write the schedule JSON here")
    poisson_parser.set_defaults(handler=_cmd_schedule_poisson)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.verbose:
        configure_logging()
    if getattr(args, "target", None) == 0:
        args.target = None
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
