"""Command-line interface for running the paper's experiments.

Installed as the ``comdml`` console script (also runnable as
``python -m repro.cli``).  Subcommands map one-to-one onto the experiment
harnesses:

.. code-block:: console

   comdml compare  --agents 10 --dataset cifar10 --target 0.9
   comdml compare  --mode semi-sync --quorum 0.75 --churn 0.2
   comdml compare  --mode semi-sync --quorum-policy deadline --deadline-factor 1.2
   comdml compare  --mode async --target 0
   comdml table1
   comdml table2   --datasets cifar10 --methods ComDML FedAvg
   comdml table3   --models resnet56 --agent-counts 20 50
   comdml fig3     --datasets cifar10
   comdml privacy  --rounds 12
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.experiments.fig1 import run_fig1
from repro.experiments.fig3 import format_fig3, run_fig3
from repro.experiments.privacy import format_privacy_results, run_privacy_comparison
from repro.experiments.reporting import (
    dynamics_annotation,
    format_table,
    speedup_over_baselines,
)
from repro.experiments.runner import PAPER_COMPARISON_METHODS, ExperimentRunner
from repro.experiments.scenarios import ScenarioConfig
from repro.experiments.table1 import format_table1, run_table1
from repro.experiments.table2 import format_table2, run_table2
from repro.experiments.table3 import format_table3, run_table3
from repro.utils.logging import configure_logging


def _add_common_output_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--json",
        dest="json_path",
        default=None,
        help="write machine-readable results to this JSON file",
    )
    parser.add_argument("--seed", type=int, default=0, help="experiment seed")


def _maybe_write_json(path: Optional[str], payload) -> None:
    if path is None:
        return
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, default=lambda obj: obj.__dict__)
    print(f"\nwrote {path}")


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------

def _cmd_compare(args: argparse.Namespace) -> int:
    config = ScenarioConfig(
        num_agents=args.agents,
        dataset=args.dataset,
        model=args.model,
        iid=not args.non_iid,
        target_accuracy=args.target,
        max_rounds=args.max_rounds,
        churn_fraction=args.churn,
        churn_interval_rounds=args.churn_interval,
        participation_fraction=args.participation,
        offload_granularity=args.granularity,
        execution_mode=args.mode,
        quorum_fraction=args.quorum,
        quorum_policy=args.quorum_policy,
        quorum_deadline_factor=args.deadline_factor,
        seed=args.seed,
    )
    runner = ExperimentRunner(config)
    rows = []
    results = {}
    for method in args.methods:
        history, trace = runner.run_method_with_trace(method)
        results[method] = history
        rows.append(
            {
                "method": method,
                "rounds": len(history),
                "time_to_target_s": history.time_to_accuracy(args.target)
                if args.target
                else None,
                "total_time_s": round(history.total_time, 1),
                "final_accuracy": round(history.final_accuracy, 4),
                "events": dynamics_annotation(trace),
            }
        )
    print(format_table(rows))
    if args.target and "ComDML" in results:
        print()
        for method, speedup in speedup_over_baselines(results, args.target).items():
            print(f"ComDML is {speedup:.2f}x faster than {method}")
    _maybe_write_json(args.json_path, rows)
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    results = run_table1(samples_per_agent=args.samples, seed=args.seed)
    print(format_table1(results))
    _maybe_write_json(
        args.json_path,
        {name: [row.__dict__ for row in rows] for name, rows in results.items()},
    )
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    cells = run_table2(
        datasets=args.datasets,
        methods=args.methods,
        num_agents=args.agents,
        seed=args.seed,
    )
    print(format_table2(cells))
    _maybe_write_json(args.json_path, [cell.__dict__ for cell in cells])
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    cells = run_table3(
        models=args.models,
        agent_counts=args.agent_counts,
        methods=args.methods,
        seed=args.seed,
    )
    print(format_table3(cells))
    _maybe_write_json(args.json_path, [cell.__dict__ for cell in cells])
    return 0


def _cmd_fig1(args: argparse.Namespace) -> int:
    timeline = run_fig1(
        slow_cpu=args.slow_cpu,
        fast_cpu=args.fast_cpu,
        bandwidth_mbps=args.bandwidth,
    )
    print(f"round without balancing : {timeline.round_time_without_balancing:10.1f} s")
    print(f"round with balancing    : {timeline.round_time_with_balancing:10.1f} s")
    print(f"offloaded layers        : {timeline.offloaded_layers:10d}")
    print(f"reduction               : {timeline.round_time_reduction_fraction:10.1%}")
    _maybe_write_json(args.json_path, timeline.__dict__)
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    bars = run_fig3(datasets=args.datasets, methods=args.methods, seed=args.seed)
    print(format_fig3(bars))
    _maybe_write_json(args.json_path, [bar.__dict__ for bar in bars])
    return 0


def _cmd_privacy(args: argparse.Namespace) -> int:
    results = run_privacy_comparison(
        num_agents=args.agents, rounds=args.rounds, seed=args.seed
    )
    print(format_privacy_results(results))
    _maybe_write_json(args.json_path, [result.__dict__ for result in results])
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="comdml",
        description="ComDML reproduction: run the paper's experiments from the command line.",
    )
    parser.add_argument("--verbose", action="store_true", help="enable info logging")
    subparsers = parser.add_subparsers(dest="command", required=True)

    compare = subparsers.add_parser("compare", help="compare ComDML with baselines on one scenario")
    compare.add_argument("--agents", type=int, default=10)
    compare.add_argument("--dataset", choices=("cifar10", "cifar100", "cinic10"), default="cifar10")
    compare.add_argument("--model", choices=("resnet56", "resnet110"), default="resnet56")
    compare.add_argument("--non-iid", action="store_true", help="use the Dirichlet(0.5) label-skew variant")
    compare.add_argument("--target", type=float, default=0.9, help="target accuracy (0 disables)")
    compare.add_argument("--max-rounds", type=int, default=600)
    compare.add_argument("--churn", type=float, default=0.2, help="fraction of agents whose resources change")
    compare.add_argument(
        "--churn-interval",
        type=int,
        default=100,
        help="rounds between churn points (the paper uses 100)",
    )
    compare.add_argument("--participation", type=float, default=1.0)
    compare.add_argument("--granularity", type=int, default=6, help="split-candidate spacing in layers")
    compare.add_argument(
        "--mode",
        choices=("sync", "semi-sync", "async"),
        default="sync",
        help="runtime execution mode: full barrier, quorum rounds, or event-driven gossip",
    )
    compare.add_argument(
        "--quorum",
        type=float,
        default=0.8,
        help="fraction of work units that closes a semi-sync round",
    )
    compare.add_argument(
        "--quorum-policy",
        choices=("fixed", "deadline", "adaptive"),
        default="fixed",
        help="semi-sync quorum policy: fixed fraction, makespan deadline, or adaptive",
    )
    compare.add_argument(
        "--deadline-factor",
        type=float,
        default=1.5,
        help="deadline policy closes rounds at this multiple of the running makespan mean",
    )
    compare.add_argument("--methods", nargs="+", default=list(PAPER_COMPARISON_METHODS))
    _add_common_output_options(compare)
    compare.set_defaults(handler=_cmd_compare)

    table1 = subparsers.add_parser("table1", help="reproduce Table I")
    table1.add_argument("--samples", type=int, default=25_000, help="samples per agent")
    _add_common_output_options(table1)
    table1.set_defaults(handler=_cmd_table1)

    table2 = subparsers.add_parser("table2", help="reproduce Table II")
    table2.add_argument("--datasets", nargs="+", default=["cifar10", "cifar100", "cinic10"])
    table2.add_argument("--methods", nargs="+", default=list(PAPER_COMPARISON_METHODS))
    table2.add_argument("--agents", type=int, default=10)
    _add_common_output_options(table2)
    table2.set_defaults(handler=_cmd_table2)

    table3 = subparsers.add_parser("table3", help="reproduce Table III")
    table3.add_argument("--models", nargs="+", default=["resnet56", "resnet110"])
    table3.add_argument("--agent-counts", nargs="+", type=int, default=[20, 50, 100])
    table3.add_argument("--methods", nargs="+", default=list(PAPER_COMPARISON_METHODS))
    _add_common_output_options(table3)
    table3.set_defaults(handler=_cmd_table3)

    fig1 = subparsers.add_parser("fig1", help="reproduce the Figure 1 timeline")
    fig1.add_argument("--slow-cpu", type=float, default=0.5)
    fig1.add_argument("--fast-cpu", type=float, default=2.0)
    fig1.add_argument("--bandwidth", type=float, default=50.0)
    _add_common_output_options(fig1)
    fig1.set_defaults(handler=_cmd_fig1)

    fig3 = subparsers.add_parser("fig3", help="reproduce Figure 3 (20%% connectivity)")
    fig3.add_argument("--datasets", nargs="+", default=["cifar10", "cifar100", "cinic10"])
    fig3.add_argument("--methods", nargs="+", default=list(PAPER_COMPARISON_METHODS))
    _add_common_output_options(fig3)
    fig3.set_defaults(handler=_cmd_fig3)

    privacy = subparsers.add_parser("privacy", help="reproduce the privacy-integration comparison")
    privacy.add_argument("--agents", type=int, default=8)
    privacy.add_argument("--rounds", type=int, default=12)
    _add_common_output_options(privacy)
    privacy.set_defaults(handler=_cmd_privacy)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.verbose:
        configure_logging()
    if getattr(args, "target", None) == 0:
        args.target = None
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
