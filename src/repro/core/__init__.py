"""ComDML core: profiling, workload balancing, pairing, and orchestration."""

from repro.core.profiling import SplitProfile, profile_architecture
from repro.core.workload import (
    OffloadEstimate,
    estimate_offload_time,
    best_offload,
    exact_min_makespan,
)
from repro.core.fastpath import PairCostModel
from repro.core.pairing import PairingDecision, greedy_pairing, greedy_pairing_reference
from repro.core.scheduler import DecentralizedPairingScheduler
from repro.core.timing import PairTiming, RoundTiming, compute_round_timing
from repro.core.config import ComDMLConfig
from repro.core.comdml import ComDML

__all__ = [
    "SplitProfile",
    "profile_architecture",
    "OffloadEstimate",
    "estimate_offload_time",
    "best_offload",
    "exact_min_makespan",
    "PairCostModel",
    "PairingDecision",
    "greedy_pairing",
    "greedy_pairing_reference",
    "DecentralizedPairingScheduler",
    "PairTiming",
    "RoundTiming",
    "compute_round_timing",
    "ComDMLConfig",
    "ComDML",
]
