"""ComDML core: profiling, workload balancing, pairing, and orchestration."""

from repro.core.profiling import SplitProfile, profile_architecture
from repro.core.workload import (
    OffloadEstimate,
    estimate_offload_time,
    best_offload,
    exact_min_makespan,
)
from repro.core.fastpath import (
    PairCostModel,
    SparseBandwidth,
    agent_vectors,
    sparse_bandwidth,
)
from repro.core.pairing import PairingDecision, greedy_pairing, greedy_pairing_reference
from repro.core.planner import (
    PlannerState,
    PlannerStats,
    PrunedPlanner,
    build_planner,
)
from repro.core.shard import ShardStats, ShardedPlanner, stale_segment_names
from repro.core.scheduler import DecentralizedPairingScheduler
from repro.core.timing import PairTiming, RoundTiming, compute_round_timing
from repro.core.config import ComDMLConfig
from repro.core.comdml import ComDML

__all__ = [
    "SplitProfile",
    "profile_architecture",
    "OffloadEstimate",
    "estimate_offload_time",
    "best_offload",
    "exact_min_makespan",
    "PairCostModel",
    "SparseBandwidth",
    "agent_vectors",
    "sparse_bandwidth",
    "PairingDecision",
    "greedy_pairing",
    "greedy_pairing_reference",
    "PlannerState",
    "PlannerStats",
    "PrunedPlanner",
    "build_planner",
    "ShardStats",
    "ShardedPlanner",
    "stale_segment_names",
    "DecentralizedPairingScheduler",
    "PairTiming",
    "RoundTiming",
    "compute_round_timing",
    "ComDMLConfig",
    "ComDML",
]
