"""ComDML's contribution to the shared training runtime.

Since the runtime split, this module no longer owns a round loop.  The
shared machinery of Algorithm 1 — dynamic resource churn, participation
sampling, the learning-rate schedule, accuracy tracking, the run history,
and the event-driven execution modes — lives in
:class:`~repro.runtime.TrainingRuntime`.  :class:`ComDML` contributes only
what makes the method itself: **agent pairing** via the decentralized greedy
scheduler and the **pairing-plan timing** (per-pair cost breakdown plus the
decentralized AllReduce aggregation), packaged as a
:class:`~repro.runtime.strategy.RoundPlan` whose work units are pairing
decisions.

``ComDML.run`` delegates to the runtime and supports all three execution
modes (``sync`` / ``semi-sync`` / ``async``) selected through
``ComDMLConfig.execution_mode``; ``sync`` reproduces the paper's round
structure exactly.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.agents.agent import Agent
from repro.agents.registry import AgentRegistry
from repro.core.config import ComDMLConfig
from repro.core.planner import build_planner
from repro.core.profiling import SplitProfile, profile_architecture
from repro.core.scheduler import DecentralizedPairingScheduler
from repro.core.timing import bottleneck_bandwidth, compute_round_timing
from repro.core.workload import estimate_offload_time, individual_training_time
from repro.models.spec import ArchitectureSpec
from repro.network.allreduce import allreduce_time
from repro.network.compression import QuantizationCompressor
from repro.network.link import LinkModel
from repro.network.topology import Topology, full_topology
from repro.runtime.dynamics import DynamicsSchedule
from repro.runtime.runtime import RuntimeDelegate, TrainingRuntime
from repro.runtime.strategy import RoundPlan, StrategyDefaults, WorkUnit
from repro.runtime.trace import EventTrace
from repro.sim.costs import transfer_time_seconds
from repro.training.accuracy import AccuracyTracker, CurveAccuracyTracker
from repro.training.curves import LearningCurveModel
from repro.utils.seeding import SeedSequenceFactory


class ComDML(StrategyDefaults, RuntimeDelegate):
    """Communication-efficient workload-balanced decentralized training."""

    method_name = "ComDML"

    def __init__(
        self,
        registry: AgentRegistry,
        spec: ArchitectureSpec,
        config: Optional[ComDMLConfig] = None,
        topology: Optional[Topology] = None,
        accuracy_tracker: Optional[AccuracyTracker] = None,
        profile: Optional[SplitProfile] = None,
        dynamics: Optional[DynamicsSchedule] = None,
        trace: Optional[EventTrace] = None,
    ) -> None:
        self.registry = registry
        self.spec = spec
        self.config = config if config is not None else ComDMLConfig()
        self.topology = (
            topology if topology is not None else full_topology(registry.ids)
        )
        seeds = SeedSequenceFactory(self.config.seed)
        self.profile = (
            profile
            if profile is not None
            else profile_architecture(spec, granularity=self.config.offload_granularity)
        )
        self.link_model = LinkModel(self.topology)
        self.planner = build_planner(
            self.profile,
            self.link_model,
            mode=self.config.planner,
            top_k=self.config.planner_top_k,
            threshold=self.config.planner_threshold,
            improvement_threshold=self.config.improvement_threshold,
            shards=self.config.planner_shards,
            balance=self.config.planner_balance,
            compaction_threshold=self.config.planner_csr_compaction,
        )
        #: Agent ids whose planner rows went stale since the last plan.
        #: Arrival/departure bursts coalesce here and flush as ONE
        #: invalidation at plan time, so d events cost one O(d·k·s)
        #: re-cost pass instead of d separate dirty-closure scans.
        self._pending_invalidations: set[int] = set()
        self.scheduler = DecentralizedPairingScheduler(
            registry=registry,
            link_model=self.link_model,
            profile=self.profile,
            participation_fraction=self.config.participation_fraction,
            improvement_threshold=self.config.improvement_threshold,
            rng=seeds.generator("participation"),
            planner=self.planner,
        )
        self._aggregation_compressor = (
            QuantizationCompressor(bits=self.config.aggregation_compression_bits)
            if self.config.aggregation_compression_bits is not None
            else None
        )
        tracker = (
            accuracy_tracker
            if accuracy_tracker is not None
            else CurveAccuracyTracker(
                LearningCurveModel(
                    preset=_default_curve_preset(),
                    method="comdml",
                    rng=seeds.generator("curve"),
                )
            )
        )
        self.runtime = TrainingRuntime(
            strategy=self,
            registry=registry,
            config=self.config,
            accuracy_tracker=tracker,
            churn_rng=seeds.generator("churn"),
            dynamics=dynamics,
            trace=trace,
        )

    # ------------------------------------------------------------------
    # RoundStrategy
    # ------------------------------------------------------------------
    def select_participants(self) -> list[Agent]:
        """Sample this round's participants via the scheduler's RNG stream."""
        return self.scheduler.select_participants()

    def plan_round(
        self, round_index: int, participants: Sequence[Agent]
    ) -> RoundPlan:
        """Pair the participants and price the round from the pairing plan."""
        self._flush_invalidations()
        decisions = self.scheduler.plan_round(participants)
        timing = compute_round_timing(
            decisions,
            registry=self.registry,
            profile=self.profile,
            allreduce_algorithm=self.config.allreduce_algorithm,
            num_aggregating_agents=len(participants),
            compressor=self._aggregation_compressor,
        )
        units = tuple(
            WorkUnit(
                index=index,
                agent_ids=(decision.slow_id,)
                if decision.fast_id is None
                else (decision.slow_id, decision.fast_id),
                duration=decision.estimate.pair_time,
                decisions=(decision,),
            )
            for index, decision in enumerate(decisions)
        )
        return RoundPlan(
            round_index=round_index,
            decisions=tuple(decisions),
            units=units,
            aggregation_seconds=timing.aggregation_time,
            duration_seconds=timing.total_time,
            compute_seconds=timing.makespan,
            communication_seconds=timing.total_communication_time,
            num_pairs=timing.num_pairs,
        )

    def _registered_agents(self, agent_ids) -> list[Agent]:
        return [
            self.registry.get(agent_id)
            for agent_id in agent_ids
            if agent_id in self.registry
        ]

    def semi_sync_aggregation_seconds(
        self, plan: RoundPlan, kept_units: Sequence[WorkUnit]
    ) -> float:
        """Re-price the AllReduce over only the agents that made the quorum."""
        involved = {
            agent_id for unit in kept_units for agent_id in unit.agent_ids
        }
        agents = self._registered_agents(involved)
        if not agents:
            return 0.0
        return allreduce_time(
            model_bytes=self.profile.full_model_bytes,
            num_agents=max(1, len(involved)),
            bottleneck_bandwidth_bytes_per_second=bottleneck_bandwidth(agents),
            algorithm=self.config.allreduce_algorithm,
            compressor=self._aggregation_compressor,
        )

    def async_unit_aggregation_seconds(self, plan: RoundPlan, unit: WorkUnit) -> float:
        """Price one pair's gossip exchange: its slowest member pushes a model."""
        agents = self._registered_agents(unit.agent_ids)
        if not agents:
            return 0.0
        model_bytes = self.profile.full_model_bytes
        if self._aggregation_compressor is not None:
            model_bytes = self._aggregation_compressor.compressed_bytes(model_bytes)
        return transfer_time_seconds(model_bytes, bottleneck_bandwidth(agents))

    # ------------------------------------------------------------------
    # Mid-round dynamics hooks
    # ------------------------------------------------------------------
    def reprice_unit(self, plan: RoundPlan, unit: WorkUnit) -> float:
        """Fresh price of a pairing decision under present agent profiles.

        Solo units re-price at the slow agent's current individual training
        time.  Pairs re-run the paper's ``AgentTrainingTime`` estimate for
        the *same* split under the churned profiles; if churn severed the
        pair's link (a member went to 0 Mbps), the offload is effectively
        lost and the slow agent is priced as finishing alone.
        """
        decision = unit.decisions[0]
        if decision.slow_id not in self.registry:
            return unit.duration
        slow = self.registry.get(decision.slow_id)
        solo_time = individual_training_time(slow, self.profile, slow.batch_size)
        if decision.fast_id is None or decision.fast_id not in self.registry:
            return solo_time
        fast = self.registry.get(decision.fast_id)
        bandwidth = self.link_model.bandwidth(slow, fast)
        if bandwidth <= 0:
            return solo_time
        return estimate_offload_time(
            slow_agent=slow,
            fast_agent=fast,
            offloaded_layers=decision.offloaded_layers,
            profile=self.profile,
            bandwidth_bytes_per_second=bandwidth,
        ).pair_time

    def on_agent_arrival(self, agent, neighbors=None, attachment=None) -> None:
        """Wire a mid-run arrival into the communication topology."""
        if attachment is None:
            self.topology.add_agent(agent.agent_id, neighbors)
        else:
            self.topology.attach_agent(
                agent.agent_id,
                policy=attachment.policy,
                k=attachment.k,
                rng=attachment.rng_for(agent.agent_id),
                neighbors=neighbors,
            )
        if self.planner is not None:
            self._pending_invalidations.add(agent.agent_id)

    def on_agent_departure(self, agent) -> None:
        """Drop a departed agent's topology links."""
        self.topology.remove_agent(agent.agent_id)
        if self.planner is not None:
            self._pending_invalidations.add(agent.agent_id)

    def planner_report(self) -> Optional[dict]:
        """Operation counters of this run's planner, or ``None`` without one.

        The :class:`~repro.core.planner.PlannerStats` counters (rows
        recomputed/reused, CSR edits/rebuilds/compactions), plus — when the
        sharded planner is active — its :class:`~repro.core.shard.ShardStats`
        under a ``"shards"`` key (per-shard cost split and spread).  Campaign
        cells attach this to their payload so
        :func:`repro.experiments.reporting.execution_report` can aggregate
        planner behaviour, shard imbalance included, across the sweep.
        """
        if self.planner is None:
            return None
        report = self.planner.stats.report()
        shard_stats = getattr(self.planner, "shard_stats", None)
        if shard_stats is not None:
            report["shards"] = shard_stats.report()
        return report

    def _flush_invalidations(self) -> None:
        """Hand the coalesced dynamics dirty set to the planner, once.

        Arrivals and departures are wiring changes, so this flushes
        through :meth:`~repro.core.planner.PrunedPlanner.invalidate_topology`
        — the planner applies the topology journal's O(Δ) edits to its
        CSR structure eagerly, off the next plan's critical path.
        """
        if self.planner is not None and self._pending_invalidations:
            self.planner.invalidate_topology(sorted(self._pending_invalidations))
        self._pending_invalidations.clear()


def _default_curve_preset():
    """Default calibration (CIFAR-10-like / ResNet-56) used when no tracker is given."""
    from repro.training.curves import curve_preset_for

    return curve_preset_for("cifar10", "resnet56")
