"""ComDML round orchestration.

Ties the pieces together exactly as Algorithm 1 prescribes, per round:

1. optional dynamic resource churn (heterogeneous environments);
2. participation sampling (when a fraction < 1 is configured);
3. **agent pairing** via the decentralized greedy scheduler;
4. **local model update** — timing from the pairing plan's cost breakdown,
   accuracy from the configured tracker (real proxy training or calibrated
   curve);
5. **model aggregation** with decentralized AllReduce (halving-doubling by
   default), whose cost closes the round.

``ComDML.run`` stops when the target accuracy is reached or ``max_rounds``
expire and returns a :class:`~repro.training.metrics.RunHistory`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.agents.dynamics import ResourceChurn
from repro.agents.registry import AgentRegistry
from repro.core.config import ComDMLConfig
from repro.core.pairing import PairingDecision
from repro.core.profiling import SplitProfile, profile_architecture
from repro.core.scheduler import DecentralizedPairingScheduler
from repro.core.timing import compute_round_timing
from repro.models.spec import ArchitectureSpec
from repro.network.compression import QuantizationCompressor
from repro.network.link import LinkModel
from repro.network.topology import Topology, full_topology
from repro.nn.schedule import ReduceOnPlateau
from repro.sim.clock import SimClock
from repro.training.accuracy import AccuracyTracker, CurveAccuracyTracker
from repro.training.curves import LearningCurveModel
from repro.training.metrics import RoundRecord, RunHistory
from repro.utils.logging import get_logger
from repro.utils.seeding import SeedSequenceFactory

logger = get_logger("core.comdml")


class ComDML:
    """Communication-efficient workload-balanced decentralized training."""

    method_name = "ComDML"

    def __init__(
        self,
        registry: AgentRegistry,
        spec: ArchitectureSpec,
        config: Optional[ComDMLConfig] = None,
        topology: Optional[Topology] = None,
        accuracy_tracker: Optional[AccuracyTracker] = None,
        profile: Optional[SplitProfile] = None,
    ) -> None:
        self.registry = registry
        self.spec = spec
        self.config = config if config is not None else ComDMLConfig()
        self.topology = (
            topology if topology is not None else full_topology(registry.ids)
        )
        seeds = SeedSequenceFactory(self.config.seed)
        self.profile = (
            profile
            if profile is not None
            else profile_architecture(spec, granularity=self.config.offload_granularity)
        )
        self.link_model = LinkModel(self.topology)
        self.scheduler = DecentralizedPairingScheduler(
            registry=registry,
            link_model=self.link_model,
            profile=self.profile,
            participation_fraction=self.config.participation_fraction,
            improvement_threshold=self.config.improvement_threshold,
            rng=seeds.generator("participation"),
        )
        self.churn = (
            ResourceChurn(
                fraction=self.config.churn_fraction,
                interval_rounds=self.config.churn_interval_rounds,
            )
            if self.config.churn_fraction > 0
            else None
        )
        self._churn_rng = seeds.generator("churn")
        self.accuracy_tracker = (
            accuracy_tracker
            if accuracy_tracker is not None
            else CurveAccuracyTracker(
                LearningCurveModel(
                    preset=_default_curve_preset(),
                    method="comdml",
                    rng=seeds.generator("curve"),
                )
            )
        )
        self.clock = SimClock()
        self.history = RunHistory(method=self.method_name)
        self._lr_schedule = ReduceOnPlateau(
            learning_rate=self.config.learning_rate,
            factor=self.config.lr_plateau_factor,
            patience=self.config.lr_plateau_patience,
        )
        self._aggregation_compressor = (
            QuantizationCompressor(bits=self.config.aggregation_compression_bits)
            if self.config.aggregation_compression_bits is not None
            else None
        )

    # ------------------------------------------------------------------
    def _participation_fraction(self, decisions: list[PairingDecision]) -> float:
        """Fraction of the population's data that contributed this round."""
        involved: set[int] = set()
        for decision in decisions:
            involved.add(decision.slow_id)
            if decision.fast_id is not None:
                involved.add(decision.fast_id)
        total = self.registry.total_samples
        if total == 0:
            return 1.0
        contributed = sum(
            self.registry.get(agent_id).num_samples
            for agent_id in involved
            if agent_id in self.registry
        )
        return min(1.0, contributed / total)

    def run_round(self, round_index: int) -> RoundRecord:
        """Execute one global round and return its record."""
        if self.churn is not None:
            changed = self.churn.maybe_apply(round_index, self.registry, self._churn_rng)
            if changed:
                logger.debug("round %d: churned profiles of agents %s", round_index, changed)

        participants = self.scheduler.select_participants()
        decisions = self.scheduler.plan_round(participants)
        timing = compute_round_timing(
            decisions,
            registry=self.registry,
            profile=self.profile,
            allreduce_algorithm=self.config.allreduce_algorithm,
            num_aggregating_agents=len(participants),
            compressor=self._aggregation_compressor,
        )

        participation = self._participation_fraction(decisions)
        learning_rate = self._lr_schedule.learning_rate
        accuracy = self.accuracy_tracker.after_round(decisions, participation, learning_rate)
        self._lr_schedule.step(accuracy)

        self.clock.advance(timing.total_time)
        record = RoundRecord(
            round_index=round_index,
            duration_seconds=timing.total_time,
            cumulative_seconds=self.clock.now,
            accuracy=accuracy,
            compute_seconds=timing.makespan,
            communication_seconds=timing.total_communication_time,
            aggregation_seconds=timing.aggregation_time,
            num_pairs=timing.num_pairs,
        )
        self.history.append(record)
        return record

    def run(self) -> RunHistory:
        """Run until the target accuracy is reached or ``max_rounds`` expire."""
        for round_index in range(self.config.max_rounds):
            record = self.run_round(round_index)
            if (
                self.config.target_accuracy is not None
                and record.accuracy >= self.config.target_accuracy
            ):
                logger.info(
                    "target accuracy %.3f reached after %d rounds (%.0f simulated s)",
                    self.config.target_accuracy,
                    round_index + 1,
                    self.clock.now,
                )
                break
        return self.history


def _default_curve_preset():
    """Default calibration (CIFAR-10-like / ResNet-56) used when no tracker is given."""
    from repro.training.curves import curve_preset_for

    return curve_preset_for("cifar10", "resnet56")
