"""Configuration of a ComDML (or baseline) training run."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.utils.validation import check_positive, check_probability

#: Valid runtime execution modes (see :mod:`repro.runtime.runtime`).
EXECUTION_MODES = ("sync", "semi-sync", "async")

#: Valid semi-sync quorum policies (see :mod:`repro.runtime.quorum`).
QUORUM_POLICIES = ("fixed", "deadline", "adaptive")

#: Valid round-planner selections (see :mod:`repro.core.planner` and
#: :mod:`repro.core.shard`).
PLANNER_MODES = ("dense", "pruned", "auto", "sharded")


def normalize_planner_mode(mode: str) -> str:
    """Canonicalise a planner-mode name (case-insensitive)."""
    normalized = mode.lower()
    if normalized not in PLANNER_MODES:
        raise ValueError(f"planner must be one of {PLANNER_MODES}, got {mode!r}")
    return normalized


def normalize_planner_shards(shards: Union[int, str]) -> Union[int, str]:
    """Validate a ``planner_shards`` setting: ``"auto"`` or a positive int.

    The concrete worker count ``"auto"`` resolves to is decided by
    :func:`repro.core.shard.resolve_shard_count` (CPU-count dependent);
    this boundary only rejects nonsense values.
    """
    if isinstance(shards, str):
        normalized = shards.lower()
        if normalized != "auto":
            raise ValueError(
                f"planner_shards must be 'auto' or a positive integer, "
                f"got {shards!r}"
            )
        return normalized
    count = int(shards)
    if count < 1:
        raise ValueError(f"planner_shards must be >= 1, got {shards!r}")
    return count


def normalize_execution_mode(mode: str) -> str:
    """Canonicalise an execution-mode name (``semi_sync`` → ``semi-sync``)."""
    normalized = mode.replace("_", "-").lower()
    if normalized not in EXECUTION_MODES:
        raise ValueError(
            f"execution_mode must be one of {EXECUTION_MODES}, got {mode!r}"
        )
    return normalized


def normalize_quorum_policy(policy: str) -> str:
    """Canonicalise a quorum-policy name (case-insensitive)."""
    normalized = policy.lower()
    if normalized not in QUORUM_POLICIES:
        raise ValueError(
            f"quorum_policy must be one of {QUORUM_POLICIES}, got {policy!r}"
        )
    return normalized


@dataclass
class ComDMLConfig:
    """Hyper-parameters of a ComDML run.

    Attributes
    ----------
    max_rounds:
        Hard cap on the number of global rounds.
    target_accuracy:
        Stop as soon as this accuracy is reached (``None`` to always run
        ``max_rounds``).
    participation_fraction:
        Fraction of agents participating each round (1.0 = everyone, the
        paper uses 0.2 in the scalability study).
    learning_rate / momentum / weight_decay / batch_size / local_epochs:
        Local optimisation hyper-parameters (paper defaults).
    lr_plateau_factor / lr_plateau_patience:
        Reduce-on-plateau schedule parameters (0.2 with 10 agents, 0.5 for
        larger populations in the paper).
    allreduce_algorithm:
        ``"halving_doubling"`` (paper's choice) or ``"ring"``.
    aggregation_compression_bits:
        Optional quantized-gradient aggregation (the paper notes such
        techniques "can also be integrated"): when set, AllReduce traffic is
        quantized to this many bits per value.  ``None`` disables it.
    offload_granularity:
        Candidate split spacing in layers when profiling the architecture.
    improvement_threshold:
        Minimum relative improvement required to form a pair.
    planner:
        Round-planner selection (see :mod:`repro.core.planner`): ``"dense"``
        always runs the exact O(n²·s) kernel, ``"pruned"`` always runs the
        top-k pruned planner, ``"sharded"`` runs the process-parallel
        shared-memory planner (:mod:`repro.core.shard`; decision-identical
        to ``"pruned"``), and ``"auto"`` (default) switches to the pruned
        planner only for rounds with at least ``planner_threshold``
        participants — smaller rounds stay byte-identical to the dense
        path.
    planner_top_k:
        Candidate budget per slow agent for the pruned planner (``k ≥ n−1``
        is decision-identical to the dense kernel).
    planner_threshold:
        Participant count at which ``"auto"`` engages the pruned planner.
    planner_shards:
        Worker count of the ``"sharded"`` planner: a positive integer, or
        ``"auto"`` (default) for a CPU-count-derived pool.  The pool only
        engages above the planner's population threshold; a resolved count
        below 2 keeps planning in-process.  Ignored by the other modes.
    planner_balance:
        Shard-boundary policy of the ``"sharded"`` planner: ``"cost"``
        (default) cuts shard boundaries at equal prefix sums of estimated
        per-row cost (candidate links × split options), ``"rows"`` at
        equal row counts.  Decisions are identical either way; only the
        work distribution across workers differs.
    planner_csr_compaction:
        Staged-delta volume, as a fraction of the incremental CSR's base
        structure, at which the topology engine folds tombstones and
        delta lists back into a fresh base (see :mod:`repro.core.csr`).
    churn_fraction / churn_interval_rounds:
        Dynamic resource churn (paper: 20 % of agents every 100 rounds).
    execution_mode:
        How the :class:`~repro.runtime.TrainingRuntime` closes rounds:
        ``"sync"`` (full barrier, the paper's Algorithm 1), ``"semi-sync"``
        (round closes at a quorum of finished pairs; stragglers dropped) or
        ``"async"`` (per-pair completion events trigger gossip-style
        aggregation).
    quorum_fraction:
        Fraction of a round's work units that must finish before a
        ``semi-sync`` round closes (ignored by the other modes).  Under the
        ``"deadline"`` policy this is the fallback fraction for rounds with
        no makespan history yet; under ``"adaptive"`` it is the floor the
        quorum tightens towards.
    quorum_policy:
        How a ``semi-sync`` round decides its quorum
        (see :mod:`repro.runtime.quorum`): ``"fixed"`` keeps
        ``quorum_fraction`` of the units, ``"deadline"`` closes at
        ``quorum_deadline_factor ×`` the running makespan mean observed so
        far, and ``"adaptive"`` tightens from a full barrier towards
        ``quorum_fraction`` as observed makespans stabilise.
    quorum_deadline_factor:
        Multiple of the running makespan mean at which a ``"deadline"``
        quorum closes the round.
    trace_max_events:
        Cap on retained runtime trace events (``None`` = unbounded).  The
        default bounds memory on very long runs while retaining every event
        of any realistic experiment; overflow is counted in
        ``EventTrace.dropped_events``.
    trace_min_level:
        Minimum trace level admitted into the pipeline (0 = no level
        filter, the default).  See :mod:`repro.runtime.filters` for the
        ``DEBUG``/``INFO``/``IMPORTANT`` scale.
    trace_rate_limit / trace_rate_burst:
        Optional token-bucket rate limit on the event stream, in events per
        simulated second with the given burst size (``None`` disables).
    trace_adaptive_target:
        Optional adaptive-sampling target rate (events per simulated
        second): under sustained load beyond it the sampler tightens its
        stride, recovering when load subsides (``None`` disables).
    trace_jsonl_path / trace_sqlite_path:
        Optional file sinks: a sealed, hash-chained JSONL trace
        (verifiable by ``comdml trace verify``) and/or a SQLite event
        table.
    trace_buffer_capacity / trace_overflow:
        Bounded-buffer staging for the file sinks: events are batched up
        to this capacity; ``trace_overflow`` picks what a full buffer does
        (``"flush"`` drains in place, ``"drop"`` rejects with accounting).
    trace_segment_events:
        Events per sealed segment in the JSONL sink.
    trace_engine_events:
        When true, the runtime subscribes to the simulation engine and
        records each processed engine event as a ``DEBUG``-level
        ``"engine_event"`` trace entry.
    seed:
        Experiment seed.
    """

    max_rounds: int = 500
    target_accuracy: Optional[float] = None
    participation_fraction: float = 1.0
    learning_rate: float = 0.001
    momentum: float = 0.9
    weight_decay: float = 0.0
    batch_size: int = 100
    local_epochs: int = 1
    lr_plateau_factor: float = 0.2
    lr_plateau_patience: int = 10
    allreduce_algorithm: str = "halving_doubling"
    aggregation_compression_bits: Optional[int] = None
    offload_granularity: int = 1
    improvement_threshold: float = 0.0
    planner: str = "auto"
    planner_top_k: int = 32
    planner_threshold: int = 256
    planner_shards: Union[int, str] = "auto"
    planner_balance: str = "cost"
    planner_csr_compaction: float = 0.25
    churn_fraction: float = 0.0
    churn_interval_rounds: int = 100
    execution_mode: str = "sync"
    quorum_fraction: float = 0.8
    quorum_policy: str = "fixed"
    quorum_deadline_factor: float = 1.5
    trace_max_events: Optional[int] = 100_000
    trace_min_level: int = 0
    trace_rate_limit: Optional[float] = None
    trace_rate_burst: float = 64.0
    trace_adaptive_target: Optional[float] = None
    trace_jsonl_path: Optional[str] = None
    trace_sqlite_path: Optional[str] = None
    trace_buffer_capacity: Optional[int] = None
    trace_overflow: str = "flush"
    trace_segment_events: int = 4096
    trace_engine_events: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive(self.max_rounds, "max_rounds")
        if self.target_accuracy is not None:
            check_probability(self.target_accuracy, "target_accuracy")
        check_probability(self.participation_fraction, "participation_fraction")
        check_positive(self.learning_rate, "learning_rate")
        check_positive(self.batch_size, "batch_size")
        check_positive(self.local_epochs, "local_epochs")
        check_positive(self.offload_granularity, "offload_granularity")
        self.planner = normalize_planner_mode(self.planner)
        check_positive(self.planner_top_k, "planner_top_k")
        check_positive(self.planner_threshold, "planner_threshold")
        self.planner_shards = normalize_planner_shards(self.planner_shards)
        if self.planner_balance not in ("cost", "rows"):
            raise ValueError(
                "planner_balance must be 'cost' or 'rows', "
                f"got {self.planner_balance!r}"
            )
        check_positive(self.planner_csr_compaction, "planner_csr_compaction")
        check_probability(self.churn_fraction, "churn_fraction")
        check_positive(self.churn_interval_rounds, "churn_interval_rounds")
        self.execution_mode = normalize_execution_mode(self.execution_mode)
        check_probability(self.quorum_fraction, "quorum_fraction")
        if self.quorum_fraction <= 0:
            raise ValueError(
                f"quorum_fraction must be positive, got {self.quorum_fraction}"
            )
        self.quorum_policy = normalize_quorum_policy(self.quorum_policy)
        check_positive(self.quorum_deadline_factor, "quorum_deadline_factor")
        if self.trace_max_events is not None:
            check_positive(self.trace_max_events, "trace_max_events")
        if self.trace_min_level < 0:
            raise ValueError(
                f"trace_min_level must be >= 0, got {self.trace_min_level}"
            )
        if self.trace_rate_limit is not None:
            check_positive(self.trace_rate_limit, "trace_rate_limit")
        check_positive(self.trace_rate_burst, "trace_rate_burst")
        if self.trace_adaptive_target is not None:
            check_positive(self.trace_adaptive_target, "trace_adaptive_target")
        if self.trace_buffer_capacity is not None:
            check_positive(self.trace_buffer_capacity, "trace_buffer_capacity")
        if self.trace_overflow not in ("flush", "drop"):
            raise ValueError(
                "trace_overflow must be 'flush' or 'drop', "
                f"got {self.trace_overflow!r}"
            )
        check_positive(self.trace_segment_events, "trace_segment_events")
        if self.allreduce_algorithm not in ("ring", "halving_doubling"):
            raise ValueError(
                "allreduce_algorithm must be 'ring' or 'halving_doubling', "
                f"got {self.allreduce_algorithm!r}"
            )
        if self.aggregation_compression_bits is not None and not (
            1 <= self.aggregation_compression_bits <= 32
        ):
            raise ValueError(
                "aggregation_compression_bits must lie in [1, 32], "
                f"got {self.aggregation_compression_bits}"
            )
