"""Incremental topology engine: an editable CSR with O(Δ) wiring edits.

The pruned planner's candidate selection consumes the communication
topology as a CSR neighbor structure.  Rebuilding that structure from the
graph is O(E) — at 500k agents and ~7M directed links it dominates every
arrival wave, because a single wiring change used to drop the whole cached
structure.  :class:`IncrementalCsr` instead *edits* the structure in
place, driven by the :class:`~repro.network.topology.Topology` edge-delta
journal:

* **arrivals** append a new slot (row) and stage its neighbor columns into
  per-slot delta lists;
* **departures** tombstone the slot — neighbor rows need no touch-up,
  because every query filters columns through the participant translation
  and a dead slot translates to no position;
* **rewires** (edge add/remove between live nodes) stage a delta-list
  insert or a removed-key mark, patching the structure without moving the
  base arrays;
* **lazy compaction** folds tombstones and delta lists back into a fresh
  base once their volume crosses ``compaction_threshold`` × the base size,
  so queries never degrade unboundedly.

The structure lives in **slot space** — one slot per topology node, *not*
per round participant — so participant sampling and membership churn never
invalidate it; a cheap vectorized translation (slot ↔ participant
position) is all that changes between rounds.  Equivalence with a
from-scratch build is enforced structurally: ``tests/test_csr.py`` drives
random arrival/departure/rewire sequences through both paths and asserts
identical materialised links (and identical planner decisions on every
planner tier).
"""

from __future__ import annotations

from itertools import chain
from typing import Callable, Optional, Sequence

import numpy as np

__all__ = ["CsrTranslation", "IncrementalCsr"]

#: Packing stride for directed removed-link keys (slot_u·STRIDE + slot_v).
#: Slot indices stay far below 2³¹, so packed keys fit int64 exactly.
_STRIDE = np.int64(1) << 31

#: Base directed-link floor under which compaction is never triggered
#: (tiny structures rebuild in microseconds; hysteresis is pointless).
_COMPACT_FLOOR = 256


class _NullStats:
    """Counter sink used when no stats object is supplied."""

    csr_edits = 0
    csr_rebuilds = 0
    csr_compactions = 0


class CsrTranslation:
    """Slot ↔ participant-position translation for one participant set.

    ``slots[p]`` is the slot of the participant at position ``p`` (−1 when
    the participant is not a topology node), ``pos_of_slot[s]`` the
    position of slot ``s`` (−1 for non-participants and tombstones).
    ``monotonic`` records whether slot order implies position order, which
    lets steady-state queries skip the (row, col) lexsort entirely.
    """

    __slots__ = ("ids", "slots", "pos_of_slot", "monotonic", "slot_count", "epoch")

    def __init__(
        self,
        ids: tuple[int, ...],
        slots: np.ndarray,
        pos_of_slot: np.ndarray,
        monotonic: bool,
        slot_count: int,
        epoch: int,
    ) -> None:
        self.ids = ids
        self.slots = slots
        self.pos_of_slot = pos_of_slot
        self.monotonic = monotonic
        self.slot_count = slot_count
        self.epoch = epoch


class IncrementalCsr:
    """Editable slot-space CSR over a topology, synced via its journal.

    Parameters
    ----------
    topology:
        The :class:`~repro.network.topology.Topology` whose journal drives
        the edits.
    compaction_threshold:
        Staged-delta volume (directed links in delta lists, removed marks,
        and tombstoned rows) as a fraction of the base structure at which
        :meth:`sync` folds everything back into a fresh base.
    stats:
        Optional counter sink with ``csr_edits`` / ``csr_rebuilds`` /
        ``csr_compactions`` attributes (the planner passes its
        :class:`~repro.core.planner.PlannerStats`).
    builder:
        Optional parallel base builder: called as ``builder(ids, edges)``
        with the slot-ordered node-id array and the flat ``(E, 2)`` edge-id
        array, it must return ``(link_rows, link_cols)`` in slot space,
        both directions per edge, sorted by ``(row, col)``.  ``None`` uses
        the serial vectorized build.
    """

    def __init__(
        self,
        topology,
        *,
        compaction_threshold: float = 0.25,
        stats=None,
        builder: Optional[Callable] = None,
    ) -> None:
        if compaction_threshold <= 0:
            raise ValueError(
                f"compaction_threshold must be > 0, got {compaction_threshold}"
            )
        self.topology = topology
        self.compaction_threshold = compaction_threshold
        self.stats = stats if stats is not None else _NullStats()
        self.builder = builder
        self._built = False
        self._cursor = 0
        #: Bumped on every rebuild / compaction (slots are renumbered);
        #: translations cache against it.
        self.epoch = 0
        self._reset_empty()

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def _reset_empty(self) -> None:
        self._ids = np.empty(0, dtype=np.int64)
        self._alive = np.empty(0, dtype=bool)
        self._indptr = np.zeros(1, dtype=np.int64)
        self._cols = np.empty(0, dtype=np.int64)
        self._slot_of: dict[int, int] = {}
        self._added: dict[int, list[int]] = {}
        self._removed: set[int] = set()
        self._removed_sorted: Optional[np.ndarray] = None
        self._slot_count = 0
        self._base_slots = 0
        self._delta_links = 0
        self.node_count = 0
        self.edge_count = 0

    @property
    def built(self) -> bool:
        return self._built

    @property
    def cursor(self) -> int:
        """Topology journal version this structure is synced to."""
        return self._cursor

    @property
    def slot_count(self) -> int:
        return self._slot_count

    @property
    def staged_deltas(self) -> int:
        """Directed links currently staged outside the base structure."""
        return self._delta_links

    def counts(self) -> tuple[int, int]:
        """(live nodes, live undirected edges) — O(1) once built."""
        return self.node_count, self.edge_count

    # ------------------------------------------------------------------
    # Sync / rebuild
    # ------------------------------------------------------------------
    def sync(self) -> Optional[set[int]]:
        """Bring the structure up to the topology's journal head.

        Returns the set of node ids whose rows were affected by the
        applied edits (possibly empty), or ``None`` when the structure had
        to be rebuilt from the graph — callers must then treat every row
        as changed.
        """
        if not self._built:
            self.rebuild()
            return None
        version = self.topology.version
        if version == self._cursor:
            return set()
        events = self.topology.events_since(self._cursor)
        if events is None:
            # Journal truncated past our cursor: the O(Δ) window is gone.
            self.rebuild()
            return None
        affected: set[int] = set()
        for event in events:
            self._apply(event, affected)
        self._cursor = version
        self.stats.csr_edits += len(events)
        base_links = max(int(self._cols.size), _COMPACT_FLOOR)
        if self._delta_links > self.compaction_threshold * base_links:
            self._compact()
        return affected

    def rebuild(self) -> None:
        """Full build from the topology graph (the O(E) fallback path)."""
        graph = self.topology.graph
        self._reset_empty()
        node_ids = sorted(graph.nodes)
        count = len(node_ids)
        self._ids = np.asarray(node_ids, dtype=np.int64)
        self._alive = np.ones(count, dtype=bool)
        self._slot_of = {node: slot for slot, node in enumerate(node_ids)}
        self._slot_count = count
        self._base_slots = count
        self.node_count = count
        self.edge_count = graph.number_of_edges()
        edges = np.fromiter(
            chain.from_iterable(graph.edges()),
            dtype=np.int64,
            count=2 * self.edge_count,
        ).reshape(-1, 2)
        if self.builder is not None and edges.shape[0]:
            link_rows, link_cols = self.builder(self._ids, edges)
        else:
            link_rows, link_cols = _serial_links(self._ids, edges)
        counts = np.bincount(link_rows, minlength=count)
        self._indptr = np.zeros(count + 1, dtype=np.int64)
        np.cumsum(counts, out=self._indptr[1:])
        self._cols = link_cols
        self._cursor = self.topology.version
        self._built = True
        self.epoch += 1
        self.stats.csr_rebuilds += 1

    # ------------------------------------------------------------------
    # O(Δ) edits
    # ------------------------------------------------------------------
    def _slot(self, node: int, create: bool = False) -> int:
        slot = self._slot_of.get(node, -1)
        if slot < 0 and create:
            slot = self._new_slot(node)
        return slot

    def _new_slot(self, node: int) -> int:
        slot = self._slot_count
        if slot >= len(self._ids):
            grow = max(64, len(self._ids))
            self._ids = np.concatenate(
                [self._ids, np.full(grow, -1, dtype=np.int64)]
            )
            self._alive = np.concatenate([self._alive, np.zeros(grow, dtype=bool)])
        self._ids[slot] = node
        self._alive[slot] = True
        self._slot_of[node] = slot
        self._slot_count += 1
        return slot

    def _apply(self, event: tuple, affected: set[int]) -> None:
        kind = event[0]
        if kind == "add_node":
            node = event[1]
            if self._slot_of.get(node, -1) < 0:
                self._new_slot(node)
                self.node_count += 1
            affected.add(node)
        elif kind == "add_edge":
            _, u, v = event
            su = self._slot(u, create=True)
            sv = self._slot(v, create=True)
            self._stage_add(su, sv)
            self._stage_add(sv, su)
            self.edge_count += 1
            affected.add(u)
            affected.add(v)
        elif kind == "remove_edge":
            _, u, v = event
            su = self._slot(u)
            sv = self._slot(v)
            if su >= 0 and sv >= 0:
                self._stage_remove(su, sv)
                self._stage_remove(sv, su)
                self.edge_count -= 1
            affected.add(u)
            affected.add(v)
        elif kind == "remove_node":
            _, node, neighbors = event
            slot = self._slot(node)
            if slot >= 0 and self._alive[slot]:
                self._alive[slot] = False
                del self._slot_of[node]
                self.node_count -= 1
                self.edge_count -= len(neighbors)
                # Tombstoned rows keep their storage until compaction;
                # both directions of every dead link are garbage now.
                self._delta_links += 2 * len(neighbors)
            affected.add(node)
            affected.update(neighbors)
        else:  # pragma: no cover - future event kinds force a rebuild
            raise ValueError(f"unknown topology event {kind!r}")

    def _stage_add(self, src: int, dst: int) -> None:
        key = int(src * _STRIDE + dst)
        if key in self._removed:
            # Re-adding a base link: unmasking it restores the base entry.
            self._removed.discard(key)
            self._removed_sorted = None
            self._delta_links -= 1
            return
        self._added.setdefault(src, []).append(dst)
        self._delta_links += 1

    def _stage_remove(self, src: int, dst: int) -> None:
        staged = self._added.get(src)
        if staged is not None and dst in staged:
            staged.remove(dst)
            if not staged:
                del self._added[src]
            self._delta_links -= 1
            return
        self._removed.add(int(src * _STRIDE + dst))
        self._removed_sorted = None
        self._delta_links += 1

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def _compact(self) -> None:
        """Fold tombstones and delta lists into a fresh base structure."""
        live = np.nonzero(self._alive[: self._slot_count])[0]
        rows, cols = self._live_slot_links()
        new_of_old = np.full(self._slot_count, -1, dtype=np.int64)
        new_of_old[live] = np.arange(live.size)
        rows = new_of_old[rows]
        cols = new_of_old[cols]
        ids = self._ids[live].copy()

        order = np.lexsort((cols, rows))
        rows = rows[order]
        cols = cols[order]
        counts = np.bincount(rows, minlength=live.size)

        self._ids = ids
        self._alive = np.ones(live.size, dtype=bool)
        self._slot_of = {int(node): slot for slot, node in enumerate(ids.tolist())}
        self._slot_count = live.size
        self._base_slots = live.size
        self._indptr = np.zeros(live.size + 1, dtype=np.int64)
        np.cumsum(counts, out=self._indptr[1:])
        self._cols = cols
        self._added = {}
        self._removed = set()
        self._removed_sorted = None
        self._delta_links = 0
        self.epoch += 1
        self.stats.csr_compactions += 1

    def _live_slot_links(self) -> tuple[np.ndarray, np.ndarray]:
        """All live directed links in (old) slot space, unsorted."""
        base_rows = np.repeat(
            np.arange(self._base_slots, dtype=np.int64),
            np.diff(self._indptr),
        )
        base_cols = self._cols
        keep = self._alive[base_rows] & self._alive[base_cols]
        if self._removed:
            packed = base_rows * _STRIDE + base_cols
            keep &= ~np.isin(packed, self._removed_array())
        parts_r = [base_rows[keep]]
        parts_c = [base_cols[keep]]
        for slot, staged in self._added.items():
            if not staged or not self._alive[slot]:
                continue
            staged_cols = np.asarray(staged, dtype=np.int64)
            staged_cols = staged_cols[self._alive[staged_cols]]
            if staged_cols.size:
                parts_r.append(np.full(staged_cols.size, slot, dtype=np.int64))
                parts_c.append(staged_cols)
        return np.concatenate(parts_r), np.concatenate(parts_c)

    def _removed_array(self) -> np.ndarray:
        if self._removed_sorted is None:
            self._removed_sorted = np.fromiter(
                self._removed, dtype=np.int64, count=len(self._removed)
            )
            self._removed_sorted.sort()
        return self._removed_sorted

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def translation(self, ids: Sequence[int]) -> CsrTranslation:
        """Build the slot ↔ position translation for one participant tuple."""
        ids_tuple = tuple(ids)
        n = len(ids_tuple)
        slots = np.fromiter(
            (self._slot_of.get(agent_id, -1) for agent_id in ids_tuple),
            dtype=np.int64,
            count=n,
        )
        pos_of_slot = np.full(self._slot_count, -1, dtype=np.int64)
        valid = slots >= 0
        pos_of_slot[slots[valid]] = np.nonzero(valid)[0]
        monotonic = bool(valid.all()) and (
            n < 2 or bool((np.diff(slots) > 0).all())
        )
        return CsrTranslation(
            ids_tuple, slots, pos_of_slot, monotonic, self._slot_count, self.epoch
        )

    def translation_current(self, translation: Optional[CsrTranslation]) -> bool:
        """Whether a cached translation still matches the structure."""
        return (
            translation is not None
            and translation.epoch == self.epoch
            and translation.slot_count == self._slot_count
        )

    def links_for(
        self,
        translation: CsrTranslation,
        positions: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Flat participant-space links of the given (ascending) positions.

        Returns ``(rows, cols)`` position arrays sorted by ``(row, col)``
        — exactly the order a from-scratch participant CSR build yields,
        which the downstream first-minimum tie-breaking relies on.
        ``positions=None`` queries every participant row.
        """
        if positions is None:
            slots = translation.slots
            pos = np.arange(len(translation.ids), dtype=np.int64)
        else:
            pos = np.asarray(positions, dtype=np.int64)
            slots = translation.slots[pos]

        empty = np.empty(0, dtype=np.int64)
        base = np.minimum(slots, self._base_slots - 1)
        in_base = (slots >= 0) & (slots < self._base_slots)
        if self._base_slots and in_base.any():
            safe = np.where(in_base, base, 0)
            counts = np.where(
                in_base, self._indptr[safe + 1] - self._indptr[safe], 0
            )
            total = int(counts.sum())
        else:
            counts = np.zeros(len(slots), dtype=np.int64)
            total = 0
        if total:
            starts = self._indptr[np.where(in_base, base, 0)]
            ends = np.cumsum(counts)
            offsets = np.arange(total, dtype=np.int64) - np.repeat(
                ends - counts, counts
            )
            flat = np.repeat(starts, counts) + offsets
            col_slots = self._cols[flat]
            row_slots = np.repeat(slots, counts)
            keep = np.ones(total, dtype=bool)
            if self._removed:
                packed = row_slots * _STRIDE + col_slots
                keep &= ~np.isin(packed, self._removed_array())
            col_pos = translation.pos_of_slot[col_slots]
            keep &= col_pos >= 0
            rows_out = np.repeat(pos, counts)[keep]
            cols_out = col_pos[keep]
        else:
            rows_out, cols_out = empty, empty

        has_added = False
        if self._added:
            add_rows: list[np.ndarray] = []
            add_cols: list[np.ndarray] = []
            added = self._added
            for index, slot in enumerate(slots.tolist()):
                staged = added.get(slot)
                if not staged:
                    continue
                staged_cols = translation.pos_of_slot[
                    np.asarray(staged, dtype=np.int64)
                ]
                staged_cols = staged_cols[staged_cols >= 0]
                if staged_cols.size:
                    add_rows.append(
                        np.full(staged_cols.size, pos[index], dtype=np.int64)
                    )
                    add_cols.append(staged_cols)
            if add_rows:
                has_added = True
                rows_out = np.concatenate([rows_out] + add_rows)
                cols_out = np.concatenate([cols_out] + add_cols)

        if rows_out.size and (has_added or not translation.monotonic):
            order = np.lexsort((cols_out, rows_out))
            rows_out = rows_out[order]
            cols_out = cols_out[order]
        return rows_out, cols_out


def _serial_links(ids: np.ndarray, edges: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized slot-space directed links from a flat edge-id array.

    ``ids`` is the slot-ordered (sorted) node-id array; both directions of
    every edge are kept, sorted by ``(row, col)``.
    """
    empty = np.empty(0, dtype=np.int64)
    if edges.shape[0] == 0:
        return empty, empty
    # Slot order is ascending node id at build time, so a searchsorted maps
    # edge endpoints without any dict.
    slots = np.searchsorted(ids, edges)
    source = slots[:, 0]
    target = slots[:, 1]
    distinct = source != target
    source = source[distinct]
    target = target[distinct]
    rows = np.concatenate([source, target])
    cols = np.concatenate([target, source])
    order = np.lexsort((cols, rows))
    return rows[order], cols[order]
