"""Vectorized round-planning kernel.

Every training round of every method evaluates the paper's
``AgentTrainingTime`` (Algorithm 1) for each (slow, candidate, split)
triple.  The scalar path in :mod:`repro.core.workload` builds an
:class:`~repro.core.workload.OffloadEstimate` dataclass per triple —
an O(n² · M) pure-Python loop that dominates planning cost at campaign
scale.  :class:`PairCostModel` evaluates the same min-reduction as a
handful of broadcasted NumPy operations:

1. per-agent vectors are extracted once per round: processing speeds
   ``p_i``, batches per round ``Ñ_i``, individual training times ``τ̂_i``,
   and the effective bandwidth matrix ``c_ij``;
2. for each candidate split ``m`` (there are few), the full ``n × n``
   pair-time slice ``τ̂_ij^m = max(Ñ_i T_s(m)/p_i, τ̂_j + Ñ_i ν_m/c_ij +
   Ñ_i T_f(m)/p_j)`` is computed elementwise;
3. a running strict-``<`` minimum over the ``m`` slices argmin-reduces to
   the best split per (slow, candidate) pair, and a masked row argmin
   gives the best candidate per slow agent.

Bit-for-bit identity with the scalar oracle is a hard requirement (the
sync golden regression serializes these floats): every elementwise
expression below mirrors the *exact* operation order of
:func:`repro.core.workload.estimate_offload_time`, all reductions use
first-minimum tie-breaking exactly like the scalar ``min``/strict-``<``
loops, and the final :class:`~repro.core.workload.OffloadEstimate` for a
chosen pair is produced by the scalar oracle itself (one call per formed
pair, not per candidate).  ``tests/test_fastpath.py`` asserts full float
equality of the resulting decisions against the scalar reference across
random populations, profiles, and bandwidth matrices.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.agents.agent import Agent
from repro.core.profiling import SplitProfile
from repro.core.workload import OffloadEstimate, estimate_offload_time
from repro.sim.costs import DEFAULT_LINK_LATENCY_SECONDS, cpu_share_to_throughput
from repro.network.link import LinkModel


def bandwidth_matrix(agents: Sequence[Agent], link_model: LinkModel) -> np.ndarray:
    """Effective pairwise bandwidth (bytes/s), 0.0 where no usable link.

    Entry ``[i, j]`` equals ``link_model.bandwidth(agents[i], agents[j])``
    exactly.  For a plain :class:`~repro.network.link.LinkModel` the matrix
    is assembled vectorized from the topology's adjacency (the effective
    bandwidth is the min of the two access links, with no arithmetic, so
    no rounding concerns); any other link model falls back to per-pair
    calls, preserving subclass overrides.
    """
    n = len(agents)
    if type(link_model) is LinkModel:
        try:
            adjacency = np.asarray(
                _adjacency(link_model, [agent.agent_id for agent in agents]),
                dtype=bool,
            )
        except Exception:
            adjacency = None
        if adjacency is not None:
            access = np.array(
                [agent.profile.bandwidth_bytes_per_second for agent in agents],
                dtype=np.float64,
            )
            # min(access_i, access_j) is 0 whenever either side is
            # disconnected, matching LinkModel.can_communicate.
            matrix = np.minimum(access[:, None], access[None, :])
            matrix[~adjacency] = 0.0
            np.fill_diagonal(matrix, 0.0)
            return matrix
    matrix = np.zeros((n, n), dtype=np.float64)
    for i, a in enumerate(agents):
        for j, b in enumerate(agents):
            if i != j:
                matrix[i, j] = link_model.bandwidth(a, b)
    return matrix


def _adjacency(link_model: LinkModel, ids: list[int]):
    import networkx as nx

    return nx.to_numpy_array(
        link_model.topology.graph, nodelist=ids, weight=None, dtype=np.float64
    )


class PairCostModel:
    """Precomputed pair-time tensor for one round's participants.

    Parameters
    ----------
    participants:
        The round's agents; all matrices are indexed by position in this
        sequence.
    profile:
        Split profile of the architecture being trained.
    link_model:
        Source of pairwise bandwidths (mutually exclusive with
        ``bandwidths``).
    bandwidths:
        Explicit ``n × n`` bandwidth matrix in bytes/s (used by the exact
        solver, whose bandwidths come from a caller-supplied lookup).
    batch_size:
        Optional batch-size override, with the same semantics as the
        scalar path: estimates resolve ``None`` to each slow agent's own
        batch size.
    latency_seconds:
        Per-message link latency; defaults to the link model's latency or
        :data:`~repro.sim.costs.DEFAULT_LINK_LATENCY_SECONDS`.
    shared_busy_times:
        When true (the greedy scheduler's convention) the fast agent's own
        task time ``τ̂_j`` is its broadcast individual time, computed with
        its *own* batch size.  When false (the exact solver's convention,
        matching ``estimate_offload_time`` with no explicit busy time) it
        is recomputed with the slow agent's batch size.

    Attributes
    ----------
    individual_times:
        ``τ̂_i`` vector (the shared list broadcast in Algorithm 1).
    bandwidths:
        Effective bandwidth matrix in bytes/s, 0 where unusable.
    best_pair_times:
        ``[i, j]`` = minimum of ``τ̂_ij^m`` over all profiled splits
        (``+inf`` where ``i == j`` or no usable link).
    best_split_indices:
        Position in ``profile.offload_options`` of the minimizing split
        (first minimum on ties, like the scalar oracle; ``-1`` invalid).
    pairable:
        Boolean matrix: a usable link exists *and* the best split actually
        offloads work (``m > 0``) — exactly the candidates the greedy
        scheduler considers.
    """

    def __init__(
        self,
        participants: Sequence[Agent],
        profile: SplitProfile,
        *,
        link_model: Optional[LinkModel] = None,
        bandwidths: Optional[np.ndarray] = None,
        batch_size: Optional[int] = None,
        latency_seconds: Optional[float] = None,
        shared_busy_times: bool = True,
    ) -> None:
        if (link_model is None) == (bandwidths is None):
            raise ValueError("provide exactly one of link_model or bandwidths")
        self.agents = list(participants)
        self.profile = profile
        self.batch_size = batch_size
        n = len(self.agents)
        self.n = n
        if latency_seconds is None:
            latency_seconds = (
                link_model.latency_seconds
                if link_model is not None
                else DEFAULT_LINK_LATENCY_SECONDS
            )
        self.latency_seconds = latency_seconds
        self._shared_busy_times = shared_busy_times

        if bandwidths is not None:
            self.bandwidths = np.asarray(bandwidths, dtype=np.float64)
            if self.bandwidths.shape != (n, n):
                raise ValueError(
                    f"bandwidth matrix must be {n}x{n}, got {self.bandwidths.shape}"
                )
        else:
            self.bandwidths = bandwidth_matrix(self.agents, link_model)

        # ------------------------------------------------------------------
        # Per-agent vectors (same scalar formulas, evaluated elementwise)
        # ------------------------------------------------------------------
        throughput = np.array(
            [cpu_share_to_throughput(agent.profile.cpu_share) for agent in self.agents],
            dtype=np.float64,
        )
        batches = np.array(
            [float(agent.batches_per_round) for agent in self.agents], dtype=np.float64
        )
        # τ̂ uses `batch_size or agent.batch_size` (the greedy broadcast);
        # estimates use `batch_size if not None else slow.batch_size`.  The
        # two resolutions only differ for a falsy override, which the
        # scalar path rejects anyway, but both are mirrored faithfully.
        bs_tau = np.array(
            [float(batch_size or agent.batch_size) for agent in self.agents],
            dtype=np.float64,
        )
        bs_est = np.array(
            [
                float(batch_size if batch_size is not None else agent.batch_size)
                for agent in self.agents
            ],
            dtype=np.float64,
        )
        full_flops = profile.full_train_flops_per_sample
        flops_tau = full_flops * bs_tau
        flops_est = full_flops * bs_est
        self.individual_times = batches / (throughput / flops_tau)
        # Slow-side speed p_i and fast-side speed p_j, both under the slow
        # agent's batch size (estimate_offload_time converts per-sample
        # costs with a single batch size per pair).
        slow_speed = throughput / flops_est
        fast_speed = throughput[None, :] / flops_est[:, None]
        solo_est = batches / slow_speed

        if shared_busy_times:
            busy = np.broadcast_to(self.individual_times[None, :], (n, n))
        else:
            busy = batches[None, :] / fast_speed

        # ------------------------------------------------------------------
        # Pair-time slices per split, reduced with strict-< first-minimum
        # ------------------------------------------------------------------
        best_time = np.full((n, n), np.inf)
        best_index = np.full((n, n), -1, dtype=np.int64)
        slow_factors = profile.slow_time_array
        fast_factors = profile.fast_time_array
        intermediate = profile.intermediate_bytes_array
        offloaded = profile.offloaded_bytes_array
        with np.errstate(divide="ignore", invalid="ignore"):
            for index, option in enumerate(profile.offload_options):
                if option == 0:
                    pair_time = np.maximum(solo_est[:, None], busy)
                else:
                    slow_factor = slow_factors[index]
                    fast_factor = fast_factors[index]
                    slow_time = (
                        batches * slow_factor / slow_speed
                        if slow_factor > 0
                        else np.zeros(n)
                    )
                    fast_offload = (
                        (batches * fast_factor)[:, None] / fast_speed
                        if fast_factor > 0
                        else np.zeros((n, n))
                    )
                    intermediate_bytes = (intermediate[index] * bs_est)[:, None]
                    communication = batches[:, None] * (
                        latency_seconds + intermediate_bytes / self.bandwidths
                    ) + (2.0 * offloaded[index]) / self.bandwidths
                    fast_chain = (busy + communication) + fast_offload
                    pair_time = np.maximum(slow_time[:, None], fast_chain)
                better = pair_time < best_time
                best_time[better] = pair_time[better]
                best_index[better] = index
        valid = self.bandwidths > 0
        np.fill_diagonal(valid, False)
        best_time[~valid] = np.inf
        best_index[~valid] = -1
        self.best_pair_times = best_time
        self.best_split_indices = best_index
        offload_values = profile.options_array
        self.pairable = valid & (offload_values[np.maximum(best_index, 0)] > 0)

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def individual_times_by_id(self) -> dict[int, float]:
        """The shared training-time list ``{agent id: τ̂}`` of Algorithm 1."""
        return {
            agent.agent_id: float(time)
            for agent, time in zip(self.agents, self.individual_times)
        }

    def best_offloaded_layers(self, slow: int, fast: int) -> int:
        """Offload value ``m`` minimizing the pair time for positions (slow, fast)."""
        index = int(self.best_split_indices[slow, fast])
        if index < 0:
            raise ValueError(f"no usable link between positions {slow} and {fast}")
        return int(self.profile.offload_options[index])

    def estimate(self, slow: int, fast: int) -> OffloadEstimate:
        """Full :class:`OffloadEstimate` for the best split of (slow, fast).

        Delegates to the scalar oracle for the single chosen split, so the
        returned estimate is bit-identical to the pure-Python path (and is
        built from Python floats, keeping downstream JSON serializable).
        Under ``shared_busy_times=False`` the oracle recomputes the fast
        agent's busy time itself, mirroring a ``best_offload`` call with no
        explicit busy time.
        """
        busy = (
            float(self.individual_times[fast]) if self._shared_busy_times else None
        )
        return estimate_offload_time(
            slow_agent=self.agents[slow],
            fast_agent=self.agents[fast],
            offloaded_layers=self.best_offloaded_layers(slow, fast),
            profile=self.profile,
            bandwidth_bytes_per_second=float(self.bandwidths[slow, fast]),
            fast_agent_busy_time=busy,
            batch_size=self.batch_size,
            latency_seconds=self.latency_seconds,
        )
