"""Vectorized round-planning kernel.

Every training round of every method evaluates the paper's
``AgentTrainingTime`` (Algorithm 1) for each (slow, candidate, split)
triple.  The scalar path in :mod:`repro.core.workload` builds an
:class:`~repro.core.workload.OffloadEstimate` dataclass per triple —
an O(n² · M) pure-Python loop that dominates planning cost at campaign
scale.  :class:`PairCostModel` evaluates the same min-reduction as a
handful of broadcasted NumPy operations:

1. per-agent vectors are extracted once per round: processing speeds
   ``p_i``, batches per round ``Ñ_i``, individual training times ``τ̂_i``,
   and the effective bandwidth matrix ``c_ij``;
2. for each candidate split ``m`` (there are few), the full ``n × n``
   pair-time slice ``τ̂_ij^m = max(Ñ_i T_s(m)/p_i, τ̂_j + Ñ_i ν_m/c_ij +
   Ñ_i T_f(m)/p_j)`` is computed elementwise;
3. a running strict-``<`` minimum over the ``m`` slices argmin-reduces to
   the best split per (slow, candidate) pair, and a masked row argmin
   gives the best candidate per slow agent.

Bit-for-bit identity with the scalar oracle is a hard requirement (the
sync golden regression serializes these floats): every elementwise
expression below mirrors the *exact* operation order of
:func:`repro.core.workload.estimate_offload_time`, all reductions use
first-minimum tie-breaking exactly like the scalar ``min``/strict-``<``
loops, and the final :class:`~repro.core.workload.OffloadEstimate` for a
chosen pair is produced by the scalar oracle itself (one call per formed
pair, not per candidate).  ``tests/test_fastpath.py`` asserts full float
equality of the resulting decisions against the scalar reference across
random populations, profiles, and bandwidth matrices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.agents.agent import Agent
from repro.core.profiling import SplitProfile
from repro.core.workload import OffloadEstimate, estimate_offload_time
from repro.sim.costs import (
    BASELINE_FLOPS_PER_SECOND,
    CPU_SCALING_EXPONENT,
    DEFAULT_LINK_LATENCY_SECONDS,
)
from repro.network.link import LinkModel
from repro.utils.units import BITS_PER_BYTE
from repro.utils.validation import check_positive


def _uses_default_links(link_model: LinkModel) -> bool:
    """Whether ``link_model`` keeps the base bandwidth semantics.

    True for plain :class:`~repro.network.link.LinkModel` instances and for
    subclasses that override neither :meth:`~LinkModel.bandwidth` nor
    :meth:`~LinkModel.can_communicate` — exactly the models whose pairwise
    bandwidth can be assembled vectorized as ``min(access_i, access_j)``
    masked by the topology adjacency.
    """
    cls = type(link_model)
    return (
        cls.bandwidth is LinkModel.bandwidth
        and cls.can_communicate is LinkModel.can_communicate
    )


def bandwidth_matrix(agents: Sequence[Agent], link_model: LinkModel) -> np.ndarray:
    """Effective pairwise bandwidth (bytes/s), 0.0 where no usable link.

    Entry ``[i, j]`` equals ``link_model.bandwidth(agents[i], agents[j])``
    exactly.  For link models with the default bandwidth semantics (plain
    :class:`~repro.network.link.LinkModel` or subclasses overriding neither
    ``bandwidth`` nor ``can_communicate``) the matrix is assembled
    vectorized from the topology's adjacency (the effective bandwidth is
    the min of the two access links, with no arithmetic, so no rounding
    concerns).  Link models that *do* override the pairwise semantics fall
    back to per-pair calls — but only along the topology's edges, O(E)
    instead of O(n²): off-topology pairs are 0 by the
    :class:`~repro.network.link.LinkModel` contract.
    """
    import networkx as nx

    n = len(agents)
    ids = [agent.agent_id for agent in agents]
    if _uses_default_links(link_model):
        try:
            adjacency = np.asarray(
                _adjacency(link_model, ids), dtype=bool
            )
        except (nx.NetworkXError, KeyError):
            # A participant is missing from the topology graph — the only
            # legitimate reason the adjacency assembly can fail.  Per-pair
            # calls resolve such agents to bandwidth 0.  Anything else
            # (a real bug) propagates.
            adjacency = None
        if adjacency is not None:
            access = np.array(
                [agent.profile.bandwidth_bytes_per_second for agent in agents],
                dtype=np.float64,
            )
            # min(access_i, access_j) is 0 whenever either side is
            # disconnected, matching LinkModel.can_communicate.
            matrix = np.minimum(access[:, None], access[None, :])
            matrix[~adjacency] = 0.0
            np.fill_diagonal(matrix, 0.0)
            return matrix
        matrix = np.zeros((n, n), dtype=np.float64)
        for i, a in enumerate(agents):
            for j, b in enumerate(agents):
                if i != j:
                    matrix[i, j] = link_model.bandwidth(a, b)
        return matrix
    # Custom pairwise semantics: one call per ordered topology edge among
    # the participants (bandwidth may be asymmetric in a subclass).
    matrix = np.zeros((n, n), dtype=np.float64)
    position = {agent_id: index for index, agent_id in enumerate(ids)}
    graph = link_model.topology.graph
    for u, v in graph.edges(ids):
        i = position.get(u)
        j = position.get(v)
        if i is None or j is None or i == j:
            continue
        matrix[i, j] = link_model.bandwidth(agents[i], agents[j])
        matrix[j, i] = link_model.bandwidth(agents[j], agents[i])
    return matrix


def _adjacency(link_model: LinkModel, ids: list[int]):
    import networkx as nx

    return nx.to_numpy_array(
        link_model.topology.graph, nodelist=ids, weight=None, dtype=np.float64
    )


@dataclass(frozen=True)
class AgentVectors:
    """Per-agent planning vectors, extracted once per round.

    The same scalar formulas as :func:`~repro.core.workload` evaluated
    elementwise, shared between the dense :class:`PairCostModel` kernel and
    the pruned planner (:mod:`repro.core.planner`) so both produce
    bit-identical values.

    Attributes
    ----------
    throughput:
        Flop-equivalents per second per agent.
    batches:
        The paper's ``Ñ_i`` (batches per round, scaled by local epochs).
    batch_sizes:
        Resolved per-agent batch size (the override when given, each
        agent's own otherwise).
    flops:
        Full-model training flops per batch (``full_flops × batch_size``).
    individual_times:
        ``τ̂_i`` — the broadcast individual-time list of Algorithm 1.
    slow_speed:
        Full-model batches per second (the paper's ``p_i``).
    solo_times:
        ``Ñ_i / p_i`` evaluated in the estimate path's operation order.
    """

    throughput: np.ndarray
    batches: np.ndarray
    batch_sizes: np.ndarray
    flops: np.ndarray
    individual_times: np.ndarray
    slow_speed: np.ndarray
    solo_times: np.ndarray

    def to_rows(self, out: np.ndarray) -> None:
        """Pack the vectors into the rows of a ``(len(VECTOR_FIELDS), n)``
        matrix (a shared-memory segment in the sharded planning runtime)."""
        for row, field in enumerate(VECTOR_FIELDS):
            np.copyto(out[row], getattr(self, field))

    @classmethod
    def from_rows(cls, matrix: np.ndarray) -> "AgentVectors":
        """Rebuild the vectors from :meth:`to_rows` packing (zero-copy:
        the fields are row views into ``matrix``)."""
        return cls(*(matrix[row] for row in range(len(VECTOR_FIELDS))))


#: Field order of the :meth:`AgentVectors.to_rows` matrix packing.  Matches
#: the dataclass field order, which ``from_rows`` relies on positionally.
VECTOR_FIELDS = (
    "throughput",
    "batches",
    "batch_sizes",
    "flops",
    "individual_times",
    "slow_speed",
    "solo_times",
)


@dataclass(frozen=True)
class AgentAttrs:
    """Raw per-agent attribute columns, extracted in one pass per round.

    One Python sweep over the agents yields every input the planner needs
    — the planning vectors (:func:`agent_vectors_from_attrs`), the change
    -detection signature matrix, and the access-bandwidth vector — so the
    per-round Python cost is a handful of attribute list comprehensions
    instead of one pass per derived quantity.

    Attributes
    ----------
    cpu_share / bandwidth_mbps:
        The :class:`~repro.agents.resources.ResourceProfile` columns
        (float64).
    num_samples / batch_size / local_epochs:
        The workload columns (int64).
    """

    cpu_share: np.ndarray
    bandwidth_mbps: np.ndarray
    num_samples: np.ndarray
    batch_size: np.ndarray
    local_epochs: np.ndarray

    def signature_matrix(self) -> np.ndarray:
        """``(n, 5)`` float64 change-detection matrix.

        Two rounds' matrices compare equal elementwise exactly when every
        scalar input of an agent's planning row is unchanged — the same
        contract the historical per-agent signature tuples had.
        """
        return np.column_stack(
            (
                self.cpu_share,
                self.bandwidth_mbps,
                self.num_samples.astype(np.float64),
                self.batch_size.astype(np.float64),
                self.local_epochs.astype(np.float64),
            )
        )

    def access_bandwidth(self) -> np.ndarray:
        """Per-agent access-link speed in bytes/s.

        Elementwise identical to
        :meth:`~repro.agents.resources.ResourceProfile.bandwidth_bytes_per_second`
        (same multiply-then-divide operation order as
        :func:`~repro.utils.units.mbps_to_bytes_per_second`).
        """
        return self.bandwidth_mbps * 1_000_000 / BITS_PER_BYTE


def agent_attrs(agents: Sequence[Agent]) -> AgentAttrs:
    """Extract the raw per-agent attribute columns for one round."""
    n = len(agents)
    profiles = [agent.profile for agent in agents]
    return AgentAttrs(
        cpu_share=np.fromiter(
            (profile.cpu_share for profile in profiles),
            dtype=np.float64,
            count=n,
        ),
        bandwidth_mbps=np.fromiter(
            (profile.bandwidth_mbps for profile in profiles),
            dtype=np.float64,
            count=n,
        ),
        num_samples=np.fromiter(
            (agent.num_samples for agent in agents), dtype=np.int64, count=n
        ),
        batch_size=np.fromiter(
            (agent.batch_size for agent in agents), dtype=np.int64, count=n
        ),
        local_epochs=np.fromiter(
            (agent.local_epochs for agent in agents), dtype=np.int64, count=n
        ),
    )


def agent_vectors_from_attrs(
    attrs: AgentAttrs,
    profile: SplitProfile,
    batch_size: Optional[int] = None,
) -> AgentVectors:
    """:func:`agent_vectors` computed from pre-extracted attribute columns.

    Every derived float matches the scalar path bit for bit: the integer
    batch arithmetic is exact in int64 before the (exact, < 2⁵³) float64
    conversion, and the throughput expression keeps the scalar ``x ** e``
    power whenever the exponent is not the (IEEE-exact) identity case.
    """
    if batch_size is not None:
        check_positive(batch_size, "batch_size")
    if CPU_SCALING_EXPONENT == 1.0:
        # pow(x, 1.0) == x exactly in IEEE-754, so the broadcast multiply
        # is bit-identical to the scalar expression.
        throughput = BASELINE_FLOPS_PER_SECOND * attrs.cpu_share
    else:
        # numpy's float_power/** disagrees with C ``pow`` in the last ulp
        # for general exponents — keep the scalar power per element.
        throughput = np.array(
            [
                BASELINE_FLOPS_PER_SECOND * share**CPU_SCALING_EXPONENT
                for share in attrs.cpu_share.tolist()
            ],
            dtype=np.float64,
        )
    # Agent.num_batches / batches_per_round in exact integer arithmetic:
    # 0 when the agent holds no samples, else ceil-div floored at 1.
    num_batches = np.where(
        attrs.num_samples == 0,
        0,
        np.maximum(1, -(-attrs.num_samples // attrs.batch_size)),
    )
    batches = (num_batches * attrs.local_epochs).astype(np.float64)
    if batch_size is not None:
        batch_sizes = np.full(len(attrs.batch_size), float(batch_size))
    else:
        batch_sizes = attrs.batch_size.astype(np.float64)
    flops = profile.full_train_flops_per_sample * batch_sizes
    individual_times = batches / (throughput / flops)
    slow_speed = throughput / flops
    solo_times = batches / slow_speed
    return AgentVectors(
        throughput=throughput,
        batches=batches,
        batch_sizes=batch_sizes,
        flops=flops,
        individual_times=individual_times,
        slow_speed=slow_speed,
        solo_times=solo_times,
    )


def agent_vectors(
    agents: Sequence[Agent],
    profile: SplitProfile,
    batch_size: Optional[int] = None,
) -> AgentVectors:
    """Extract the per-agent vectors the planning kernels broadcast over.

    ``batch_size`` overrides every agent's own batch size and must be
    positive when given (the config boundary rejects non-positive
    overrides, so the historical falsy-override ambiguity cannot arise).
    """
    return agent_vectors_from_attrs(agent_attrs(agents), profile, batch_size)


@dataclass(frozen=True)
class SparseBandwidth:
    """CSR neighbor-list view of a round's usable links.

    Row ``i`` holds the participant *positions* reachable from position
    ``i`` with a usable (> 0 bytes/s) link, ascending, together with the
    effective bandwidth of each link.  Built from the topology's edge list,
    so ring / random-k topologies cost O(E) to assemble instead of the
    O(n²) dense :func:`bandwidth_matrix`.

    Attributes
    ----------
    indptr:
        ``(n + 1,)`` row pointers into ``indices`` / ``data``.
    indices:
        Neighbor positions, ascending within each row.
    data:
        Effective bandwidth (bytes/s) per stored link; strictly positive.
    """

    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray

    @property
    def num_rows(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_links(self) -> int:
        return len(self.indices)

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """``(neighbor positions, bandwidths)`` of row ``i``."""
        start, stop = self.indptr[i], self.indptr[i + 1]
        return self.indices[start:stop], self.data[start:stop]


def sparse_bandwidth(
    agents: Sequence[Agent], link_model: LinkModel
) -> SparseBandwidth:
    """Build the CSR neighbor-list bandwidth for a round's participants.

    Stored entries equal ``link_model.bandwidth(agents[i], agents[j])``
    exactly; pairs with no usable link are simply absent.  For link models
    with the default semantics the per-edge bandwidth is the vectorized
    ``min(access_i, access_j)``; custom link models are queried once per
    ordered edge (O(E) calls).
    """
    n = len(agents)
    ids = [agent.agent_id for agent in agents]
    position = {agent_id: index for index, agent_id in enumerate(ids)}
    graph = link_model.topology.graph
    default_links = _uses_default_links(link_model)
    access = np.array(
        [agent.profile.bandwidth_bytes_per_second for agent in agents],
        dtype=np.float64,
    )

    if default_links:
        # C-driven edge extraction + vectorized id -> position mapping; the
        # Python cost is one fromiter pass over the edge list, everything
        # after is numpy.
        edge_view = (
            graph.edges() if n >= graph.number_of_nodes() else graph.edges(ids)
        )
        edges = np.fromiter(
            (endpoint for edge in edge_view for endpoint in edge),
            dtype=np.int64,
        ).reshape(-1, 2)
        if n == 0 or len(edges) == 0:
            empty = np.empty(0, dtype=np.int64)
            return SparseBandwidth(
                indptr=np.zeros(n + 1, dtype=np.int64),
                indices=empty,
                data=np.empty(0),
            )
        ids_array = np.fromiter(ids, dtype=np.int64, count=n)
        sort_order = np.argsort(ids_array, kind="stable")
        sorted_ids = ids_array[sort_order]
        slots = np.searchsorted(sorted_ids, edges)
        slots[slots >= n] = 0
        keep = (sorted_ids[slots] == edges).all(axis=1)
        endpoint_a = sort_order[slots[keep, 0]]
        endpoint_b = sort_order[slots[keep, 1]]
        keep_distinct = endpoint_a != endpoint_b
        endpoint_a = endpoint_a[keep_distinct]
        endpoint_b = endpoint_b[keep_distinct]
        bandwidth = np.minimum(access[endpoint_a], access[endpoint_b])
        usable = bandwidth > 0.0
        endpoint_a = endpoint_a[usable]
        endpoint_b = endpoint_b[usable]
        bandwidth = bandwidth[usable]
        row_array = np.concatenate([endpoint_a, endpoint_b])
        col_array = np.concatenate([endpoint_b, endpoint_a])
        val_array = np.concatenate([bandwidth, bandwidth])
    else:
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []
        for u, v in graph.edges(ids):
            i = position.get(u)
            j = position.get(v)
            if i is None or j is None or i == j:
                continue
            forward = link_model.bandwidth(agents[i], agents[j])
            if forward > 0.0:
                rows.append(i)
                cols.append(j)
                vals.append(forward)
            backward = link_model.bandwidth(agents[j], agents[i])
            if backward > 0.0:
                rows.append(j)
                cols.append(i)
                vals.append(backward)
        row_array = np.asarray(rows, dtype=np.int64)
        col_array = np.asarray(cols, dtype=np.int64)
        val_array = np.asarray(vals, dtype=np.float64)
    order = np.lexsort((col_array, row_array))
    row_array = row_array[order]
    col_array = col_array[order]
    val_array = val_array[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, row_array + 1, 1)
    np.cumsum(indptr, out=indptr)
    return SparseBandwidth(indptr=indptr, indices=col_array, data=val_array)


class PairCostModel:
    """Precomputed pair-time tensor for one round's participants.

    Parameters
    ----------
    participants:
        The round's agents; all matrices are indexed by position in this
        sequence.
    profile:
        Split profile of the architecture being trained.
    link_model:
        Source of pairwise bandwidths (mutually exclusive with
        ``bandwidths``).
    bandwidths:
        Explicit ``n × n`` bandwidth matrix in bytes/s (used by the exact
        solver, whose bandwidths come from a caller-supplied lookup).
    batch_size:
        Optional batch-size override, with the same semantics as the
        scalar path: estimates resolve ``None`` to each slow agent's own
        batch size.
    latency_seconds:
        Per-message link latency; defaults to the link model's latency or
        :data:`~repro.sim.costs.DEFAULT_LINK_LATENCY_SECONDS`.
    shared_busy_times:
        When true (the greedy scheduler's convention) the fast agent's own
        task time ``τ̂_j`` is its broadcast individual time, computed with
        its *own* batch size.  When false (the exact solver's convention,
        matching ``estimate_offload_time`` with no explicit busy time) it
        is recomputed with the slow agent's batch size.

    Attributes
    ----------
    individual_times:
        ``τ̂_i`` vector (the shared list broadcast in Algorithm 1).
    bandwidths:
        Effective bandwidth matrix in bytes/s, 0 where unusable.
    best_pair_times:
        ``[i, j]`` = minimum of ``τ̂_ij^m`` over all profiled splits
        (``+inf`` where ``i == j`` or no usable link).
    best_split_indices:
        Position in ``profile.offload_options`` of the minimizing split
        (first minimum on ties, like the scalar oracle; ``-1`` invalid).
    pairable:
        Boolean matrix: a usable link exists *and* the best split actually
        offloads work (``m > 0``) — exactly the candidates the greedy
        scheduler considers.
    """

    def __init__(
        self,
        participants: Sequence[Agent],
        profile: SplitProfile,
        *,
        link_model: Optional[LinkModel] = None,
        bandwidths: Optional[np.ndarray] = None,
        batch_size: Optional[int] = None,
        latency_seconds: Optional[float] = None,
        shared_busy_times: bool = True,
    ) -> None:
        if (link_model is None) == (bandwidths is None):
            raise ValueError("provide exactly one of link_model or bandwidths")
        if batch_size is not None:
            check_positive(batch_size, "batch_size")
        self.agents = list(participants)
        self.profile = profile
        self.batch_size = batch_size
        n = len(self.agents)
        self.n = n
        if latency_seconds is None:
            latency_seconds = (
                link_model.latency_seconds
                if link_model is not None
                else DEFAULT_LINK_LATENCY_SECONDS
            )
        self.latency_seconds = latency_seconds
        self._shared_busy_times = shared_busy_times

        if bandwidths is not None:
            self.bandwidths = np.asarray(bandwidths, dtype=np.float64)
            if self.bandwidths.shape != (n, n):
                raise ValueError(
                    f"bandwidth matrix must be {n}x{n}, got {self.bandwidths.shape}"
                )
        else:
            self.bandwidths = bandwidth_matrix(self.agents, link_model)

        # ------------------------------------------------------------------
        # Per-agent vectors (same scalar formulas, evaluated elementwise;
        # batch_size overrides are validated positive above, so τ̂ and the
        # estimates resolve the override identically)
        # ------------------------------------------------------------------
        vectors = agent_vectors(self.agents, profile, batch_size)
        batches = vectors.batches
        bs_est = vectors.batch_sizes
        flops_est = vectors.flops
        throughput = vectors.throughput
        self.individual_times = vectors.individual_times
        # Slow-side speed p_i and fast-side speed p_j, both under the slow
        # agent's batch size (estimate_offload_time converts per-sample
        # costs with a single batch size per pair).
        slow_speed = vectors.slow_speed
        fast_speed = throughput[None, :] / flops_est[:, None]
        solo_est = vectors.solo_times

        if shared_busy_times:
            busy = np.broadcast_to(self.individual_times[None, :], (n, n))
        else:
            busy = batches[None, :] / fast_speed

        # ------------------------------------------------------------------
        # Pair-time slices per split, reduced with strict-< first-minimum
        # ------------------------------------------------------------------
        best_time = np.full((n, n), np.inf)
        best_index = np.full((n, n), -1, dtype=np.int64)
        slow_factors = profile.slow_time_array
        fast_factors = profile.fast_time_array
        intermediate = profile.intermediate_bytes_array
        offloaded = profile.offloaded_bytes_array
        with np.errstate(divide="ignore", invalid="ignore"):
            for index, option in enumerate(profile.offload_options):
                if option == 0:
                    pair_time = np.maximum(solo_est[:, None], busy)
                else:
                    slow_factor = slow_factors[index]
                    fast_factor = fast_factors[index]
                    slow_time = (
                        batches * slow_factor / slow_speed
                        if slow_factor > 0
                        else np.zeros(n)
                    )
                    fast_offload = (
                        (batches * fast_factor)[:, None] / fast_speed
                        if fast_factor > 0
                        else np.zeros((n, n))
                    )
                    intermediate_bytes = (intermediate[index] * bs_est)[:, None]
                    communication = batches[:, None] * (
                        latency_seconds + intermediate_bytes / self.bandwidths
                    ) + (2.0 * offloaded[index]) / self.bandwidths
                    fast_chain = (busy + communication) + fast_offload
                    pair_time = np.maximum(slow_time[:, None], fast_chain)
                better = pair_time < best_time
                best_time[better] = pair_time[better]
                best_index[better] = index
        valid = self.bandwidths > 0
        np.fill_diagonal(valid, False)
        best_time[~valid] = np.inf
        best_index[~valid] = -1
        self.best_pair_times = best_time
        self.best_split_indices = best_index
        offload_values = profile.options_array
        self.pairable = valid & (offload_values[np.maximum(best_index, 0)] > 0)

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def individual_times_by_id(self) -> dict[int, float]:
        """The shared training-time list ``{agent id: τ̂}`` of Algorithm 1."""
        return {
            agent.agent_id: float(time)
            for agent, time in zip(self.agents, self.individual_times)
        }

    def best_offloaded_layers(self, slow: int, fast: int) -> int:
        """Offload value ``m`` minimizing the pair time for positions (slow, fast)."""
        index = int(self.best_split_indices[slow, fast])
        if index < 0:
            raise ValueError(f"no usable link between positions {slow} and {fast}")
        return int(self.profile.offload_options[index])

    def estimate(self, slow: int, fast: int) -> OffloadEstimate:
        """Full :class:`OffloadEstimate` for the best split of (slow, fast).

        Delegates to the scalar oracle for the single chosen split, so the
        returned estimate is bit-identical to the pure-Python path (and is
        built from Python floats, keeping downstream JSON serializable).
        Under ``shared_busy_times=False`` the oracle recomputes the fast
        agent's busy time itself, mirroring a ``best_offload`` call with no
        explicit busy time.
        """
        busy = (
            float(self.individual_times[fast]) if self._shared_busy_times else None
        )
        return estimate_offload_time(
            slow_agent=self.agents[slow],
            fast_agent=self.agents[fast],
            offloaded_layers=self.best_offloaded_layers(slow, fast),
            profile=self.profile,
            bandwidth_bytes_per_second=float(self.bandwidths[slow, fast]),
            fast_agent_busy_time=busy,
            batch_size=self.batch_size,
            latency_seconds=self.latency_seconds,
        )
