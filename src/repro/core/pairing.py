"""Dynamic decentralized pairing (Algorithm 1, ``Main`` loop + ``Pairing``).

Each round:

1. every available agent broadcasts its processing speed ``p_j`` and its
   individual training-time estimate ``τ̂_j`` to its connected neighbours;
2. agents are visited in descending order of ``τ̂`` (slowest first);
3. each still-unpaired agent evaluates, for every still-unpaired connected
   neighbour, the best split it could offload (``AgentTrainingTime``) and
   pairs with the neighbour giving the smallest estimated round time —
   provided that estimate actually improves on training alone;
4. the pair is removed from the pool and the next slowest agent proceeds.

The procedure needs only neighbour-local information (speeds, dataset
sizes, observed link speeds), which is what makes it decentralized: each
agent could run it independently from the shared list of training times and
arrive at the same pairing.

:func:`greedy_pairing` evaluates the (slow × candidate × split) cost
tensor through the vectorized :class:`~repro.core.fastpath.PairCostModel`
kernel; the pure-Python loop is kept as
:func:`greedy_pairing_reference`, the oracle the equivalence tests and
the trajectory benchmarks compare against.  Both produce *identical*
``PairingDecision`` lists — same floats, same tie-breaking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.agents.agent import Agent
from repro.core.profiling import SplitProfile
from repro.core.workload import (
    OffloadEstimate,
    best_offload,
    individual_training_time,
)
from repro.network.link import LinkModel

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.core.fastpath import PairCostModel


@dataclass(frozen=True)
class PairingDecision:
    """One entry of the round's workload-balancing plan.

    Attributes
    ----------
    slow_id:
        Agent that offloads (or trains alone when ``fast_id`` is ``None``).
    fast_id:
        Helper agent receiving the offloaded workload, or ``None``.
    offloaded_layers:
        The chosen split ``m`` (0 when training alone).
    estimate:
        The timing estimate backing the decision.
    """

    slow_id: int
    fast_id: Optional[int]
    offloaded_layers: int
    estimate: OffloadEstimate

    @property
    def is_offloading(self) -> bool:
        """Whether this decision actually offloads work."""
        return self.fast_id is not None and self.offloaded_layers > 0


def greedy_pairing(
    participants: Sequence[Agent],
    link_model: LinkModel,
    profile: SplitProfile,
    batch_size: Optional[int] = None,
    improvement_threshold: float = 0.0,
    cost_model: Optional["PairCostModel"] = None,
) -> list[PairingDecision]:
    """Pair agents for one round using the paper's greedy scheduler.

    Pair times are evaluated through the vectorized
    :class:`~repro.core.fastpath.PairCostModel` kernel; the decisions are
    identical (to full float equality) to
    :func:`greedy_pairing_reference`.

    Parameters
    ----------
    participants:
        Agents taking part in this round (already sampled if a participation
        fraction applies).
    improvement_threshold:
        Minimum *relative* improvement over training alone required to form
        a pair (0 reproduces the paper; a small positive value avoids pairs
        that barely help, used in ablations).
    cost_model:
        Optional precomputed kernel for these exact participants (the
        scheduler passes its own so the shared τ̂ list and the plan come
        from one evaluation); built on demand when omitted.

    Returns
    -------
    One :class:`PairingDecision` per slow agent that offloads, plus one
    (with ``fast_id=None``) per agent that trains alone.  Fast agents that
    help a slow agent do not get their own entry — their own local task is
    accounted for inside the pair's estimate.
    """
    from repro.core.fastpath import PairCostModel

    agents = list(participants)
    if not agents:
        return []
    if cost_model is None:
        cost_model = PairCostModel(
            agents, profile, link_model=link_model, batch_size=batch_size
        )
    taus = cost_model.individual_times
    # The shared list A: agent positions in descending order of completion
    # time (stable, so ties keep participant order like the scalar sort).
    order = sorted(range(len(agents)), key=lambda k: taus[k], reverse=True)

    # Candidates must be reachable and actually offload (best split m > 0);
    # the `alive` mask below removes agents as they pair up or train alone.
    candidate = cost_model.pairable
    pair_times = cost_model.best_pair_times
    alive = np.ones(len(agents), dtype=bool)
    decisions: list[PairingDecision] = []

    for i in order:
        if not alive[i]:
            continue
        own_time = float(taus[i])

        row = np.where(candidate[i] & alive, pair_times[i], np.inf)
        best_j = int(np.argmin(row))  # first minimum, like the strict-< scan
        best_time = row[best_j]

        if best_time < own_time * (1.0 - improvement_threshold):
            estimate = cost_model.estimate(i, best_j)
            decisions.append(
                PairingDecision(
                    slow_id=agents[i].agent_id,
                    fast_id=agents[best_j].agent_id,
                    offloaded_layers=estimate.offloaded_layers,
                    estimate=estimate,
                )
            )
            alive[i] = False
            alive[best_j] = False
        else:
            decisions.append(_solo_decision(agents[i].agent_id, own_time))
            alive[i] = False

    return decisions


def _solo_decision(agent_id: int, own_time: float) -> PairingDecision:
    """Decision for an agent that trains the full model alone."""
    return PairingDecision(
        slow_id=agent_id,
        fast_id=None,
        offloaded_layers=0,
        estimate=OffloadEstimate(
            offloaded_layers=0,
            slow_time=own_time,
            fast_own_time=0.0,
            communication_time=0.0,
            fast_offload_time=0.0,
            pair_time=own_time,
        ),
    )


def greedy_pairing_reference(
    participants: Sequence[Agent],
    link_model: LinkModel,
    profile: SplitProfile,
    batch_size: Optional[int] = None,
    improvement_threshold: float = 0.0,
) -> list[PairingDecision]:
    """Scalar reference implementation of :func:`greedy_pairing`.

    One ``AgentTrainingTime`` minimisation per (slow, candidate) pair via
    :func:`~repro.core.workload.best_offload` — the pre-kernel pure-Python
    path, kept as the oracle the vectorized kernel is tested against and
    as the baseline of the round-planning trajectory benchmark.
    """
    agents = list(participants)
    # Step 2 of Algorithm 1: broadcast p_j and τ̂_j — here we simply compute
    # every participant's individual training time from shared information.
    individual_times = {
        agent.agent_id: individual_training_time(
            agent, profile, batch_size or agent.batch_size
        )
        for agent in agents
    }
    # The shared list A: agents in descending order of task completion time.
    order = sorted(agents, key=lambda agent: individual_times[agent.agent_id], reverse=True)

    unpaired: dict[int, Agent] = {agent.agent_id: agent for agent in agents}
    decisions: list[PairingDecision] = []

    for agent in order:
        if agent.agent_id not in unpaired:
            continue
        own_time = individual_times[agent.agent_id]

        best_decision: Optional[PairingDecision] = None
        for candidate_id, candidate in unpaired.items():
            if candidate_id == agent.agent_id:
                continue
            bandwidth = link_model.bandwidth(agent, candidate)
            if bandwidth <= 0:
                continue
            estimate = best_offload(
                slow_agent=agent,
                fast_agent=candidate,
                profile=profile,
                bandwidth_bytes_per_second=bandwidth,
                fast_agent_busy_time=individual_times[candidate_id],
                batch_size=batch_size,
                latency_seconds=link_model.latency_seconds,
            )
            if estimate.offloaded_layers == 0:
                continue
            if best_decision is None or estimate.pair_time < best_decision.estimate.pair_time:
                best_decision = PairingDecision(
                    slow_id=agent.agent_id,
                    fast_id=candidate_id,
                    offloaded_layers=estimate.offloaded_layers,
                    estimate=estimate,
                )

        improves = (
            best_decision is not None
            and best_decision.estimate.pair_time
            < own_time * (1.0 - improvement_threshold)
        )
        if improves:
            decisions.append(best_decision)
            del unpaired[best_decision.slow_id]
            del unpaired[best_decision.fast_id]
        else:
            solo_estimate = OffloadEstimate(
                offloaded_layers=0,
                slow_time=own_time,
                fast_own_time=0.0,
                communication_time=0.0,
                fast_offload_time=0.0,
                pair_time=own_time,
            )
            decisions.append(
                PairingDecision(
                    slow_id=agent.agent_id,
                    fast_id=None,
                    offloaded_layers=0,
                    estimate=solo_estimate,
                )
            )
            del unpaired[agent.agent_id]

    return decisions


def pairing_makespan(decisions: Sequence[PairingDecision]) -> float:
    """Estimated round makespan implied by a set of pairing decisions."""
    if not decisions:
        return 0.0
    return max(decision.estimate.pair_time for decision in decisions)
