"""Scalable round planner: candidate pruning, sparse bandwidth, incremental replanning.

The dense :class:`~repro.core.fastpath.PairCostModel` kernel materialises
the full ``(slow × candidate × split)`` tensor — O(n²·s) time and memory —
which is exact and fast at paper scale (n ≈ 50) but hopeless at the
10k–1M-agent populations the campaign engine targets.  This module layers
three cooperating mechanisms on *top* of that kernel (never instead of it;
the dense path and the scalar oracle remain the correctness contract):

**Candidate pruning.**  For each slow agent the pair-time evaluation is
restricted to its ``top_k`` fastest reachable peers — a vectorized
rank-selection over the broadcast τ̂ vector gathered along the topology's
neighbor lists — so only a pruned ``(slow × k × split)`` block is ever
computed.  With ``k ≥ n − 1`` no candidate is dropped and the planner is
*decision-identical* to the dense kernel (Hypothesis-enforced in
``tests/test_planner.py``): every elementwise expression mirrors the exact
operation order of :func:`~repro.core.workload.estimate_offload_time`, the
split reduction uses strict-``<`` first-minimum tie-breaking, candidate
lists are kept ascending by participant position so the row argmin breaks
ties like the dense scan, and each formed pair's
:class:`~repro.core.workload.OffloadEstimate` is built from the same
elementwise mirror, reproducing the scalar oracle bit for bit.

**Sparse / blocked bandwidth.**  Adjacency and bandwidth are consumed as
neighbor lists (the topology graph's native structure, or the CSR
:class:`~repro.core.fastpath.SparseBandwidth` view) instead of the dense
``n × n`` :func:`~repro.core.fastpath.bandwidth_matrix`, so ring and
random-k topologies cost O(E), not O(n²).  Complete graphs — where a
neighbor list *is* O(n²) — short-circuit to a shared global top-(k+1)
candidate pool, keeping even full topologies at O(n·k).

**Incremental replanning.**  A :class:`PlannerState` persists each agent's
τ̂, speed signature, and pruned neighbor-block costs across rounds.  At
every plan the planner diffs cheap per-agent signatures (plus membership
and any explicit :meth:`PrunedPlanner.invalidate` calls driven by dynamics
events) and re-costs only the rows whose inputs actually changed: a dirty
agent invalidates its own row, its topology neighborhood (its τ̂ feeds
their candidate selection), and any cached row still referencing it.  A
round with ``d`` changed agents therefore evaluates O(d·k·s) pair times —
:class:`PlannerStats` counts them so tests can assert the bound.

Selection is wired through :func:`build_planner` /
:class:`~repro.core.config.ComDMLConfig` (``planner`` = ``"dense"`` /
``"pruned"`` / ``"auto"`` / ``"sharded"``): the scheduler keeps the
byte-identical dense path whenever the planner does not engage.  The
``"sharded"`` mode layers the process-parallel shared-memory runtime of
:mod:`repro.core.shard` on top of this planner's exact block math.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import chain
from typing import NamedTuple, Optional, Sequence

import numpy as np

from repro.agents.agent import Agent
from repro.core.config import PLANNER_MODES, normalize_planner_mode
from repro.core.fastpath import AgentVectors, _uses_default_links, agent_vectors
from repro.core.pairing import PairingDecision, _solo_decision
from repro.core.profiling import SplitProfile
from repro.core.workload import OffloadEstimate
from repro.network.link import LinkModel
from repro.utils.validation import check_positive

__all__ = [
    "PLANNER_MODES",
    "BlockArrays",
    "PlannerState",
    "PlannerStats",
    "PrunedPlanner",
    "build_planner",
    "normalize_planner_mode",
]


class BlockArrays(NamedTuple):
    """The six ``(n, k)`` candidate-block arrays as one addressable bundle.

    Both :class:`PlannerState` (in-process planning) and the shard workers'
    shared-memory output segments present their blocks through this view, so
    the reset/scatter helpers below write either target with the same code.
    """

    cand_pos: np.ndarray
    cand_ids: np.ndarray
    cand_bw: np.ndarray
    best_times: np.ndarray
    best_split: np.ndarray
    valid: np.ndarray


def _signature(agent: Agent) -> tuple:
    """Everything a planning row depends on about one agent."""
    return (
        agent.profile.cpu_share,
        agent.profile.bandwidth_mbps,
        agent.num_samples,
        agent.batch_size,
        agent.local_epochs,
    )


@dataclass
class PlannerStats:
    """Operation counters of a :class:`PrunedPlanner` (for tests and reports).

    ``pairs_evaluated`` counts (slow, candidate, split) cost evaluations —
    the quantity the incremental-replanning bound O(d·k·s) is stated in.
    """

    rounds: int = 0
    full_rebuilds: int = 0
    rows_recomputed: int = 0
    rows_reused: int = 0
    pairs_evaluated: int = 0
    last_rows_recomputed: int = 0
    last_rows_reused: int = 0
    last_pairs_evaluated: int = 0


@dataclass
class PlannerState:
    """Per-agent planning cache carried across rounds.

    All block arrays are ``(n, k)`` padded: absent candidates hold
    position/id ``-1``, time ``+inf``, and ``valid`` ``False``.  Candidate
    columns are ascending by participant position within each row, which
    is what keeps the greedy row argmin's first-minimum tie-breaking
    identical to the dense kernel's.
    """

    ids: tuple[int, ...]
    k: int
    signatures: dict[int, tuple]
    taus: np.ndarray
    cand_pos: np.ndarray
    cand_ids: np.ndarray
    cand_bw: np.ndarray
    best_times: np.ndarray
    best_split: np.ndarray
    valid: np.ndarray

    def blocks(self) -> BlockArrays:
        """The block arrays bundled for the shared reset/scatter helpers."""
        return BlockArrays(
            self.cand_pos,
            self.cand_ids,
            self.cand_bw,
            self.best_times,
            self.best_split,
            self.valid,
        )


class PrunedPlanner:
    """Top-k pruned, sparse-bandwidth, incrementally replanning scheduler core.

    Parameters
    ----------
    profile:
        Split profile of the architecture being trained.
    link_model:
        Source of adjacency and pairwise bandwidths.
    top_k:
        Candidate budget per slow agent.  ``k ≥ n − 1`` makes the planner
        decision-identical to the dense kernel.
    engage_threshold:
        Population size at or above which :meth:`engages` returns true;
        ``None`` engages at any size (the ``"pruned"`` mode).
    batch_size:
        Optional positive batch-size override (same semantics as the dense
        kernel; validated at this boundary).
    improvement_threshold:
        Minimum relative improvement over training alone required to pair.
    """

    def __init__(
        self,
        profile: SplitProfile,
        link_model: LinkModel,
        *,
        top_k: int = 32,
        engage_threshold: Optional[int] = None,
        batch_size: Optional[int] = None,
        improvement_threshold: float = 0.0,
    ) -> None:
        check_positive(top_k, "top_k")
        if engage_threshold is not None:
            check_positive(engage_threshold, "engage_threshold")
        if batch_size is not None:
            check_positive(batch_size, "batch_size")
        self.profile = profile
        self.link_model = link_model
        self.top_k = top_k
        self.engage_threshold = engage_threshold
        self.batch_size = batch_size
        self.improvement_threshold = improvement_threshold
        self.latency_seconds = link_model.latency_seconds
        self.stats = PlannerStats()
        self.state: Optional[PlannerState] = None
        self._pending_dirty: set[int] = set()
        self._pending_all = False
        #: Cached CSR link structure: (ids, indptr, link rows, link cols).
        #: Holds every topology edge between participants regardless of the
        #: bandwidth at build time — bandwidths are re-read per use, so the
        #: structure only invalidates on membership / wiring changes.
        self._links: Optional[
            tuple[tuple[int, ...], np.ndarray, np.ndarray, np.ndarray]
        ] = None

    # ------------------------------------------------------------------
    # Selection / invalidation API
    # ------------------------------------------------------------------
    def engages(self, population: int) -> bool:
        """Whether the pruned planner should plan a round of this size."""
        if self.engage_threshold is None:
            return True
        return population >= self.engage_threshold

    def invalidate(self, agent_ids: Sequence[int]) -> None:
        """Mark agents dirty (profile / bandwidth / wiring changed).

        The planner also diffs per-agent signatures on every plan, so churn
        that changes a profile value is caught without this call; explicit
        invalidation covers changes signatures cannot see.
        """
        self._pending_dirty.update(int(agent_id) for agent_id in agent_ids)

    def invalidate_all(self) -> None:
        """Drop the entire cache (next plan is a full rebuild)."""
        self._pending_all = True
        self._links = None

    def close(self) -> None:
        """Release planner resources (no-op for the in-process planner).

        Exists so callers can treat every planner uniformly; the sharded
        subclass tears down its worker pool and shared-memory segments here.
        """

    def __enter__(self) -> "PrunedPlanner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(
        self, participants: Sequence[Agent]
    ) -> tuple[list[PairingDecision], dict[int, float]]:
        """Plan one round; returns (decisions, broadcast τ̂ list by id)."""
        agents = list(participants)
        n = len(agents)
        if n == 0:
            return [], {}
        vectors = agent_vectors(agents, self.profile, self.batch_size)
        taus = vectors.individual_times
        ids = tuple(agent.agent_id for agent in agents)
        taus_by_id = dict(zip(ids, taus.tolist()))
        signatures = dict(zip(ids, map(_signature, agents)))
        k = min(self.top_k, max(n - 1, 0))

        state, dirty_rows = self._realign(agents, ids, signatures, taus, k)
        self._recompute_rows(state, agents, vectors, dirty_rows)

        self.stats.rounds += 1
        self.stats.last_rows_recomputed = len(dirty_rows)
        self.stats.last_rows_reused = n - len(dirty_rows)
        self.stats.rows_recomputed += len(dirty_rows)
        self.stats.rows_reused += n - len(dirty_rows)
        if len(dirty_rows) == n:
            self.stats.full_rebuilds += 1

        decisions = self._greedy_scan(state, agents, vectors, taus)
        return decisions, taus_by_id

    # ------------------------------------------------------------------
    # Cache maintenance
    # ------------------------------------------------------------------
    def _realign(
        self,
        agents: list[Agent],
        ids: tuple[int, ...],
        signatures: dict[int, tuple],
        taus: np.ndarray,
        k: int,
    ) -> tuple[PlannerState, list[int]]:
        """Carry the cache over to this round's participants; find dirty rows."""
        n = len(agents)
        previous = self.state
        if self._pending_all or previous is None or previous.k != k:
            self._pending_all = False
            self._pending_dirty.clear()
            state = _empty_state(ids, k, signatures, taus)
            self.state = state
            return state, list(range(n))

        current_ids = set(ids)
        dirty_ids = {
            agent_id
            for agent_id in ids
            if signatures[agent_id] != previous.signatures.get(agent_id)
        }
        if self._pending_dirty:
            # Explicit invalidation can signal wiring changes the signature
            # diff cannot see — drop the cached link structure too.
            self._links = None
        dirty_ids |= self._pending_dirty & current_ids
        self._pending_dirty -= current_ids
        departed = set(previous.ids) - current_ids

        if not dirty_ids and not departed and ids == previous.ids:
            previous.taus = taus
            previous.signatures = signatures
            return previous, []

        row_of = {agent_id: row for row, agent_id in enumerate(ids)}
        state = _empty_state(ids, k, signatures, taus)
        if ids == previous.ids:
            # Same participants in the same order: keep the block arrays.
            for name in ("cand_pos", "cand_ids", "cand_bw", "best_times",
                         "best_split", "valid"):
                setattr(state, name, getattr(previous, name).copy())
        else:
            # Membership or order changed: pull retained rows over and
            # remap cached candidate positions old → new.
            old_row_of = {agent_id: row for row, agent_id in enumerate(previous.ids)}
            old_rows = np.array(
                [old_row_of.get(agent_id, -1) for agent_id in ids], dtype=np.int64
            )
            keep = old_rows >= 0
            for name in ("cand_pos", "cand_ids", "cand_bw", "best_times",
                         "best_split", "valid"):
                getattr(state, name)[keep] = getattr(previous, name)[old_rows[keep]]
            new_pos_of_old = np.full(len(previous.ids), -1, dtype=np.int64)
            new_pos_of_old[old_rows[keep]] = np.nonzero(keep)[0]
            remappable = state.cand_pos >= 0
            state.cand_pos[remappable] = new_pos_of_old[state.cand_pos[remappable]]
            stale = remappable & (state.cand_pos < 0)
            state.valid[stale] = False
            state.best_times[stale] = np.inf

        # Dirty closure: the agent itself, its current topology
        # neighborhood (its τ̂ feeds their candidate selection), and any
        # cached row still referencing a dirty or departed id (covers
        # edges the topology dropped, e.g. a ring splice).
        dirty_rows: set[int] = set()
        graph = self.link_model.topology.graph
        for agent_id in dirty_ids:
            row = row_of.get(agent_id)
            if row is not None:
                dirty_rows.add(row)
        for agent_id in dirty_ids | departed:
            if graph.has_node(agent_id):
                for neighbor in graph.neighbors(agent_id):
                    row = row_of.get(neighbor)
                    if row is not None:
                        dirty_rows.add(row)
        affected_ids = dirty_ids | departed
        if affected_ids and state.cand_ids.size:
            referencing = np.isin(
                state.cand_ids, np.fromiter(affected_ids, dtype=np.int64)
            ).any(axis=1)
            dirty_rows.update(int(row) for row in np.nonzero(referencing)[0])

        self.state = state
        return state, sorted(dirty_rows)

    # ------------------------------------------------------------------
    # Candidate selection + pruned block costing
    # ------------------------------------------------------------------
    def _candidate_rows(
        self, state: PlannerState, agents: list[Agent], rows: list[int]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Top-k fastest reachable peers of the given (ascending) rows.

        Returns flat ``(rows, candidate positions, bandwidths)`` arrays
        grouped by ascending row with ascending candidate positions inside
        each group — the order the dense kernel's first-minimum argmin
        tie-breaking relies on.
        """
        taus = state.taus
        k = state.k
        graph = self.link_model.topology.graph
        access = np.array(
            [agent.profile.bandwidth_bytes_per_second for agent in agents],
            dtype=np.float64,
        )
        default_links = _uses_default_links(self.link_model)

        node_count = graph.number_of_nodes()
        if (
            default_links
            and node_count >= 2
            and graph.number_of_edges() == node_count * (node_count - 1) // 2
        ):
            # Complete graph: a neighbor list would be O(n²); use the
            # shared global top-(k+1) pool instead.
            return _complete_graph_candidates(taus, access, rows, k)

        if default_links:
            indptr, link_rows, link_cols = self._link_structure(agents)
            if len(rows) == len(agents):
                sel_rows, sel_cols = link_rows, link_cols
            else:
                sel_rows, sel_cols = _csr_row_links(
                    indptr, link_cols, np.asarray(rows, dtype=np.int64)
                )
            bandwidth = np.minimum(access[sel_rows], access[sel_cols])
        else:
            # Custom link-model semantics: query per ordered pair, but only
            # for the dirty rows' neighborhoods.
            row_of = {agent.agent_id: row for row, agent in enumerate(agents)}
            flat_rows: list[int] = []
            flat_cols: list[int] = []
            flat_bw: list[float] = []
            for row in rows:
                agent = agents[row]
                if not graph.has_node(agent.agent_id):
                    continue
                for neighbor in graph.neighbors(agent.agent_id):
                    col = row_of.get(neighbor)
                    if col is None:
                        continue
                    value = self.link_model.bandwidth(agent, agents[col])
                    if value > 0.0:
                        flat_rows.append(row)
                        flat_cols.append(col)
                        flat_bw.append(value)
            sel_rows = np.asarray(flat_rows, dtype=np.int64)
            sel_cols = np.asarray(flat_cols, dtype=np.int64)
            bandwidth = np.asarray(flat_bw, dtype=np.float64)
            if sel_rows.size:
                # graph.neighbors order is arbitrary; restore (row, col).
                order = np.lexsort((sel_cols, sel_rows))
                sel_rows = sel_rows[order]
                sel_cols = sel_cols[order]
                bandwidth = bandwidth[order]

        return _top_k_by_tau(sel_rows, sel_cols, bandwidth, taus, len(agents), k)

    def _link_structure(
        self, agents: list[Agent]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR adjacency over the participants (both directions per edge).

        Cached across rounds keyed by the participant id tuple; bandwidths
        are intentionally NOT part of the structure (they are re-read from
        the agents at query time), so profile churn never invalidates it.
        """
        ids = tuple(agent.agent_id for agent in agents)
        if self._links is not None and self._links[0] == ids:
            return self._links[1], self._links[2], self._links[3]
        n = len(agents)
        graph = self.link_model.topology.graph
        adjacency = graph.adj
        # Iterating the adjacency dict yields each directed link exactly
        # once per endpoint, already grouped by row; a per-row sort of the
        # small neighbor lists replaces the global lexsort an edge-list
        # extraction would need (measurably faster at 10k+ edges).
        chunks: Optional[list[list[int]]] = None
        if n == graph.number_of_nodes():
            try:
                if ids == tuple(range(n)):
                    # Ids equal positions (the common contiguous
                    # labelling): neighbor ids need no translation.
                    chunks = [sorted(adjacency[agent_id]) for agent_id in ids]
                else:
                    lookup = {
                        agent_id: row for row, agent_id in enumerate(ids)
                    }.__getitem__
                    chunks = [
                        sorted(map(lookup, adjacency[agent_id]))
                        for agent_id in ids
                    ]
            except KeyError:
                # A participant is not a topology node, or a neighbor is
                # not a participant — take the filtering path below.
                chunks = None
        if chunks is None:
            lookup = {agent_id: row for row, agent_id in enumerate(ids)}.get
            chunks = []
            for agent_id in ids:
                neighbors = adjacency.get(agent_id)
                if neighbors:
                    chunks.append(
                        sorted(
                            col
                            for col in map(lookup, neighbors)
                            if col is not None
                        )
                    )
                else:
                    chunks.append([])
        counts = np.fromiter(map(len, chunks), dtype=np.int64, count=n)
        total = int(counts.sum())
        link_cols = np.fromiter(
            chain.from_iterable(chunks), dtype=np.int64, count=total
        )
        link_rows = np.repeat(np.arange(n, dtype=np.int64), counts)
        distinct = link_rows != link_cols
        if not distinct.all():
            link_rows = link_rows[distinct]
            link_cols = link_cols[distinct]
            counts = np.bincount(link_rows, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        self._links = (ids, indptr, link_rows, link_cols)
        return indptr, link_rows, link_cols

    def _recompute_rows(
        self,
        state: PlannerState,
        agents: list[Agent],
        vectors: AgentVectors,
        rows: list[int],
    ) -> None:
        """Re-cost the pruned (slow × k × split) blocks of the given rows."""
        if not rows:
            self.stats.last_pairs_evaluated = 0
            return
        rows_flat, cols_flat, bw_flat = self._candidate_rows(state, agents, rows)
        rows_array = np.asarray(rows, dtype=np.int64)
        blocks = state.blocks()
        _reset_rows(blocks, rows_array)

        total = int(rows_flat.size)
        self.stats.last_pairs_evaluated = total * self.profile.num_options
        self.stats.pairs_evaluated += self.stats.last_pairs_evaluated
        if total == 0:
            return
        best_time, best_index = _pair_block_times(
            self.profile, vectors, rows_flat, cols_flat, bw_flat,
            self.latency_seconds,
        )
        ids_array = np.array([agent.agent_id for agent in agents], dtype=np.int64)
        _scatter_rows(
            blocks, rows_flat, cols_flat, bw_flat, best_time, best_index,
            ids_array, self.profile.options_array, len(agents),
        )

    # ------------------------------------------------------------------
    # Greedy scan (Algorithm 1's Pairing over the pruned blocks)
    # ------------------------------------------------------------------
    def _greedy_scan(
        self,
        state: PlannerState,
        agents: list[Agent],
        vectors: AgentVectors,
        taus: np.ndarray,
    ) -> list[PairingDecision]:
        """Algorithm 1's greedy pairing over the pruned candidate blocks.

        The scan itself runs in pure Python over row lists (per-row numpy
        calls on k-element arrays cost more than they compute); the chosen
        pairs' :class:`~repro.core.workload.OffloadEstimate`s are then
        built in one vectorized batch mirroring the scalar oracle.
        """
        n = len(agents)
        taus_list = taus.tolist()
        # Stable argsort on -τ̂ = descending τ̂ with ties in first-seen
        # order, exactly like the dense scheduler's stable reverse sort.
        order = np.argsort(-taus, kind="stable").tolist()
        # Invalid / padded candidates become +inf.  Walking each row's
        # candidates in ascending pair-time order (stable argsort keeps
        # ascending-position order on ties, the dense first-minimum
        # tie-break) lets the scan stop at the first alive candidate
        # instead of re-scanning all k entries per row.
        times = np.where(state.valid, state.best_times, np.inf)
        scan_rows = np.argsort(times, axis=1, kind="stable").tolist()
        times_rows = times.tolist()
        pos_rows = state.cand_pos.tolist()
        alive = [True] * n
        improvement = 1.0 - self.improvement_threshold
        infinity = float("inf")
        decisions: list[Optional[PairingDecision]] = []
        chosen_slow: list[int] = []
        chosen_col: list[int] = []
        chosen_fast: list[int] = []

        for i in order:
            if not alive[i]:
                continue
            own_time = taus_list[i]
            positions = pos_rows[i]
            row_times = times_rows[i]
            best_time = infinity
            best_column = -1
            for column in scan_rows[i]:
                time = row_times[column]
                if time == infinity:
                    break
                if alive[positions[column]]:
                    best_time = time
                    best_column = column
                    break
            if best_time < own_time * improvement:
                j = positions[best_column]
                decisions.append(None)
                chosen_slow.append(i)
                chosen_col.append(best_column)
                chosen_fast.append(j)
                alive[i] = False
                alive[j] = False
            else:
                decisions.append(_solo_decision(agents[i].agent_id, own_time))
                alive[i] = False

        if chosen_slow:
            pair_decisions = iter(
                self._pair_decisions(
                    state, agents, vectors, taus, chosen_slow, chosen_col, chosen_fast
                )
            )
            for index, decision in enumerate(decisions):
                if decision is None:
                    decisions[index] = next(pair_decisions)
        return decisions

    def _pair_decisions(
        self,
        state: PlannerState,
        agents: list[Agent],
        vectors: AgentVectors,
        taus: np.ndarray,
        slow: list[int],
        columns: list[int],
        fast: list[int],
    ) -> list[PairingDecision]:
        """Vectorized :func:`~repro.core.workload.estimate_offload_time`.

        Computes every float with the scalar oracle's exact operation
        order (same IEEE-754 results element for element), batched over
        the round's formed pairs instead of one oracle call per pair.
        Chosen splits always offload (> 0 layers), so only the oracle's
        offloading branch is mirrored.
        """
        profile = self.profile
        slow_idx = np.asarray(slow, dtype=np.int64)
        col_idx = np.asarray(columns, dtype=np.int64)
        fast_idx = np.asarray(fast, dtype=np.int64)
        split_idx = state.best_split[slow_idx, col_idx]
        layers = profile.options_array[split_idx]
        bandwidth = state.cand_bw[slow_idx, col_idx]
        busy = taus[fast_idx]

        slow_batches = vectors.batches[slow_idx]
        slow_speed = vectors.slow_speed[slow_idx]
        fast_speed = vectors.throughput[fast_idx] / vectors.flops[slow_idx]
        slow_factor = profile.slow_time_array[split_idx]
        fast_factor = profile.fast_time_array[split_idx]
        with np.errstate(divide="ignore", invalid="ignore"):
            slow_time = np.where(
                slow_factor > 0, slow_batches * slow_factor / slow_speed, 0.0
            )
            fast_offload = np.where(
                fast_factor > 0, slow_batches * fast_factor / fast_speed, 0.0
            )
            intermediate_bytes = (
                profile.intermediate_bytes_array[split_idx]
                * vectors.batch_sizes[slow_idx]
            )
            communication = slow_batches * (
                self.latency_seconds + intermediate_bytes / bandwidth
            ) + (2.0 * profile.offloaded_bytes_array[split_idx]) / bandwidth
            fast_chain = busy + communication + fast_offload
            pair_time = np.maximum(slow_time, fast_chain)

        # tolist() once: Python-float lists index an order of magnitude
        # faster than element-wise numpy access in the build loop below.
        # Positional construction (field order: slow_id, fast_id,
        # offloaded_layers, estimate / offloaded_layers, slow_time,
        # fast_own_time, communication_time, fast_offload_time, pair_time)
        # skips the kwarg handling on the round's thousands of decisions.
        return [
            PairingDecision(
                agents[i].agent_id,
                agents[j].agent_id,
                m,
                OffloadEstimate(m, st, own, comm, fo, pt),
            )
            for i, j, m, st, own, comm, fo, pt in zip(
                slow,
                fast,
                layers.tolist(),
                slow_time.tolist(),
                busy.tolist(),
                communication.tolist(),
                fast_offload.tolist(),
                pair_time.tolist(),
            )
        ]


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------

def _empty_state(
    ids: tuple[int, ...], k: int, signatures: dict[int, tuple], taus: np.ndarray
) -> PlannerState:
    n = len(ids)
    return PlannerState(
        ids=ids,
        k=k,
        signatures=signatures,
        taus=taus,
        cand_pos=np.full((n, k), -1, dtype=np.int64),
        cand_ids=np.full((n, k), -1, dtype=np.int64),
        cand_bw=np.zeros((n, k), dtype=np.float64),
        best_times=np.full((n, k), np.inf),
        best_split=np.full((n, k), -1, dtype=np.int64),
        valid=np.zeros((n, k), dtype=bool),
    )


def _csr_row_links(
    indptr: np.ndarray, link_cols: np.ndarray, rows_array: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Flat ``(rows, cols)`` links of the given ascending rows from CSR.

    Within a CSR row every stored entry belongs to that row, so the row
    vector is a plain repeat — no ``link_rows`` gather needed.  Shard
    workers call this on their row chunk; the in-process path calls it on
    the dirty-row list.  Both therefore produce identical selections.
    """
    if rows_array.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    counts = indptr[rows_array + 1] - indptr[rows_array]
    pieces = [
        np.arange(indptr[row], indptr[row + 1]) for row in rows_array.tolist()
    ]
    selected = np.concatenate(pieces) if pieces else np.empty(0, dtype=np.int64)
    sel_rows = np.repeat(rows_array, counts)
    sel_cols = link_cols[selected]
    return sel_rows, sel_cols


def _top_k_by_tau(
    sel_rows: np.ndarray,
    sel_cols: np.ndarray,
    bandwidth: np.ndarray,
    taus: np.ndarray,
    n: int,
    k: int,
    tau_rank: Optional[np.ndarray] = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Drop unusable links, then keep each row's ``k`` fastest candidates.

    ``tau_rank`` may be passed precomputed (the sharded runtime computes it
    once in the parent and ships it through shared memory); when omitted it
    is derived lazily, and both derivations are the same deterministic
    stable argsort of ``taus`` — so the selection is identical either way.
    """
    usable = bandwidth > 0.0
    if not usable.all():
        sel_rows = sel_rows[usable]
        sel_cols = sel_cols[usable]
        bandwidth = bandwidth[usable]
    if sel_rows.size == 0:
        return sel_rows, sel_cols, bandwidth

    counts = np.bincount(sel_rows, minlength=n)
    if counts.max() > k:
        # Rank each row's links by candidate τ̂, keeping the k fastest.
        # Sorting by the packed unique key ``row·n + tau_rank[col]``
        # equals a stable lexsort on (row, τ̂): tau_rank orders equal
        # τ̂ values by ascending position, the dense tie-break order.
        if tau_rank is None:
            tau_rank = tau_rank_of(taus)
        order = np.argsort(sel_rows * np.int64(n) + tau_rank[sel_cols])
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        ranks = np.arange(sel_rows.size) - starts[sel_rows[order]]
        kept = order[ranks < k]
        # The pre-selection arrays were (row, col)-ascending, so sorting
        # the kept indices restores that order without a second lexsort.
        kept.sort()
        sel_rows = sel_rows[kept]
        sel_cols = sel_cols[kept]
        bandwidth = bandwidth[kept]
    return sel_rows, sel_cols, bandwidth


def tau_rank_of(taus: np.ndarray) -> np.ndarray:
    """Rank of each agent's τ̂ (stable: equal τ̂ rank by ascending position)."""
    tau_rank = np.empty(len(taus), dtype=np.int64)
    tau_rank[np.argsort(taus, kind="stable")] = np.arange(len(taus))
    return tau_rank


def _reset_rows(blocks: BlockArrays, rows_array: np.ndarray) -> None:
    """Reset the given rows to candidate-block padding."""
    blocks.cand_pos[rows_array] = -1
    blocks.cand_ids[rows_array] = -1
    blocks.cand_bw[rows_array] = 0.0
    blocks.best_times[rows_array] = np.inf
    blocks.best_split[rows_array] = -1
    blocks.valid[rows_array] = False


def _scatter_rows(
    blocks: BlockArrays,
    rows_flat: np.ndarray,
    cols_flat: np.ndarray,
    bw_flat: np.ndarray,
    best_time: np.ndarray,
    best_index: np.ndarray,
    ids_array: np.ndarray,
    options_array: np.ndarray,
    n: int,
) -> None:
    """Scatter flat per-pair results into the ``(n, k)`` block arrays.

    ``rows_flat`` must be grouped by ascending row (the selection helpers
    guarantee it); each entry lands at its offset within its row group.
    """
    total = int(rows_flat.size)
    # Column offset of each entry within its row group.
    counts = np.bincount(rows_flat, minlength=n)
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    offsets = np.arange(total) - starts[rows_flat]
    valid_flat = options_array[np.maximum(best_index, 0)] > 0
    blocks.cand_pos[rows_flat, offsets] = cols_flat
    blocks.cand_ids[rows_flat, offsets] = ids_array[cols_flat]
    blocks.cand_bw[rows_flat, offsets] = bw_flat
    blocks.best_times[rows_flat, offsets] = best_time
    blocks.best_split[rows_flat, offsets] = best_index
    blocks.valid[rows_flat, offsets] = valid_flat


def _complete_graph_candidates(
    taus: np.ndarray, access: np.ndarray, rows: list[int], k: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Candidate selection on a complete graph without materialising O(n²).

    Every connected agent can reach every other, so the per-row top-k
    reduces to one shared global pool: the k+1 connected agents with the
    smallest τ̂ (one extra so each row can drop itself).  Rows outside the
    pool share the same k candidates (vectorized broadcast); the at most
    k+1 pool members each drop themselves (tiny Python loop).
    """
    empty = (
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.int64),
        np.empty(0),
    )
    pool = np.nonzero(access > 0.0)[0]
    if pool.size == 0:
        return empty
    if pool.size > k + 1:
        keep = np.argpartition(taus[pool], k)[: k + 1]
        pool = pool[keep]
    pool = np.sort(pool)
    rows_array = np.asarray(rows, dtype=np.int64)
    connected = access[rows_array] > 0.0
    slot = np.searchsorted(pool, rows_array)
    in_pool = (slot < pool.size) & (pool[np.minimum(slot, pool.size - 1)] == rows_array)

    shared = pool[: min(k, pool.size)]
    outside = rows_array[connected & ~in_pool]
    rows_flat = np.repeat(outside, shared.size)
    cols_flat = np.tile(shared, outside.size)

    member_rows = rows_array[connected & in_pool]
    if member_rows.size:
        member_cols = [pool[pool != row][:k] for row in member_rows]
        rows_flat = np.concatenate(
            [rows_flat]
            + [
                np.full(len(cols), row, dtype=np.int64)
                for row, cols in zip(member_rows, member_cols)
            ]
        )
        cols_flat = np.concatenate([cols_flat] + member_cols)
    if rows_flat.size == 0:
        return empty
    order = np.lexsort((cols_flat, rows_flat))
    rows_flat = rows_flat[order]
    cols_flat = cols_flat[order]
    return rows_flat, cols_flat, np.minimum(access[rows_flat], access[cols_flat])


def _pair_block_times(
    profile: SplitProfile,
    vectors: AgentVectors,
    rows: np.ndarray,
    cols: np.ndarray,
    bandwidths: np.ndarray,
    latency_seconds: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Best split time/index for each (slow=rows[p], fast=cols[p]) pair.

    Mirrors :class:`~repro.core.fastpath.PairCostModel`'s elementwise
    expressions exactly (same per-agent vectors, same operation order,
    strict-``<`` first-minimum split reduction), evaluated only on the
    pruned pair list instead of the full n × n slice — bit-identical
    times wherever both compute a pair.
    """
    batches = vectors.batches
    busy = vectors.individual_times[cols]
    fast_speed = vectors.throughput[cols] / vectors.flops[rows]
    total = len(rows)
    best_time = np.full(total, np.inf)
    best_index = np.full(total, -1, dtype=np.int64)
    slow_factors = profile.slow_time_array
    fast_factors = profile.fast_time_array
    intermediate = profile.intermediate_bytes_array
    offloaded = profile.offloaded_bytes_array
    with np.errstate(divide="ignore", invalid="ignore"):
        for index, option in enumerate(profile.offload_options):
            if option == 0:
                pair_time = np.maximum(vectors.solo_times[rows], busy)
            else:
                slow_factor = slow_factors[index]
                fast_factor = fast_factors[index]
                slow_time = (
                    batches * slow_factor / vectors.slow_speed
                    if slow_factor > 0
                    else np.zeros(len(batches))
                )
                fast_offload = (
                    (batches * fast_factor)[rows] / fast_speed
                    if fast_factor > 0
                    else np.zeros(total)
                )
                intermediate_bytes = (intermediate[index] * vectors.batch_sizes)[rows]
                communication = batches[rows] * (
                    latency_seconds + intermediate_bytes / bandwidths
                ) + (2.0 * offloaded[index]) / bandwidths
                fast_chain = (busy + communication) + fast_offload
                pair_time = np.maximum(slow_time[rows], fast_chain)
            better = pair_time < best_time
            best_time[better] = pair_time[better]
            best_index[better] = index
    return best_time, best_index


# ----------------------------------------------------------------------
# Config-driven selection
# ----------------------------------------------------------------------

def build_planner(
    profile: SplitProfile,
    link_model: LinkModel,
    *,
    mode: str = "auto",
    top_k: int = 32,
    threshold: int = 256,
    batch_size: Optional[int] = None,
    improvement_threshold: float = 0.0,
    shards="auto",
) -> Optional[PrunedPlanner]:
    """Planner selection at the config boundary.

    ``"dense"`` returns ``None`` (the scheduler keeps the exact dense
    kernel for every round), ``"pruned"`` always engages the pruned
    planner, ``"auto"`` engages it only for rounds with at least
    ``threshold`` participants — small populations stay byte-identical to
    the dense path — and ``"sharded"`` engages the process-parallel
    :class:`~repro.core.shard.ShardedPlanner` at the same threshold
    (``shards`` sets its worker count; its pool additionally waits for the
    population to clear the sharding floor, below which it plans exactly
    like ``"pruned"``).
    """
    mode = normalize_planner_mode(mode)
    if mode == "dense":
        return None
    if mode == "sharded":
        from repro.core.shard import ShardedPlanner

        return ShardedPlanner(
            profile,
            link_model,
            top_k=top_k,
            engage_threshold=threshold,
            batch_size=batch_size,
            improvement_threshold=improvement_threshold,
            shards=shards,
        )
    return PrunedPlanner(
        profile,
        link_model,
        top_k=top_k,
        engage_threshold=None if mode == "pruned" else threshold,
        batch_size=batch_size,
        improvement_threshold=improvement_threshold,
    )
