"""Scalable round planner: candidate pruning, sparse bandwidth, incremental replanning.

The dense :class:`~repro.core.fastpath.PairCostModel` kernel materialises
the full ``(slow × candidate × split)`` tensor — O(n²·s) time and memory —
which is exact and fast at paper scale (n ≈ 50) but hopeless at the
10k–1M-agent populations the campaign engine targets.  This module layers
three cooperating mechanisms on *top* of that kernel (never instead of it;
the dense path and the scalar oracle remain the correctness contract):

**Candidate pruning.**  For each slow agent the pair-time evaluation is
restricted to its ``top_k`` fastest reachable peers — a vectorized
rank-selection over the broadcast τ̂ vector gathered along the topology's
neighbor lists — so only a pruned ``(slow × k × split)`` block is ever
computed.  With ``k ≥ n − 1`` no candidate is dropped and the planner is
*decision-identical* to the dense kernel (Hypothesis-enforced in
``tests/test_planner.py``): every elementwise expression mirrors the exact
operation order of :func:`~repro.core.workload.estimate_offload_time`, the
split reduction uses strict-``<`` first-minimum tie-breaking, candidate
lists are kept ascending by participant position so the row argmin breaks
ties like the dense scan, and each formed pair's
:class:`~repro.core.workload.OffloadEstimate` is built from the same
elementwise mirror, reproducing the scalar oracle bit for bit.

**Sparse / blocked bandwidth.**  Adjacency and bandwidth are consumed as
neighbor lists (the topology graph's native structure, or the CSR
:class:`~repro.core.fastpath.SparseBandwidth` view) instead of the dense
``n × n`` :func:`~repro.core.fastpath.bandwidth_matrix`, so ring and
random-k topologies cost O(E), not O(n²).  Complete graphs — where a
neighbor list *is* O(n²) — short-circuit to a shared global top-(k+1)
candidate pool, keeping even full topologies at O(n·k).

**Incremental replanning.**  A :class:`PlannerState` persists each agent's
τ̂, speed signature, and pruned neighbor-block costs across rounds.  At
every plan the planner diffs cheap per-agent signatures (plus membership
and any explicit :meth:`PrunedPlanner.invalidate` calls driven by dynamics
events) and re-costs only the rows whose inputs actually changed: a dirty
agent invalidates its own row, its topology neighborhood (its τ̂ feeds
their candidate selection), and any cached row still referencing it.  A
round with ``d`` changed agents therefore evaluates O(d·k·s) pair times —
:class:`PlannerStats` counts them so tests can assert the bound.

Selection is wired through :func:`build_planner` /
:class:`~repro.core.config.ComDMLConfig` (``planner`` = ``"dense"`` /
``"pruned"`` / ``"auto"`` / ``"sharded"``): the scheduler keeps the
byte-identical dense path whenever the planner does not engage.  The
``"sharded"`` mode layers the process-parallel shared-memory runtime of
:mod:`repro.core.shard` on top of this planner's exact block math.
"""

from __future__ import annotations

import gc
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, NamedTuple, Optional, Sequence

import numpy as np

from repro.agents.agent import Agent
from repro.core.config import PLANNER_MODES, normalize_planner_mode
from repro.core.csr import CsrTranslation, IncrementalCsr
from repro.core.fastpath import (
    AgentVectors,
    _uses_default_links,
    agent_attrs,
    agent_vectors_from_attrs,
)
from repro.core.pairing import PairingDecision
from repro.core.profiling import SplitProfile
from repro.core.workload import OffloadEstimate
from repro.network.link import LinkModel
from repro.utils.validation import check_positive

__all__ = [
    "PLANNER_MODES",
    "BlockArrays",
    "PlannerState",
    "PlannerStats",
    "PrunedPlanner",
    "build_planner",
    "normalize_planner_mode",
]


@contextmanager
def _gc_paused():
    """Pause generational GC over an allocation burst.

    The greedy scan builds one decision object pair per formed pair; at
    hundreds of thousands of agents those allocations trip gen-0
    collections every few hundred objects, and each collection re-scans a
    live heap that holds the whole population.  None of the objects built
    here are garbage, so the collections can only waste time — pause
    collection for the burst and restore the collector's prior state
    after (nothing is re-enabled for callers that run with GC off).
    """
    if not gc.isenabled():
        yield
        return
    gc.disable()
    try:
        yield
    finally:
        gc.enable()


def _fast_pair_decision(
    slow_id: int,
    fast_id: int,
    layers: int,
    slow_time: float,
    fast_own_time: float,
    communication: float,
    fast_offload: float,
    pair_time: float,
) -> PairingDecision:
    """Build one pair decision without the frozen-dataclass ``__init__``.

    ``PairingDecision`` and ``OffloadEstimate`` are frozen, so their
    generated ``__init__`` routes every field through
    ``object.__setattr__`` — measurably the planner's hottest call at
    scale (two objects per formed pair).  Filling the instance
    ``__dict__`` wholesale produces an identical object (same fields,
    equality, and hash; neither class defines ``__post_init__`` or
    ``__slots__``) at half the cost.  ``test_fast_decision_paths_match``
    pins the equivalence.
    """
    estimate = object.__new__(OffloadEstimate)
    estimate.__dict__.update(
        offloaded_layers=layers,
        slow_time=slow_time,
        fast_own_time=fast_own_time,
        communication_time=communication,
        fast_offload_time=fast_offload,
        pair_time=pair_time,
    )
    decision = object.__new__(PairingDecision)
    decision.__dict__.update(
        slow_id=slow_id,
        fast_id=fast_id,
        offloaded_layers=layers,
        estimate=estimate,
    )
    return decision


def _fast_solo_decision(agent_id: int, own_time: float) -> PairingDecision:
    """:func:`repro.core.pairing._solo_decision` on the fast build path."""
    estimate = object.__new__(OffloadEstimate)
    estimate.__dict__.update(
        offloaded_layers=0,
        slow_time=own_time,
        fast_own_time=0.0,
        communication_time=0.0,
        fast_offload_time=0.0,
        pair_time=own_time,
    )
    decision = object.__new__(PairingDecision)
    decision.__dict__.update(
        slow_id=agent_id, fast_id=None, offloaded_layers=0, estimate=estimate
    )
    return decision


class BlockArrays(NamedTuple):
    """The six ``(n, k)`` candidate-block arrays as one addressable bundle.

    Both :class:`PlannerState` (in-process planning) and the shard workers'
    shared-memory output segments present their blocks through this view, so
    the reset/scatter helpers below write either target with the same code.
    """

    cand_pos: np.ndarray
    cand_ids: np.ndarray
    cand_bw: np.ndarray
    best_times: np.ndarray
    best_split: np.ndarray
    valid: np.ndarray


@dataclass
class PlannerStats:
    """Operation counters of a :class:`PrunedPlanner` (for tests and reports).

    ``pairs_evaluated`` counts (slow, candidate, split) cost evaluations —
    the quantity the incremental-replanning bound O(d·k·s) is stated in.
    The ``csr_*`` counters observe the incremental topology engine
    (:mod:`repro.core.csr`): ``csr_edits`` is the number of journal events
    applied as O(Δ) edits, ``csr_rebuilds`` the O(E) from-graph builds, and
    ``csr_compactions`` the lazy delta/tombstone fold-backs.
    """

    rounds: int = 0
    full_rebuilds: int = 0
    rows_recomputed: int = 0
    rows_reused: int = 0
    pairs_evaluated: int = 0
    last_rows_recomputed: int = 0
    last_rows_reused: int = 0
    last_pairs_evaluated: int = 0
    csr_edits: int = 0
    csr_rebuilds: int = 0
    csr_compactions: int = 0

    def report(self) -> dict:
        """Plain-dict view (campaign ``execution_report`` serialisation)."""
        return {
            "rounds": self.rounds,
            "full_rebuilds": self.full_rebuilds,
            "rows_recomputed": self.rows_recomputed,
            "rows_reused": self.rows_reused,
            "pairs_evaluated": self.pairs_evaluated,
            "csr_edits": self.csr_edits,
            "csr_rebuilds": self.csr_rebuilds,
            "csr_compactions": self.csr_compactions,
        }


@dataclass
class PlannerState:
    """Per-agent planning cache carried across rounds.

    All block arrays are ``(n, k)`` padded: absent candidates hold
    position/id ``-1``, time ``+inf``, and ``valid`` ``False``.  Candidate
    columns are ascending by participant position within each row, which
    is what keeps the greedy row argmin's first-minimum tie-breaking
    identical to the dense kernel's.

    ``sig`` is the ``(n, 5)`` per-agent signature matrix (cpu share,
    bandwidth, samples, batch size, local epochs as float64) the planner
    diffs vectorized each round.  The ``scan_*`` arrays are the greedy
    scan's per-row candidate walk order, maintained incrementally: each
    row's candidates sorted ascending by (pair time, candidate column) —
    ``scan_times`` the sorted times, ``scan_pos`` the candidate participant
    positions in that order (−1 past the last finite time), ``scan_cols``
    the original candidate columns.  Only recomputed rows re-sort.
    """

    ids: tuple[int, ...]
    ids_array: np.ndarray
    k: int
    sig: np.ndarray
    taus: np.ndarray
    cand_pos: np.ndarray
    cand_ids: np.ndarray
    cand_bw: np.ndarray
    best_times: np.ndarray
    best_split: np.ndarray
    valid: np.ndarray
    scan_times: np.ndarray
    scan_pos: np.ndarray
    scan_cols: np.ndarray

    def blocks(self) -> BlockArrays:
        """The block arrays bundled for the shared reset/scatter helpers."""
        return BlockArrays(
            self.cand_pos,
            self.cand_ids,
            self.cand_bw,
            self.best_times,
            self.best_split,
            self.valid,
        )


class PrunedPlanner:
    """Top-k pruned, sparse-bandwidth, incrementally replanning scheduler core.

    Parameters
    ----------
    profile:
        Split profile of the architecture being trained.
    link_model:
        Source of adjacency and pairwise bandwidths.
    top_k:
        Candidate budget per slow agent.  ``k ≥ n − 1`` makes the planner
        decision-identical to the dense kernel.
    engage_threshold:
        Population size at or above which :meth:`engages` returns true;
        ``None`` engages at any size (the ``"pruned"`` mode).
    batch_size:
        Optional positive batch-size override (same semantics as the dense
        kernel; validated at this boundary).
    improvement_threshold:
        Minimum relative improvement over training alone required to pair.
    """

    def __init__(
        self,
        profile: SplitProfile,
        link_model: LinkModel,
        *,
        top_k: int = 32,
        engage_threshold: Optional[int] = None,
        batch_size: Optional[int] = None,
        improvement_threshold: float = 0.0,
        compaction_threshold: float = 0.25,
    ) -> None:
        check_positive(top_k, "top_k")
        if engage_threshold is not None:
            check_positive(engage_threshold, "engage_threshold")
        if batch_size is not None:
            check_positive(batch_size, "batch_size")
        check_positive(compaction_threshold, "compaction_threshold")
        self.profile = profile
        self.link_model = link_model
        self.top_k = top_k
        self.engage_threshold = engage_threshold
        self.batch_size = batch_size
        self.improvement_threshold = improvement_threshold
        self.compaction_threshold = compaction_threshold
        self.latency_seconds = link_model.latency_seconds
        self.stats = PlannerStats()
        self.state: Optional[PlannerState] = None
        self._pending_dirty: set[int] = set()
        self._pending_all = False
        #: Set when the CSR had to rebuild from the graph (journal lost) —
        #: every row must re-cost even though signatures were kept.
        self._pending_all_rows = False
        #: Incremental topology engine (built lazily on the first plan
        #: that takes the CSR path) and its cached participant translation.
        self._csr: Optional[IncrementalCsr] = None
        self._translation: Optional[CsrTranslation] = None
        #: (topology version, nodes, edges) — caches the complete-graph
        #: check when the CSR engine is not engaged.
        self._counts_cache: Optional[tuple[int, int, int]] = None
        #: (ids tuple, sorted ids, argsort order) — id → row lookup cache.
        self._ids_sort_cache: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Selection / invalidation API
    # ------------------------------------------------------------------
    def engages(self, population: int) -> bool:
        """Whether the pruned planner should plan a round of this size."""
        if self.engage_threshold is None:
            return True
        return population >= self.engage_threshold

    def invalidate(self, agent_ids: Sequence[int]) -> None:
        """Mark agents dirty (profile-level state changed).

        The planner also diffs per-agent signatures on every plan, so churn
        that changes a profile value is caught without this call.  Profile
        invalidation deliberately keeps the cached CSR topology structure —
        wiring changes go through :meth:`invalidate_topology` (driven by
        the topology's edge-delta journal) or :meth:`invalidate_all`.
        """
        self._pending_dirty.update(int(agent_id) for agent_id in agent_ids)

    def invalidate_topology(self, agent_ids: Sequence[int] = ()) -> None:
        """Mark a wiring change: agents arrived, departed, or rewired.

        The CSR structure is patched **eagerly** here with O(Δ) edits from
        the topology's edge-delta journal — off the plan's critical path,
        so dynamics invalidation overlaps the round gap instead of
        serialising into the next plan.  Rows of every affected agent (the
        explicit ids plus every endpoint the journal names) re-cost at the
        next plan.  Every plan also drains the journal itself
        (:meth:`_sync_topology`), so this call is an optimisation, not a
        correctness requirement, for mutations made through the
        :class:`~repro.network.topology.Topology` API.
        """
        self._pending_dirty.update(int(agent_id) for agent_id in agent_ids)
        self._sync_topology()

    def _sync_topology(self) -> None:
        """Drain the topology journal into the CSR (O(Δ) edits)."""
        if self._csr is None or not self._csr.built:
            return
        if self.link_model.topology.version == self._csr.cursor:
            return
        affected = self._csr.sync()
        if affected is None:
            self._pending_all_rows = True
        else:
            self._pending_dirty.update(affected)

    def invalidate_all(self) -> None:
        """Drop the entire cache (next plan is a full rebuild).

        Also the escape hatch for wiring changes made directly on the
        ``networkx`` graph, which bypass the topology journal.
        """
        self._pending_all = True
        self._csr = None
        self._translation = None
        self._counts_cache = None

    def close(self) -> None:
        """Release planner resources (no-op for the in-process planner).

        Exists so callers can treat every planner uniformly; the sharded
        subclass tears down its worker pool and shared-memory segments here.
        """

    def __enter__(self) -> "PrunedPlanner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(
        self, participants: Sequence[Agent]
    ) -> tuple[list[PairingDecision], dict[int, float]]:
        """Plan one round; returns (decisions, broadcast τ̂ list by id)."""
        agents = list(participants)
        n = len(agents)
        if n == 0:
            return [], {}
        with _gc_paused():
            return self._plan_body(agents, n)

    def _plan_body(
        self, agents: list[Agent], n: int
    ) -> tuple[list[PairingDecision], dict[int, float]]:
        """:meth:`plan` body, under the GC pause (see :func:`_gc_paused`)."""
        self._sync_topology()
        attrs = agent_attrs(agents)
        vectors = agent_vectors_from_attrs(attrs, self.profile, self.batch_size)
        taus = vectors.individual_times
        sig = attrs.signature_matrix()
        access = attrs.access_bandwidth()
        ids = tuple(agent.agent_id for agent in agents)
        ids_array = np.fromiter(ids, dtype=np.int64, count=n)
        k = min(self.top_k, max(n - 1, 0))

        state, dirty_rows = self._realign(agents, ids, ids_array, sig, taus, k)
        finish = self._begin_recompute(
            state, agents, vectors, access, ids_array, dirty_rows
        )
        # Parent-side work that needs no block results overlaps the
        # (possibly sharded) candidate evaluation window.
        taus_by_id = dict(zip(ids, taus.tolist()))
        # Stable argsort on -τ̂ = descending τ̂ with ties in first-seen
        # order, exactly like the dense scheduler's stable reverse sort.
        order = np.argsort(-taus, kind="stable")
        finish()
        self._refresh_scan_rows(state, dirty_rows)

        dirty_count = int(dirty_rows.size)
        self.stats.rounds += 1
        self.stats.last_rows_recomputed = dirty_count
        self.stats.last_rows_reused = n - dirty_count
        self.stats.rows_recomputed += dirty_count
        self.stats.rows_reused += n - dirty_count
        if dirty_count == n:
            self.stats.full_rebuilds += 1

        decisions = self._greedy_scan(state, ids, taus, order, vectors, agents)
        return decisions, taus_by_id

    # ------------------------------------------------------------------
    # Cache maintenance
    # ------------------------------------------------------------------
    def _realign(
        self,
        agents: list[Agent],
        ids: tuple[int, ...],
        ids_array: np.ndarray,
        sig: np.ndarray,
        taus: np.ndarray,
        k: int,
    ) -> tuple[PlannerState, np.ndarray]:
        """Carry the cache over to this round's participants; find dirty rows.

        Returns the (possibly in-place updated) state and the ascending
        dirty-row array.  When the participant tuple is unchanged the
        previous state's block arrays are reused **in place** — no copies
        — and the dirty set is found by a vectorized signature-matrix
        diff.  Membership changes take the remap path below.
        """
        n = len(agents)
        previous = self.state
        all_rows = self._pending_all or previous is None or previous.k != k
        if not all_rows and self._pending_all_rows:
            # CSR rebuilt from the graph (journal truncated): every row
            # re-costs, so a fresh state is equivalent and simpler.
            all_rows = True
        if all_rows:
            self._pending_all = False
            self._pending_all_rows = False
            self._pending_dirty.clear()
            state = _empty_state(ids, ids_array, k, sig, taus)
            self.state = state
            return state, np.arange(n, dtype=np.int64)

        # Map this round's pending-dirty ids to rows (ids in the round are
        # consumed; ids still in the topology stay pending; gone-for-good
        # ids are dropped so the set stays bounded).
        pending_rows = np.empty(0, dtype=np.int64)
        if self._pending_dirty:
            sorted_ids, sort_order = self._sorted_ids(ids, ids_array)
            pend = np.fromiter(
                self._pending_dirty, dtype=np.int64, count=len(self._pending_dirty)
            )
            pos = np.searchsorted(sorted_ids, pend)
            pos = np.minimum(pos, n - 1)
            found = sorted_ids[pos] == pend
            pending_rows = sort_order[pos[found]]
            graph = self.link_model.topology.graph
            self._pending_dirty = {
                int(agent_id)
                for agent_id in pend[~found].tolist()
                if graph.has_node(agent_id)
            }

        if ids == previous.ids:
            state = previous
            state.sig, old_sig = sig, state.sig
            state.taus = taus
            dirty_mask = (sig != old_sig).any(axis=1)
            if pending_rows.size:
                dirty_mask[pending_rows] = True
            if not dirty_mask.any():
                return state, np.empty(0, dtype=np.int64)
            dirty_mask = self._dirty_closure(
                state, ids_array, dirty_mask, np.empty(0, dtype=np.int64)
            )
            return state, np.nonzero(dirty_mask)[0]

        # Membership or order changed: pull retained rows over and remap
        # cached candidate (and scan) positions old → new.
        state = _empty_state(ids, ids_array, k, sig, taus)
        n_prev = len(previous.ids)
        prev_sorted = np.sort(previous.ids_array)
        prev_order = np.argsort(previous.ids_array, kind="stable")
        pos = np.minimum(np.searchsorted(prev_sorted, ids_array), n_prev - 1)
        retained = prev_sorted[pos] == ids_array
        old_rows = np.where(retained, prev_order[pos], -1)
        for name in ("cand_pos", "cand_ids", "cand_bw", "best_times",
                     "best_split", "valid", "scan_times", "scan_pos",
                     "scan_cols"):
            getattr(state, name)[retained] = getattr(previous, name)[
                old_rows[retained]
            ]
        new_pos_of_old = np.full(n_prev, -1, dtype=np.int64)
        new_pos_of_old[old_rows[retained]] = np.nonzero(retained)[0]
        for name in ("cand_pos", "scan_pos"):
            positions = getattr(state, name)
            remappable = positions >= 0
            positions[remappable] = new_pos_of_old[positions[remappable]]
        stale = (state.cand_pos < 0) & state.valid
        state.valid[stale] = False
        state.best_times[stale] = np.inf

        dirty_mask = ~retained
        if retained.any():
            kept = np.nonzero(retained)[0]
            changed = (sig[kept] != previous.sig[old_rows[kept]]).any(axis=1)
            dirty_mask[kept[changed]] = True
        if pending_rows.size:
            dirty_mask[pending_rows] = True
        departed_mask = np.ones(n_prev, dtype=bool)
        departed_mask[old_rows[retained]] = False
        departed = previous.ids_array[departed_mask]

        dirty_mask = self._dirty_closure(state, ids_array, dirty_mask, departed)
        self.state = state
        return state, np.nonzero(dirty_mask)[0]

    def _sorted_ids(
        self, ids: tuple[int, ...], ids_array: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Cached (sorted ids, argsort order) for id → row lookups."""
        cached = getattr(self, "_ids_sort_cache", None)
        if cached is not None and cached[0] == ids:
            return cached[1], cached[2]
        order = np.argsort(ids_array, kind="stable")
        sorted_ids = ids_array[order]
        self._ids_sort_cache = (ids, sorted_ids, order)
        return sorted_ids, order

    def _dirty_closure(
        self,
        state: PlannerState,
        ids_array: np.ndarray,
        dirty_mask: np.ndarray,
        departed: np.ndarray,
    ) -> np.ndarray:
        """Expand dirty rows to their full invalidation closure.

        A dirty agent invalidates its own row, its topology neighborhood
        (its τ̂ feeds their candidate selection), and any cached row still
        referencing it or a departed id (covers candidates that are no
        longer reachable).
        """
        dirty_rows = np.nonzero(dirty_mask)[0]
        if dirty_rows.size == 0 and departed.size == 0:
            return dirty_mask
        # The referencing check below keys on the *seed* dirty ids — the
        # agents whose own inputs changed.  Rows referencing a mere
        # neighbor of a dirty agent stay clean: the neighbor's τ̂ did not
        # move, so every cached pair time involving it is still exact.
        affected = ids_array[dirty_rows]
        if departed.size:
            affected = np.concatenate([affected, departed])

        # Neighbor expansion of current dirty rows: through the CSR when
        # the engine is live (vectorized), through the graph otherwise.
        if dirty_rows.size:
            csr = self._csr
            if csr is not None and csr.built:
                translation = self._participant_translation(state)
                _, neighbor_cols = csr.links_for(translation, dirty_rows)
                dirty_mask[neighbor_cols] = True
            else:
                graph = self.link_model.topology.graph
                row_lookup = self._row_lookup(state, ids_array)
                for agent_id in ids_array[dirty_rows].tolist():
                    if graph.has_node(agent_id):
                        for neighbor in graph.neighbors(agent_id):
                            row = row_lookup(neighbor)
                            if row is not None:
                                dirty_mask[row] = True
        if departed.size:
            graph = self.link_model.topology.graph
            row_lookup = self._row_lookup(state, ids_array)
            for agent_id in departed.tolist():
                if graph.has_node(agent_id):
                    for neighbor in graph.neighbors(agent_id):
                        row = row_lookup(neighbor)
                        if row is not None:
                            dirty_mask[row] = True

        # Rows still referencing a dirty or departed id in their cached
        # candidate lists (belt for invalidations the neighbor expansion
        # cannot see, e.g. a departed candidate two hops away).
        if affected.size and state.cand_ids.size:
            max_id = int(affected.max())
            if int(affected.min()) >= 0 and max_id <= 4 * len(ids_array) + 65_536:
                # Bool-table membership beats np.isin by ~4× at 500k rows;
                # ids outside [0, max_id] map to slot 0 (never marked).
                table = np.zeros(max_id + 2, dtype=bool)
                table[affected + 1] = True
                cand = state.cand_ids
                safe = np.where((cand >= 0) & (cand <= max_id), cand + 1, 0)
                referencing = table[safe].any(axis=1)
            else:
                referencing = np.isin(state.cand_ids, affected).any(axis=1)
            dirty_mask |= referencing
        return dirty_mask

    def _row_lookup(self, state: PlannerState, ids_array: np.ndarray):
        """O(1) agent-id → row lookup callable (``None`` when absent)."""
        sorted_ids, order = self._sorted_ids(state.ids, ids_array)
        n = len(ids_array)

        def lookup(agent_id: int) -> Optional[int]:
            pos = int(np.searchsorted(sorted_ids, agent_id))
            if pos < n and sorted_ids[pos] == agent_id:
                return int(order[pos])
            return None

        return lookup

    # ------------------------------------------------------------------
    # Candidate selection + pruned block costing
    # ------------------------------------------------------------------
    def _topology_counts(self) -> tuple[int, int]:
        """(nodes, edges) of the topology — O(1) in the steady state.

        Served by the CSR engine when it is live, else cached against the
        topology's journal version (mutations made directly on the
        ``networkx`` graph bypass both, which is why they require
        :meth:`invalidate_all`).
        """
        if self._csr is not None and self._csr.built:
            return self._csr.counts()
        version = self.link_model.topology.version
        cached = self._counts_cache
        if cached is not None and cached[0] == version:
            return cached[1], cached[2]
        graph = self.link_model.topology.graph
        nodes = graph.number_of_nodes()
        edges = graph.number_of_edges()
        self._counts_cache = (version, nodes, edges)
        return nodes, edges

    def _make_csr(self) -> IncrementalCsr:
        """Construct (and fully build) the incremental topology engine."""
        csr = IncrementalCsr(
            self.link_model.topology,
            compaction_threshold=self.compaction_threshold,
            stats=self.stats,
            builder=self._csr_builder(),
        )
        csr.rebuild()
        return csr

    def _csr_builder(self) -> Optional[Callable]:
        """Base-structure build callback (the sharded subclass parallelises)."""
        return None

    def _participant_translation(self, state: PlannerState) -> CsrTranslation:
        """Cached slot ↔ position translation for the current participants."""
        csr = self._csr
        translation = self._translation
        if (
            csr.translation_current(translation)
            and translation.ids == state.ids
        ):
            return translation
        translation = csr.translation(state.ids)
        self._translation = translation
        return translation

    def _candidate_rows(
        self,
        state: PlannerState,
        agents: list[Agent],
        access: np.ndarray,
        rows: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Top-k fastest reachable peers of the given (ascending) rows.

        Returns flat ``(rows, candidate positions, bandwidths)`` arrays
        grouped by ascending row with ascending candidate positions inside
        each group — the order the dense kernel's first-minimum argmin
        tie-breaking relies on.
        """
        taus = state.taus
        k = state.k
        default_links = _uses_default_links(self.link_model)

        node_count, edge_count = self._topology_counts()
        if (
            default_links
            and node_count >= 2
            and edge_count == node_count * (node_count - 1) // 2
        ):
            # Complete graph: a neighbor structure would be O(n²); use the
            # shared global top-(k+1) pool instead (never builds the CSR).
            return _complete_graph_candidates(taus, access, rows, k)

        if default_links:
            if self._csr is None:
                self._csr = self._make_csr()
                self._translation = None
            translation = self._participant_translation(state)
            sel_rows, sel_cols = self._csr.links_for(
                translation, None if rows.size == len(agents) else rows
            )
            bandwidth = np.minimum(access[sel_rows], access[sel_cols])
        else:
            # Custom link-model semantics: query per ordered pair, but only
            # for the dirty rows' neighborhoods.
            graph = self.link_model.topology.graph
            row_of = {agent.agent_id: row for row, agent in enumerate(agents)}
            flat_rows: list[int] = []
            flat_cols: list[int] = []
            flat_bw: list[float] = []
            for row in rows.tolist():
                agent = agents[row]
                if not graph.has_node(agent.agent_id):
                    continue
                for neighbor in graph.neighbors(agent.agent_id):
                    col = row_of.get(neighbor)
                    if col is None:
                        continue
                    value = self.link_model.bandwidth(agent, agents[col])
                    if value > 0.0:
                        flat_rows.append(row)
                        flat_cols.append(col)
                        flat_bw.append(value)
            sel_rows = np.asarray(flat_rows, dtype=np.int64)
            sel_cols = np.asarray(flat_cols, dtype=np.int64)
            bandwidth = np.asarray(flat_bw, dtype=np.float64)
            if sel_rows.size:
                # graph.neighbors order is arbitrary; restore (row, col).
                order = np.lexsort((sel_cols, sel_rows))
                sel_rows = sel_rows[order]
                sel_cols = sel_cols[order]
                bandwidth = bandwidth[order]

        return _top_k_by_tau(sel_rows, sel_cols, bandwidth, taus, len(agents), k)

    def _begin_recompute(
        self,
        state: PlannerState,
        agents: list[Agent],
        vectors: AgentVectors,
        access: np.ndarray,
        ids_array: np.ndarray,
        rows: np.ndarray,
    ) -> Callable[[], None]:
        """Start re-costing the dirty rows; the returned callable completes it.

        The in-process planner computes synchronously and returns a no-op;
        the sharded subclass dispatches to its worker pool here and blocks
        on the replies only inside the returned ``finish`` — the window in
        between overlaps parent-side work with candidate evaluation.
        """
        self._recompute_rows(state, agents, vectors, access, ids_array, rows)
        return _noop_finish

    def _recompute_rows(
        self,
        state: PlannerState,
        agents: list[Agent],
        vectors: AgentVectors,
        access: np.ndarray,
        ids_array: np.ndarray,
        rows: np.ndarray,
    ) -> None:
        """Re-cost the pruned (slow × k × split) blocks of the given rows."""
        if rows.size == 0:
            self.stats.last_pairs_evaluated = 0
            return
        rows_flat, cols_flat, bw_flat = self._candidate_rows(
            state, agents, access, rows
        )
        blocks = state.blocks()
        _reset_rows(blocks, rows)

        total = int(rows_flat.size)
        self.stats.last_pairs_evaluated = total * self.profile.num_options
        self.stats.pairs_evaluated += self.stats.last_pairs_evaluated
        if total == 0:
            return
        best_time, best_index = _pair_block_times(
            self.profile, vectors, rows_flat, cols_flat, bw_flat,
            self.latency_seconds,
        )
        _scatter_rows(
            blocks, rows_flat, cols_flat, bw_flat, best_time, best_index,
            ids_array, self.profile.options_array, len(agents),
        )

    def _refresh_scan_rows(self, state: PlannerState, rows: np.ndarray) -> None:
        """Re-sort the greedy scan arrays of the recomputed rows only."""
        if rows.size == 0 or state.k == 0:
            return
        if rows.size == len(state.ids):
            times = np.where(state.valid, state.best_times, np.inf)
            order = np.argsort(times, axis=1, kind="stable")
            sorted_times = np.take_along_axis(times, order, axis=1)
            positions = np.take_along_axis(state.cand_pos, order, axis=1)
            positions[~np.isfinite(sorted_times)] = -1
            state.scan_times[...] = sorted_times
            state.scan_cols[...] = order
            state.scan_pos[...] = positions
            return
        times = np.where(state.valid[rows], state.best_times[rows], np.inf)
        order = np.argsort(times, axis=1, kind="stable")
        sorted_times = np.take_along_axis(times, order, axis=1)
        positions = np.take_along_axis(state.cand_pos[rows], order, axis=1)
        positions[~np.isfinite(sorted_times)] = -1
        state.scan_times[rows] = sorted_times
        state.scan_cols[rows] = order
        state.scan_pos[rows] = positions

    # ------------------------------------------------------------------
    # Greedy scan (Algorithm 1's Pairing over the pruned blocks)
    # ------------------------------------------------------------------
    def _greedy_scan(
        self,
        state: PlannerState,
        ids: tuple[int, ...],
        taus: np.ndarray,
        order: np.ndarray,
        vectors: AgentVectors,
        agents: list[Agent],
    ) -> list[PairingDecision]:
        """Algorithm 1's greedy pairing over the pruned candidate blocks.

        Walks the precomputed per-row scan order (``scan_*`` arrays, kept
        incrementally by :meth:`_refresh_scan_rows`): each row's candidates
        ascending by (pair time, candidate column), so the first alive
        candidate *is* the row's first minimum — the dense tie-break.  The
        vast majority of rows resolve at scan column 0 (their fastest
        candidate is still alive), so the loop touches three precomputed
        column-0 lists and falls back to the full row walk only when the
        fastest candidate was already claimed.  The chosen pairs'
        :class:`~repro.core.workload.OffloadEstimate`s are then built in
        one vectorized batch mirroring the scalar oracle.
        """
        n = len(ids)
        k = state.k
        taus_list = taus.tolist()
        infinity = float("inf")
        if k:
            first_pos = state.scan_pos[:, 0].tolist()
            first_time = state.scan_times[:, 0].tolist()
            first_col = state.scan_cols[:, 0].tolist()
        else:
            first_pos = [-1] * n
            first_time = [infinity] * n
            first_col = [0] * n
        scan_pos = state.scan_pos
        scan_times = state.scan_times
        scan_cols = state.scan_cols
        alive = [True] * n
        improvement = 1.0 - self.improvement_threshold
        decisions: list[Optional[PairingDecision]] = []
        chosen_slow: list[int] = []
        chosen_col: list[int] = []
        chosen_fast: list[int] = []

        for i in order.tolist():
            if not alive[i]:
                continue
            own_time = taus_list[i]
            best_time = infinity
            best_column = -1
            j = first_pos[i]
            if j >= 0:
                if alive[j]:
                    best_time = first_time[i]
                    best_column = first_col[i]
                else:
                    # Fastest candidate already claimed: walk the rest of
                    # the row's scan order (rare, so the per-row tolist is
                    # cheaper than materialising all rows up front).
                    pos_row = scan_pos[i].tolist()
                    time_row = scan_times[i].tolist()
                    for column in range(1, k):
                        j = pos_row[column]
                        if j < 0:
                            break
                        if alive[j]:
                            best_time = time_row[column]
                            best_column = int(scan_cols[i, column])
                            break
            if best_time < own_time * improvement:
                decisions.append(None)
                chosen_slow.append(i)
                chosen_col.append(best_column)
                chosen_fast.append(j)
                alive[i] = False
                alive[j] = False
            else:
                decisions.append(_fast_solo_decision(ids[i], own_time))
                alive[i] = False

        if chosen_slow:
            pair_decisions = iter(
                self._pair_decisions(
                    state, agents, vectors, taus, chosen_slow, chosen_col, chosen_fast
                )
            )
            for index, decision in enumerate(decisions):
                if decision is None:
                    decisions[index] = next(pair_decisions)
        return decisions

    def _pair_decisions(
        self,
        state: PlannerState,
        agents: list[Agent],
        vectors: AgentVectors,
        taus: np.ndarray,
        slow: list[int],
        columns: list[int],
        fast: list[int],
    ) -> list[PairingDecision]:
        """Vectorized :func:`~repro.core.workload.estimate_offload_time`.

        Computes every float with the scalar oracle's exact operation
        order (same IEEE-754 results element for element), batched over
        the round's formed pairs instead of one oracle call per pair.
        Chosen splits always offload (> 0 layers), so only the oracle's
        offloading branch is mirrored.
        """
        profile = self.profile
        slow_idx = np.asarray(slow, dtype=np.int64)
        col_idx = np.asarray(columns, dtype=np.int64)
        fast_idx = np.asarray(fast, dtype=np.int64)
        split_idx = state.best_split[slow_idx, col_idx]
        layers = profile.options_array[split_idx]
        bandwidth = state.cand_bw[slow_idx, col_idx]
        busy = taus[fast_idx]

        slow_batches = vectors.batches[slow_idx]
        slow_speed = vectors.slow_speed[slow_idx]
        fast_speed = vectors.throughput[fast_idx] / vectors.flops[slow_idx]
        slow_factor = profile.slow_time_array[split_idx]
        fast_factor = profile.fast_time_array[split_idx]
        with np.errstate(divide="ignore", invalid="ignore"):
            slow_time = np.where(
                slow_factor > 0, slow_batches * slow_factor / slow_speed, 0.0
            )
            fast_offload = np.where(
                fast_factor > 0, slow_batches * fast_factor / fast_speed, 0.0
            )
            intermediate_bytes = (
                profile.intermediate_bytes_array[split_idx]
                * vectors.batch_sizes[slow_idx]
            )
            communication = slow_batches * (
                self.latency_seconds + intermediate_bytes / bandwidth
            ) + (2.0 * profile.offloaded_bytes_array[split_idx]) / bandwidth
            fast_chain = busy + communication + fast_offload
            pair_time = np.maximum(slow_time, fast_chain)

        # tolist() once: Python-float lists index an order of magnitude
        # faster than element-wise numpy access in the build loop below.
        return [
            _fast_pair_decision(
                agents[i].agent_id, agents[j].agent_id, m, st, own, comm, fo, pt
            )
            for i, j, m, st, own, comm, fo, pt in zip(
                slow,
                fast,
                layers.tolist(),
                slow_time.tolist(),
                busy.tolist(),
                communication.tolist(),
                fast_offload.tolist(),
                pair_time.tolist(),
            )
        ]


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------

def _noop_finish() -> None:
    """Finish callable of a synchronously completed recompute."""


def _empty_state(
    ids: tuple[int, ...],
    ids_array: np.ndarray,
    k: int,
    sig: np.ndarray,
    taus: np.ndarray,
) -> PlannerState:
    n = len(ids)
    return PlannerState(
        ids=ids,
        ids_array=ids_array,
        k=k,
        sig=sig,
        taus=taus,
        cand_pos=np.full((n, k), -1, dtype=np.int64),
        cand_ids=np.full((n, k), -1, dtype=np.int64),
        cand_bw=np.zeros((n, k), dtype=np.float64),
        best_times=np.full((n, k), np.inf),
        best_split=np.full((n, k), -1, dtype=np.int64),
        valid=np.zeros((n, k), dtype=bool),
        scan_times=np.full((n, k), np.inf),
        scan_pos=np.full((n, k), -1, dtype=np.int64),
        scan_cols=np.zeros((n, k), dtype=np.int64),
    )


def _top_k_by_tau(
    sel_rows: np.ndarray,
    sel_cols: np.ndarray,
    bandwidth: np.ndarray,
    taus: np.ndarray,
    n: int,
    k: int,
    tau_rank: Optional[np.ndarray] = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Drop unusable links, then keep each row's ``k`` fastest candidates.

    ``tau_rank`` may be passed precomputed (the sharded runtime computes it
    once in the parent and ships it through shared memory); when omitted it
    is derived lazily, and both derivations are the same deterministic
    stable argsort of ``taus`` — so the selection is identical either way.
    """
    usable = bandwidth > 0.0
    if not usable.all():
        sel_rows = sel_rows[usable]
        sel_cols = sel_cols[usable]
        bandwidth = bandwidth[usable]
    if sel_rows.size == 0:
        return sel_rows, sel_cols, bandwidth

    counts = np.bincount(sel_rows, minlength=n)
    if counts.max() > k:
        # Rank each row's links by candidate τ̂, keeping the k fastest.
        # Sorting by the packed unique key ``row·n + tau_rank[col]``
        # equals a stable lexsort on (row, τ̂): tau_rank orders equal
        # τ̂ values by ascending position, the dense tie-break order.
        if tau_rank is None:
            tau_rank = tau_rank_of(taus)
        order = np.argsort(sel_rows * np.int64(n) + tau_rank[sel_cols])
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        ranks = np.arange(sel_rows.size) - starts[sel_rows[order]]
        kept = order[ranks < k]
        # The pre-selection arrays were (row, col)-ascending, so sorting
        # the kept indices restores that order without a second lexsort.
        kept.sort()
        sel_rows = sel_rows[kept]
        sel_cols = sel_cols[kept]
        bandwidth = bandwidth[kept]
    return sel_rows, sel_cols, bandwidth


def tau_rank_of(taus: np.ndarray) -> np.ndarray:
    """Rank of each agent's τ̂ (stable: equal τ̂ rank by ascending position)."""
    tau_rank = np.empty(len(taus), dtype=np.int64)
    tau_rank[np.argsort(taus, kind="stable")] = np.arange(len(taus))
    return tau_rank


def _reset_rows(blocks: BlockArrays, rows_array: np.ndarray) -> None:
    """Reset the given rows to candidate-block padding."""
    blocks.cand_pos[rows_array] = -1
    blocks.cand_ids[rows_array] = -1
    blocks.cand_bw[rows_array] = 0.0
    blocks.best_times[rows_array] = np.inf
    blocks.best_split[rows_array] = -1
    blocks.valid[rows_array] = False


def _scatter_rows(
    blocks: BlockArrays,
    rows_flat: np.ndarray,
    cols_flat: np.ndarray,
    bw_flat: np.ndarray,
    best_time: np.ndarray,
    best_index: np.ndarray,
    ids_array: np.ndarray,
    options_array: np.ndarray,
    n: int,
) -> None:
    """Scatter flat per-pair results into the ``(n, k)`` block arrays.

    ``rows_flat`` must be grouped by ascending row (the selection helpers
    guarantee it); each entry lands at its offset within its row group.
    """
    total = int(rows_flat.size)
    # Column offset of each entry within its row group.
    counts = np.bincount(rows_flat, minlength=n)
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    offsets = np.arange(total) - starts[rows_flat]
    valid_flat = options_array[np.maximum(best_index, 0)] > 0
    blocks.cand_pos[rows_flat, offsets] = cols_flat
    blocks.cand_ids[rows_flat, offsets] = ids_array[cols_flat]
    blocks.cand_bw[rows_flat, offsets] = bw_flat
    blocks.best_times[rows_flat, offsets] = best_time
    blocks.best_split[rows_flat, offsets] = best_index
    blocks.valid[rows_flat, offsets] = valid_flat


def _complete_graph_candidates(
    taus: np.ndarray, access: np.ndarray, rows: list[int], k: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Candidate selection on a complete graph without materialising O(n²).

    Every connected agent can reach every other, so the per-row top-k
    reduces to one shared global pool: the k+1 connected agents with the
    smallest τ̂ (one extra so each row can drop itself).  Rows outside the
    pool share the same k candidates (vectorized broadcast); the at most
    k+1 pool members each drop themselves (tiny Python loop).
    """
    empty = (
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.int64),
        np.empty(0),
    )
    pool = np.nonzero(access > 0.0)[0]
    if pool.size == 0:
        return empty
    if pool.size > k + 1:
        keep = np.argpartition(taus[pool], k)[: k + 1]
        pool = pool[keep]
    pool = np.sort(pool)
    rows_array = np.asarray(rows, dtype=np.int64)
    connected = access[rows_array] > 0.0
    slot = np.searchsorted(pool, rows_array)
    in_pool = (slot < pool.size) & (pool[np.minimum(slot, pool.size - 1)] == rows_array)

    shared = pool[: min(k, pool.size)]
    outside = rows_array[connected & ~in_pool]
    rows_flat = np.repeat(outside, shared.size)
    cols_flat = np.tile(shared, outside.size)

    member_rows = rows_array[connected & in_pool]
    if member_rows.size:
        member_cols = [pool[pool != row][:k] for row in member_rows]
        rows_flat = np.concatenate(
            [rows_flat]
            + [
                np.full(len(cols), row, dtype=np.int64)
                for row, cols in zip(member_rows, member_cols)
            ]
        )
        cols_flat = np.concatenate([cols_flat] + member_cols)
    if rows_flat.size == 0:
        return empty
    order = np.lexsort((cols_flat, rows_flat))
    rows_flat = rows_flat[order]
    cols_flat = cols_flat[order]
    return rows_flat, cols_flat, np.minimum(access[rows_flat], access[cols_flat])


def _pair_block_times(
    profile: SplitProfile,
    vectors: AgentVectors,
    rows: np.ndarray,
    cols: np.ndarray,
    bandwidths: np.ndarray,
    latency_seconds: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Best split time/index for each (slow=rows[p], fast=cols[p]) pair.

    Mirrors :class:`~repro.core.fastpath.PairCostModel`'s elementwise
    expressions exactly (same per-agent vectors, same operation order,
    strict-``<`` first-minimum split reduction), evaluated only on the
    pruned pair list instead of the full n × n slice — bit-identical
    times wherever both compute a pair.
    """
    batches = vectors.batches
    busy = vectors.individual_times[cols]
    fast_speed = vectors.throughput[cols] / vectors.flops[rows]
    total = len(rows)
    best_time = np.full(total, np.inf)
    best_index = np.full(total, -1, dtype=np.int64)
    slow_factors = profile.slow_time_array
    fast_factors = profile.fast_time_array
    intermediate = profile.intermediate_bytes_array
    offloaded = profile.offloaded_bytes_array
    with np.errstate(divide="ignore", invalid="ignore"):
        for index, option in enumerate(profile.offload_options):
            if option == 0:
                pair_time = np.maximum(vectors.solo_times[rows], busy)
            else:
                slow_factor = slow_factors[index]
                fast_factor = fast_factors[index]
                slow_time = (
                    batches * slow_factor / vectors.slow_speed
                    if slow_factor > 0
                    else np.zeros(len(batches))
                )
                fast_offload = (
                    (batches * fast_factor)[rows] / fast_speed
                    if fast_factor > 0
                    else np.zeros(total)
                )
                intermediate_bytes = (intermediate[index] * vectors.batch_sizes)[rows]
                communication = batches[rows] * (
                    latency_seconds + intermediate_bytes / bandwidths
                ) + (2.0 * offloaded[index]) / bandwidths
                fast_chain = (busy + communication) + fast_offload
                pair_time = np.maximum(slow_time[rows], fast_chain)
            better = pair_time < best_time
            best_time[better] = pair_time[better]
            best_index[better] = index
    return best_time, best_index


# ----------------------------------------------------------------------
# Config-driven selection
# ----------------------------------------------------------------------

def build_planner(
    profile: SplitProfile,
    link_model: LinkModel,
    *,
    mode: str = "auto",
    top_k: int = 32,
    threshold: int = 256,
    batch_size: Optional[int] = None,
    improvement_threshold: float = 0.0,
    shards="auto",
    balance: str = "cost",
    compaction_threshold: float = 0.25,
) -> Optional[PrunedPlanner]:
    """Planner selection at the config boundary.

    ``"dense"`` returns ``None`` (the scheduler keeps the exact dense
    kernel for every round), ``"pruned"`` always engages the pruned
    planner, ``"auto"`` engages it only for rounds with at least
    ``threshold`` participants — small populations stay byte-identical to
    the dense path — and ``"sharded"`` engages the process-parallel
    :class:`~repro.core.shard.ShardedPlanner` at the same threshold
    (``shards`` sets its worker count, ``balance`` its shard-boundary
    policy; its pool additionally waits for the population to clear the
    sharding floor, below which it plans exactly like ``"pruned"``).
    ``compaction_threshold`` tunes the CSR engine's delta/tombstone
    fold-back point on every planner tier.
    """
    mode = normalize_planner_mode(mode)
    if mode == "dense":
        return None
    if mode == "sharded":
        from repro.core.shard import ShardedPlanner

        return ShardedPlanner(
            profile,
            link_model,
            top_k=top_k,
            engage_threshold=threshold,
            batch_size=batch_size,
            improvement_threshold=improvement_threshold,
            shards=shards,
            balance=balance,
            compaction_threshold=compaction_threshold,
        )
    return PrunedPlanner(
        profile,
        link_model,
        top_k=top_k,
        engage_threshold=None if mode == "pruned" else threshold,
        batch_size=batch_size,
        improvement_threshold=improvement_threshold,
        compaction_threshold=compaction_threshold,
    )
