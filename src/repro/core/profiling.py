"""Split-model profiling.

"To facilitate the decentralized agent pairing, each agent locally conducts
split model profiling prior to the training process.  The split model
profiling calculates the relative training time ... and intermediate data
size for each split model m."  (Section IV-B of the paper.)

:func:`profile_architecture` turns an
:class:`~repro.models.spec.ArchitectureSpec` into a :class:`SplitProfile`
holding, for every candidate offload index ``m``:

* ``T_s(m)`` — relative training time of the slow agent-side (slow-side
  training FLOPs, including the auxiliary head, divided by full-model
  training FLOPs);
* ``T_f(m)`` — relative training time of the fast agent-side;
* ``ν_m``    — intermediate data bytes shipped per **sample**;
* the byte size of the offloaded sub-model (shipped once when a pair forms).

Because the profile is computed from per-layer costs with a single batch
of reference work, it is exactly the "lightweight, low-overhead local split
model profiling" the paper describes — no training run is needed.

Two performance features live here:

* every per-split quantity is also exposed as a read-only, contiguous
  NumPy array (``slow_time_array``, ``fast_time_array``,
  ``intermediate_bytes_array``, ``offloaded_bytes_array``,
  ``options_array``), computed once per profile, so the vectorized
  round-planning kernel (:mod:`repro.core.fastpath`) can broadcast over
  splits without per-call conversion;
* :func:`profile_architecture` is memoized on the *value* of
  ``(spec, offload_options, granularity)`` — harnesses and campaigns
  re-profile the same architecture every cell/round, and profiles are
  immutable, so repeated profiling is free.  Tests that need a cold cache
  call ``profile_architecture.cache_clear()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Optional, Sequence

import numpy as np

from repro.models.spec import ArchitectureSpec, TRAIN_FLOPS_MULTIPLIER
from repro.utils.validation import check_positive


def _readonly_array(values: Sequence[float], dtype=np.float64) -> np.ndarray:
    """Contiguous, locked array view of a per-split tuple."""
    array = np.ascontiguousarray(values, dtype=dtype)
    array.setflags(write=False)
    return array


@dataclass(frozen=True)
class SplitProfile:
    """Profiling results for one architecture.

    All arrays are indexed by position in ``offload_options`` (not by the
    raw offload value); use :meth:`index_of` / the lookup helpers to query by
    offload value.
    """

    architecture: str
    offload_options: tuple[int, ...]
    relative_slow_time: tuple[float, ...]
    relative_fast_time: tuple[float, ...]
    intermediate_bytes_per_sample: tuple[float, ...]
    offloaded_model_bytes: tuple[float, ...]
    full_model_bytes: float
    full_train_flops_per_sample: float

    def __post_init__(self) -> None:
        lengths = {
            len(self.offload_options),
            len(self.relative_slow_time),
            len(self.relative_fast_time),
            len(self.intermediate_bytes_per_sample),
            len(self.offloaded_model_bytes),
        }
        if len(lengths) != 1:
            raise ValueError("profile arrays must all have the same length")
        if not self.offload_options:
            raise ValueError("profile needs at least one offload option")
        check_positive(self.full_model_bytes, "full_model_bytes")
        check_positive(self.full_train_flops_per_sample, "full_train_flops_per_sample")

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def index_of(self, offloaded_layers: int) -> int:
        """Position of an offload value in the option list."""
        try:
            return self.offload_options.index(offloaded_layers)
        except ValueError:
            raise KeyError(
                f"offload value {offloaded_layers} is not among the profiled "
                f"options {self.offload_options}"
            ) from None

    def slow_time_factor(self, offloaded_layers: int) -> float:
        """The paper's ``T_s(m)``."""
        return self.relative_slow_time[self.index_of(offloaded_layers)]

    def fast_time_factor(self, offloaded_layers: int) -> float:
        """The paper's ``T_f(m)``."""
        return self.relative_fast_time[self.index_of(offloaded_layers)]

    def intermediate_bytes(self, offloaded_layers: int) -> float:
        """Per-sample intermediate data bytes ``ν_m`` for this split."""
        return self.intermediate_bytes_per_sample[self.index_of(offloaded_layers)]

    def offloaded_bytes(self, offloaded_layers: int) -> float:
        """Bytes of the offloaded sub-model (one-time transfer when pairing)."""
        return self.offloaded_model_bytes[self.index_of(offloaded_layers)]

    @property
    def num_options(self) -> int:
        """Number of candidate split models ``M``."""
        return len(self.offload_options)

    # ------------------------------------------------------------------
    # Vector views (computed once, shared by the fastpath kernel)
    # ------------------------------------------------------------------
    @cached_property
    def options_array(self) -> np.ndarray:
        """Offload candidates ``m`` as an integer array."""
        return _readonly_array(self.offload_options, dtype=np.int64)

    @cached_property
    def slow_time_array(self) -> np.ndarray:
        """``T_s(m)`` for every candidate split, aligned with ``offload_options``."""
        return _readonly_array(self.relative_slow_time)

    @cached_property
    def fast_time_array(self) -> np.ndarray:
        """``T_f(m)`` for every candidate split."""
        return _readonly_array(self.relative_fast_time)

    @cached_property
    def intermediate_bytes_array(self) -> np.ndarray:
        """Per-sample intermediate bytes ``ν_m`` for every candidate split."""
        return _readonly_array(self.intermediate_bytes_per_sample)

    @cached_property
    def offloaded_bytes_array(self) -> np.ndarray:
        """Offloaded sub-model bytes for every candidate split."""
        return _readonly_array(self.offloaded_model_bytes)


#: Memoized profiles keyed by (spec value, explicit options, granularity).
_PROFILE_CACHE: dict[tuple, SplitProfile] = {}


def profile_architecture(
    spec: ArchitectureSpec,
    offload_options: Sequence[int] | None = None,
    granularity: int = 1,
) -> SplitProfile:
    """Profile an architecture for the given candidate offload indices.

    When ``offload_options`` is omitted, candidates are generated every
    ``granularity`` layers (plus the no-offload option 0).

    Results are memoized: specs are immutable value objects, so profiling
    the same architecture at the same granularity (as every round of every
    campaign cell does) returns the cached :class:`SplitProfile`.
    """
    key: Optional[tuple] = (
        spec,
        None if offload_options is None else tuple(offload_options),
        granularity,
    )
    try:
        return _PROFILE_CACHE[key]
    except KeyError:
        pass
    except TypeError:  # unhashable custom option sequence — profile uncached
        key = None
    profile = _profile_architecture_uncached(spec, offload_options, granularity)
    if key is not None:
        _PROFILE_CACHE[key] = profile
    return profile


def _profile_cache_clear() -> None:
    """Forget memoized profiles (tests that count profiling work need this)."""
    _PROFILE_CACHE.clear()


profile_architecture.cache_clear = _profile_cache_clear  # type: ignore[attr-defined]


def _profile_architecture_uncached(
    spec: ArchitectureSpec,
    offload_options: Sequence[int] | None = None,
    granularity: int = 1,
) -> SplitProfile:
    if offload_options is None:
        options = spec.offload_options(granularity)
    else:
        options = sorted({spec.validate_offload(m) for m in offload_options})
        if not options:
            raise ValueError("offload_options must not be empty")
        if 0 not in options:
            options = [0] + options

    full_train_flops = spec.total_train_flops
    slow_factors: list[float] = []
    fast_factors: list[float] = []
    intermediate: list[float] = []
    offloaded_bytes: list[float] = []

    for option in options:
        slow_flops = (
            spec.slow_side_forward_flops(option)
            + spec.auxiliary_head_forward_flops(option)
        ) * TRAIN_FLOPS_MULTIPLIER
        fast_flops = spec.fast_side_forward_flops(option) * TRAIN_FLOPS_MULTIPLIER
        slow_factors.append(slow_flops / full_train_flops)
        fast_factors.append(fast_flops / full_train_flops)
        intermediate.append(spec.intermediate_bytes(option))
        offloaded_bytes.append(spec.fast_side_parameter_bytes(option))

    return SplitProfile(
        architecture=spec.name,
        offload_options=tuple(options),
        relative_slow_time=tuple(slow_factors),
        relative_fast_time=tuple(fast_factors),
        intermediate_bytes_per_sample=tuple(intermediate),
        offloaded_model_bytes=tuple(offloaded_bytes),
        full_model_bytes=spec.model_bytes,
        full_train_flops_per_sample=spec.total_train_flops,
    )
