"""Decentralized pairing scheduler.

Thin stateful wrapper around :func:`~repro.core.pairing.greedy_pairing` that
maintains the shared list of individual training times across rounds (the
paper's list ``A``), applies per-round participation sampling, and records
scheduling statistics for diagnostics/ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.agents.agent import Agent
from repro.agents.registry import AgentRegistry
from repro.core.fastpath import PairCostModel
from repro.core.pairing import PairingDecision, greedy_pairing, pairing_makespan
from repro.core.planner import PrunedPlanner
from repro.core.profiling import SplitProfile
from repro.core.workload import individual_training_time
from repro.network.link import LinkModel
from repro.utils.validation import check_probability


@dataclass
class SchedulerStats:
    """Aggregate statistics over the rounds a scheduler has served.

    Makespans are folded into running sums (O(1) memory) so million-round
    runs do not accumulate an ever-growing list.  Besides the mean, the
    running sum of squares supports the dispersion measures
    (:attr:`makespan_std`, :attr:`makespan_cv`) the adaptive semi-sync
    quorum policy uses to detect that observed makespans have stabilised
    (see :mod:`repro.runtime.quorum`).
    """

    rounds: int = 0
    total_pairs: int = 0
    total_solo: int = 0
    makespan_count: int = 0
    makespan_sum: float = 0.0
    makespan_sq_sum: float = 0.0

    def record_makespan(self, makespan: float) -> None:
        """Fold one round's makespan into the running mean/variance."""
        self.makespan_count += 1
        self.makespan_sum += makespan
        self.makespan_sq_sum += makespan * makespan

    @property
    def average_pairs_per_round(self) -> float:
        """Mean number of offloading pairs formed per round."""
        return self.total_pairs / self.rounds if self.rounds else 0.0

    @property
    def average_makespan(self) -> float:
        """Mean estimated local-phase makespan per round."""
        return self.makespan_sum / self.makespan_count if self.makespan_count else 0.0

    @property
    def makespan_variance(self) -> float:
        """Population variance of the recorded makespans (0 with no history)."""
        if self.makespan_count == 0:
            return 0.0
        mean = self.average_makespan
        return max(0.0, self.makespan_sq_sum / self.makespan_count - mean * mean)

    @property
    def makespan_std(self) -> float:
        """Population standard deviation of the recorded makespans."""
        return self.makespan_variance**0.5

    @property
    def makespan_cv(self) -> float:
        """Coefficient of variation (std / mean); 0 with no or degenerate history."""
        mean = self.average_makespan
        if self.makespan_count == 0 or mean <= 0:
            return 0.0
        return self.makespan_std / mean


class DecentralizedPairingScheduler:
    """Produces a pairing plan for each training round."""

    def __init__(
        self,
        registry: AgentRegistry,
        link_model: LinkModel,
        profile: SplitProfile,
        participation_fraction: float = 1.0,
        improvement_threshold: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        planner: Optional[PrunedPlanner] = None,
    ) -> None:
        check_probability(participation_fraction, "participation_fraction")
        self.registry = registry
        self.link_model = link_model
        self.profile = profile
        self.participation_fraction = participation_fraction
        self.improvement_threshold = improvement_threshold
        #: Optional scalable planner (see :mod:`repro.core.planner`).  When
        #: set and engaged for a round's population, it replaces the dense
        #: kernel; otherwise the exact dense path below runs unchanged.
        self.planner = planner
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.stats = SchedulerStats()
        #: The shared list of individual training times (agent id -> τ̂),
        #: refreshed every round from broadcast speeds and dataset sizes.
        self.shared_training_times: dict[int, float] = {}

    def select_participants(self) -> list[Agent]:
        """Sample this round's participants (all agents when fraction is 1)."""
        if self.participation_fraction >= 1.0:
            return self.registry.agents
        return self.registry.sample_participants(self.participation_fraction, self._rng)

    def refresh_shared_times(self, participants: Sequence[Agent]) -> dict[int, float]:
        """Recompute the shared training-time list from broadcast information."""
        self.shared_training_times = {
            agent.agent_id: individual_training_time(
                agent, self.profile, agent.batch_size
            )
            for agent in participants
        }
        return self.shared_training_times

    def plan_round(
        self, participants: Optional[Sequence[Agent]] = None
    ) -> list[PairingDecision]:
        """Produce the pairing decisions for one round.

        One :class:`~repro.core.fastpath.PairCostModel` evaluation per
        round supplies both the broadcast τ̂ list (step 2 of Algorithm 1)
        and the pair-time tensor the greedy scan reduces over.  When a
        :class:`~repro.core.planner.PrunedPlanner` is attached and engages
        for this population, it plans the round instead (top-k pruned
        blocks, incremental across rounds); otherwise the dense path runs
        exactly as before.
        """
        if participants is None:
            participants = self.select_participants()
        if self.planner is not None and self.planner.engages(len(participants)):
            decisions, self.shared_training_times = self.planner.plan(participants)
        else:
            cost_model = PairCostModel(
                participants, self.profile, link_model=self.link_model
            )
            self.shared_training_times = cost_model.individual_times_by_id()
            decisions = greedy_pairing(
                participants=participants,
                link_model=self.link_model,
                profile=self.profile,
                improvement_threshold=self.improvement_threshold,
                cost_model=cost_model,
            )
        self.stats.rounds += 1
        self.stats.total_pairs += sum(1 for d in decisions if d.is_offloading)
        self.stats.total_solo += sum(1 for d in decisions if not d.is_offloading)
        self.stats.record_makespan(pairing_makespan(decisions))
        return decisions
