"""Sharded planning runtime: shared-memory state + process-parallel blocks.

:class:`~repro.core.planner.PrunedPlanner` made 5000-agent rounds cheap,
but both its candidate-block evaluation and its CSR construction run in a
single process — the wall on the way to 100k–1M-agent populations.  The
paper's pairing decision is embarrassingly row-parallel: given the
broadcast τ̂ vector, each slow agent's top-k candidate block is
independent of every other row.  :class:`ShardedPlanner` exploits exactly
that structure, layered **on top of** the pruned planner (never instead of
it — the in-process path remains the correctness contract):

**Process-parallel candidate blocks.**  The dirty rows of each plan are
partitioned into contiguous shards evaluated by a persistent
``multiprocessing`` worker pool.  Workers run the *same* module-level
selection and costing helpers as the in-process path
(:func:`~repro.core.planner._top_k_by_tau`,
:func:`~repro.core.planner._pair_block_times`,
:func:`~repro.core.planner._scatter_rows`), so sharded plans are
byte-identical to single-process plans by construction — the four-way
Hypothesis contract (sharded ≡ pruned ≡ dense ≡ scalar oracle at
``k ≥ n − 1``) enforces it.

**Cost-balanced shard boundaries.**  Equal row counts are a poor proxy
for work when degree varies: one shard can carry most of the candidate
evaluations while the others idle.  With ``balance="cost"`` (the
default) the boundaries come from prefix sums of each dirty row's
estimated cost — its candidate-link count times the split-option count —
cut at equal cost fractions, so every worker gets the same evaluation
volume.  ``balance="rows"`` keeps the legacy equal-row split.
:class:`ShardStats` records the realised per-shard cost spread.

**Double-buffered dirty-row segments.**  The per-round inputs that
change every plan — the dirty-row list and its flat candidate links —
live in *two* buffers (``rows0``/``links0`` and ``rows1``/``links1``).
Each plan publishes into the back buffer and flips by naming the buffer
index in the task tuple itself (the atomic flip: a worker computes
entirely from the buffer its task names), so the parent never writes a
segment a straggling worker could still be reading, and publication
overlaps the previous dispatch's drain.  The stable inputs (τ̂ /
agent-vector matrix, access bandwidths, profile arrays) stay
single-buffered and are updated in place; segments reallocate (bumping a
single layout version that tells workers to re-attach) only when a shape
actually changes, with link capacity grown monotonically so edge-count
jitter never reallocates.

**Parallel CSR construction.**  Full CSR builds from the graph are the
residual O(E) wall (steady-state wiring changes are O(Δ) edits applied
by :class:`~repro.core.csr.IncrementalCsr`), so the build itself is
sharded: the parent extracts the flat edge-id array from the topology
graph, and each worker maps its contiguous slot range's edges to slots,
sorts its directed links, and returns a chunk; the parent hands the
merged chunks to the incremental engine as its base structure.

**Lifecycle.**  The pool and segments start lazily on the first plan that
is actually shardable (default links, not a complete graph, population at
least ``shard_min_population``, ``shards ≥ 2``).  :meth:`close` — also
driven by a ``weakref.finalize`` guard and interpreter exit — stops the
workers and unlinks every segment; any worker failure tears the pool down,
unlinks everything, and falls back to the inherited single-process path
for the rest of the planner's life (decisions stay correct either way).
No segment with the :data:`SHARD_SHM_PREFIX` name prefix survives a clean
run — CI's bench-smoke job and the shard tests both assert it.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
import uuid
import warnings
import weakref
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path
from typing import Callable, Optional, Union

import numpy as np

from repro.agents.agent import Agent
from repro.core.csr import _serial_links
from repro.core.fastpath import VECTOR_FIELDS, AgentVectors, _uses_default_links
from repro.core.planner import (
    BlockArrays,
    PlannerState,
    PrunedPlanner,
    _pair_block_times,
    _reset_rows,
    _scatter_rows,
    _top_k_by_tau,
    tau_rank_of,
)
from repro.core.profiling import SplitProfile
from repro.network.link import LinkModel

__all__ = [
    "DEFAULT_SHARD_MIN_POPULATION",
    "SHARD_SHM_PREFIX",
    "ShardStats",
    "ShardedPlanner",
    "resolve_shard_count",
    "stale_segment_names",
]

#: Name prefix of every shared-memory segment the sharded runtime creates.
#: Leak checks (tests, ``tools/bench_trajectory.py --fail-on-shm-leak``)
#: scan ``/dev/shm`` for it.
SHARD_SHM_PREFIX = "comdml-shard-"

#: Population below which :class:`ShardedPlanner` stays in-process by
#: default: under ~2k agents a round plan is already sub-millisecond and
#: IPC would dominate.  Tests pass ``shard_min_population=0`` to force the
#: pool on at any size.
DEFAULT_SHARD_MIN_POPULATION = 2048

#: Cap on the worker count ``shards="auto"`` resolves to.
MAX_AUTO_SHARDS = 4

#: Row index of the access-bandwidth vector inside the ``"vals"`` segment
#: (the rows before it are the :data:`~repro.core.fastpath.VECTOR_FIELDS`
#: packing of :class:`~repro.core.fastpath.AgentVectors`).
_ACCESS_ROW = len(VECTOR_FIELDS)

#: True in processes that forked from a parent that set it — forked
#: workers share the parent's resource tracker, so the spawn-only
#: unregister workaround must not run there (it would desynchronise the
#: shared tracker's registry).  Spawned workers re-import this module and
#: see the default ``False``.
_USING_FORK = False


def resolve_shard_count(shards: Union[int, str]) -> int:
    """Resolve a ``planner_shards`` setting to a concrete worker count.

    ``"auto"`` picks ``min(cpu_count, MAX_AUTO_SHARDS)`` — on a single-core
    host that is 1, which disables the pool entirely (the planner then
    behaves exactly like :class:`~repro.core.planner.PrunedPlanner`).
    """
    if isinstance(shards, str):
        if shards.lower() != "auto":
            raise ValueError(
                f"shards must be 'auto' or a positive integer, got {shards!r}"
            )
        return max(1, min(MAX_AUTO_SHARDS, os.cpu_count() or 1))
    count = int(shards)
    if count < 1:
        raise ValueError(f"shards must be >= 1, got {shards!r}")
    return count


def stale_segment_names() -> list[str]:
    """Names of leaked sharded-planner segments still present in /dev/shm.

    Empty on platforms without a /dev/shm filesystem; used by the shard
    tests and the bench-trajectory leak gate.
    """
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():
        return []
    return sorted(path.name for path in shm_dir.glob(SHARD_SHM_PREFIX + "*"))


@dataclass
class ShardStats:
    """Operation counters of a :class:`ShardedPlanner` (beyond PlannerStats).

    ``sharded_rounds`` counts plans whose dirty rows were evaluated by the
    worker pool (tests assert it to prove the pool actually ran, since a
    silent fallback would still produce correct decisions).  The spread
    fields observe the cost-balanced partitioning: ``last_shard_costs``
    is the estimated per-shard row cost of the latest sharded dispatch,
    ``cost_spread_last`` / ``cost_spread_max`` its max-over-mean ratio
    (1.0 = perfectly balanced) for that dispatch and the planner's
    lifetime worst.
    """

    sharded_rounds: int = 0
    inline_rounds: int = 0
    parallel_csr_builds: int = 0
    worker_failures: int = 0
    segment_reallocations: int = 0
    last_shard_costs: tuple = ()
    cost_spread_last: float = 0.0
    cost_spread_max: float = 0.0

    def report(self) -> dict:
        """Plain-dict view (campaign ``execution_report`` serialisation)."""
        return {
            "sharded_rounds": self.sharded_rounds,
            "inline_rounds": self.inline_rounds,
            "parallel_csr_builds": self.parallel_csr_builds,
            "worker_failures": self.worker_failures,
            "segment_reallocations": self.segment_reallocations,
            "last_shard_costs": list(self.last_shard_costs),
            "cost_spread_last": self.cost_spread_last,
            "cost_spread_max": self.cost_spread_max,
        }


class _WorkerError(RuntimeError):
    """A shard worker reported a failure or died mid-task."""


# ----------------------------------------------------------------------
# Shared-memory segments (parent side)
# ----------------------------------------------------------------------

class _Segment:
    """One owned shared-memory segment with an ndarray view over it."""

    __slots__ = ("shm", "array")

    def __init__(self, name: str, shape: tuple, dtype) -> None:
        nbytes = max(1, int(np.prod(shape)) * np.dtype(dtype).itemsize)
        self.shm = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
        self.array = np.ndarray(shape, dtype=dtype, buffer=self.shm.buf)

    def spec(self) -> tuple[str, tuple, str]:
        """(name, shape, dtype) — what a worker needs to attach."""
        return (self.shm.name, self.array.shape, self.array.dtype.str)

    def destroy(self) -> None:
        """Drop the view, close the mapping, and unlink the segment."""
        self.array = None
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - a stray view keeps the map
            pass
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


class _Worker:
    """One pool worker: a process plus its duplex task pipe."""

    __slots__ = ("process", "conn")

    def __init__(self, ctx, index: int) -> None:
        parent_conn, child_conn = ctx.Pipe()
        self.conn = parent_conn
        self.process = ctx.Process(
            target=_worker_main,
            args=(child_conn,),
            name=f"comdml-shard-worker-{index}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()


class _Runtime:
    """Mutable owner of the pool and segments, shared with the finalizer.

    Kept separate from the planner so ``weakref.finalize`` can tear it
    down without resurrecting the planner object.
    """

    def __init__(self, shards: int) -> None:
        self.token = uuid.uuid4().hex[:8]
        self.shards = shards
        self.version = 0
        self.segments: dict[str, _Segment] = {}
        self.workers: list[_Worker] = []

    def _name(self, key: str) -> str:
        return f"{SHARD_SHM_PREFIX}{os.getpid()}-{self.token}-{key}"

    def ensure(self, key: str, shape: tuple, dtype) -> _Segment:
        """The segment for ``key``, reallocated iff the shape/dtype changed.

        Reallocation bumps the layout version exactly once per change, so
        workers re-attach only when a shape genuinely moved — steady-state
        rounds reuse the same mappings with zero per-plan attach cost.
        """
        segment = self.segments.get(key)
        wanted = np.dtype(dtype)
        if (
            segment is not None
            and segment.array.shape == tuple(shape)
            and segment.array.dtype == wanted
        ):
            return segment
        if segment is not None:
            segment.destroy()
        segment = _Segment(self._name(key), tuple(shape), wanted)
        self.segments[key] = segment
        self.version += 1
        return segment

    def drop(self, key: str) -> None:
        segment = self.segments.pop(key, None)
        if segment is not None:
            segment.destroy()
            self.version += 1

    def layout(self) -> dict:
        return {
            "version": self.version,
            "segments": {
                key: segment.spec() for key, segment in self.segments.items()
            },
        }

    def out_blocks(self) -> BlockArrays:
        return _blocks_from(
            {key: segment.array for key, segment in self.segments.items()}
        )

    def teardown(self) -> None:
        """Stop the workers and unlink every segment (idempotent)."""
        for worker in self.workers:
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for worker in self.workers:
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.kill()
                worker.process.join(timeout=1.0)
        self.workers.clear()
        for segment in self.segments.values():
            segment.destroy()
        self.segments.clear()


def _finalize_runtime(runtime: _Runtime) -> None:
    runtime.teardown()


def _blocks_from(arrays: dict) -> BlockArrays:
    """The output segments viewed as the planner's six block arrays."""
    outi = arrays["outi"]
    outf = arrays["outf"]
    return BlockArrays(
        cand_pos=outi[0],
        cand_ids=outi[1],
        cand_bw=outf[0],
        best_times=outf[1],
        best_split=outi[2],
        valid=arrays["outb"],
    )


class _ProfileView:
    """Duck-typed :class:`SplitProfile` facade over shared-memory arrays.

    Presents exactly the attributes the shared planner helpers read, so a
    worker's :func:`~repro.core.planner._pair_block_times` call runs the
    same code on the same float64 values as the in-process path.
    """

    __slots__ = (
        "slow_time_array",
        "fast_time_array",
        "intermediate_bytes_array",
        "offloaded_bytes_array",
        "options_array",
        "offload_options",
    )

    def __init__(self, floats: np.ndarray, options: np.ndarray) -> None:
        self.slow_time_array = floats[0]
        self.fast_time_array = floats[1]
        self.intermediate_bytes_array = floats[2]
        self.offloaded_bytes_array = floats[3]
        self.options_array = options
        self.offload_options = tuple(int(value) for value in options.tolist())


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------

def _attach(layout: dict, cache: dict) -> dict:
    """Attach (or reuse) the segments named by ``layout``.

    ``cache`` maps ``"version"`` to the attached layout version, ``"shms"``
    to the open handles, and ``"arrays"`` to the ndarray views.  Stale
    attachments are dropped (views first, then handles) whenever the
    version moved.
    """
    if cache.get("version") == layout["version"]:
        return cache["arrays"]
    cache["arrays"] = {}
    for shm in cache.get("shms", ()):
        try:
            shm.close()
        except BufferError:  # pragma: no cover - stray view
            pass
    shms = []
    arrays = {}
    for key, (name, shape, dtype_str) in layout["segments"].items():
        shm = shared_memory.SharedMemory(name=name)
        if not _USING_FORK:  # pragma: no cover - spawn-only platforms
            # A spawned worker has its own resource tracker, which would
            # otherwise unlink (and warn about) the parent's segments when
            # this worker exits.  Forked workers share the parent's tracker
            # and must leave the registry alone.
            try:
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass
        arrays[key] = np.ndarray(
            tuple(shape), dtype=np.dtype(dtype_str), buffer=shm.buf
        )
        shms.append(shm)
    cache["version"] = layout["version"]
    cache["shms"] = shms
    cache["arrays"] = arrays
    return arrays


def _plan_chunk(
    arrays: dict,
    buf: int,
    lo: int,
    hi: int,
    llo: int,
    lhi: int,
    k: int,
    latency: float,
) -> tuple:
    """Evaluate one contiguous shard of dirty rows into the output blocks.

    ``buf`` names the double buffer this task reads (the atomic flip),
    ``[lo, hi)`` the dirty-row range and ``[llo, lhi)`` the aligned slice
    of the flat candidate-link segment — the parent precomputed both from
    the same prefix sums, so no worker rescans any neighbor structure.
    """
    rows_chunk = arrays[f"rows{buf}"][lo:hi]
    vals = arrays["vals"]
    n = vals.shape[1]
    vectors = AgentVectors.from_rows(vals)
    access = vals[_ACCESS_ROW]
    taus = vectors.individual_times
    meta = arrays["meta"]
    links = arrays[f"links{buf}"]
    sel_rows = links[0, llo:lhi]
    sel_cols = links[1, llo:lhi]
    bandwidth = np.minimum(access[sel_rows], access[sel_cols])
    sel_rows, sel_cols, bandwidth = _top_k_by_tau(
        sel_rows, sel_cols, bandwidth, taus, n, k, tau_rank=meta[1]
    )
    blocks = _blocks_from(arrays)
    _reset_rows(blocks, rows_chunk)
    if sel_rows.size:
        profile = _ProfileView(arrays["proff"], arrays["profi"])
        best_time, best_index = _pair_block_times(
            profile, vectors, sel_rows, sel_cols, bandwidth, latency
        )
        _scatter_rows(
            blocks, sel_rows, sel_cols, bandwidth, best_time, best_index,
            meta[0], profile.options_array, n,
        )
    return ("ok", int(sel_rows.size))


def _csr_chunk(arrays: dict, lo: int, hi: int) -> tuple:
    """Directed slot-space CSR links whose source slot falls in ``[lo, hi)``.

    Mirrors :func:`~repro.core.csr._serial_links` restricted to one slot
    range: maps the flat edge-id array to slots via a searchsorted over
    the slot-ordered node ids, keeps both directions of each edge whose
    source lands in this shard's range, and returns them sorted by
    ``(row, col)`` — chunks cover disjoint ascending ranges, so the
    parent's concatenation is globally sorted with no extra pass.
    """
    ids = arrays["nodes"]
    edges = arrays["edges"]
    empty = np.empty(0, dtype=np.int64)
    if edges.shape[0] == 0:
        return ("ok", empty, empty)
    slots = np.searchsorted(ids, edges)
    source = slots[:, 0]
    target = slots[:, 1]
    distinct = source != target
    source = source[distinct]
    target = target[distinct]
    in_source = (source >= lo) & (source < hi)
    in_target = (target >= lo) & (target < hi)
    rows = np.concatenate([source[in_source], target[in_target]])
    cols = np.concatenate([target[in_source], source[in_target]])
    sort = np.lexsort((cols, rows))
    return ("ok", np.ascontiguousarray(rows[sort]), np.ascontiguousarray(cols[sort]))


def _worker_main(conn) -> None:
    """Worker loop: attach segments per the task's layout, compute, reply."""
    cache: dict = {"version": None, "shms": [], "arrays": {}}
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message[0] == "stop":
                break
            try:
                arrays = _attach(message[1], cache)
                if message[0] == "plan":
                    reply = _plan_chunk(arrays, *message[2:])
                elif message[0] == "csr":
                    reply = _csr_chunk(arrays, *message[2:])
                else:
                    reply = ("err", f"unknown command {message[0]!r}")
            except Exception:
                reply = ("err", traceback.format_exc())
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                break
    finally:
        cache["arrays"] = {}
        for shm in cache["shms"]:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - stray view
                pass
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass


# ----------------------------------------------------------------------
# The sharded planner
# ----------------------------------------------------------------------

class ShardedPlanner(PrunedPlanner):
    """Process-parallel :class:`~repro.core.planner.PrunedPlanner`.

    Parameters beyond the base class:

    shards:
        Worker count, or ``"auto"`` (``min(cpu_count, MAX_AUTO_SHARDS)``).
        A resolved count below 2 disables the pool entirely — the planner
        then *is* the pruned planner.
    shard_min_population:
        Population below which plans stay in-process even with a pool
        configured (IPC would dominate).  Tests pass 0 to force sharding
        at any size.
    balance:
        Shard-boundary policy: ``"cost"`` (default) cuts at equal prefix
        sums of estimated per-row cost (candidate links × split options),
        ``"rows"`` at equal row counts.  Both produce identical decisions
        — only the work distribution differs.

    The pool engages only for plans it can shard exactly: default link
    semantics (the bandwidth-min rule workers can evaluate from the access
    vector) on a non-complete graph.  Complete graphs keep the O(n·k)
    global-pool shortcut, and custom link models keep the per-pair query
    path — both inherited unchanged.
    """

    def __init__(
        self,
        profile: SplitProfile,
        link_model: LinkModel,
        *,
        top_k: int = 32,
        engage_threshold: Optional[int] = None,
        batch_size: Optional[int] = None,
        improvement_threshold: float = 0.0,
        shards: Union[int, str] = "auto",
        shard_min_population: int = DEFAULT_SHARD_MIN_POPULATION,
        balance: str = "cost",
        compaction_threshold: float = 0.25,
    ) -> None:
        super().__init__(
            profile,
            link_model,
            top_k=top_k,
            engage_threshold=engage_threshold,
            batch_size=batch_size,
            improvement_threshold=improvement_threshold,
            compaction_threshold=compaction_threshold,
        )
        self.shards = resolve_shard_count(shards)
        if shard_min_population < 0:
            raise ValueError(
                f"shard_min_population must be >= 0, got {shard_min_population}"
            )
        if balance not in ("cost", "rows"):
            raise ValueError(
                f"balance must be 'cost' or 'rows', got {balance!r}"
            )
        self.shard_min_population = shard_min_population
        self.balance = balance
        self.shard_stats = ShardStats()
        self._runtime: Optional[_Runtime] = None
        self._finalizer = None
        self._pool_failed = False
        #: Index of the double buffer the *next* sharded dispatch writes.
        self._back_buffer = 0

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the worker pool and unlink every shared-memory segment."""
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
        self._runtime = None

    def segment_names(self) -> list[str]:
        """Names of the currently live shared-memory segments (for tests)."""
        if self._runtime is None:
            return []
        return [
            segment.shm.name for segment in self._runtime.segments.values()
        ]

    def _pool(self, population: int) -> Optional[_Runtime]:
        """The live runtime if sharding applies at this population size."""
        if (
            self.shards < 2
            or self._pool_failed
            or population < 2
            or population < self.shard_min_population
        ):
            return None
        if self._runtime is None:
            try:
                method = (
                    "fork"
                    if "fork" in multiprocessing.get_all_start_methods()
                    else None
                )
                ctx = multiprocessing.get_context(method)
                if method == "fork":
                    global _USING_FORK
                    _USING_FORK = True
                    # Start the resource tracker *before* forking: forked
                    # workers then inherit (and share) its pipe instead of
                    # each spawning a private tracker that would try to
                    # "clean up" the parent's segments when they exit.
                    resource_tracker.ensure_running()
                runtime = _Runtime(self.shards)
                runtime.workers = [
                    _Worker(ctx, index) for index in range(self.shards)
                ]
            except Exception as error:  # pragma: no cover - fork failure
                self._abandon_pool(f"worker pool failed to start: {error!r}")
                return None
            self._runtime = runtime
            self._finalizer = weakref.finalize(self, _finalize_runtime, runtime)
        return self._runtime

    def _abandon_pool(self, detail: str) -> None:
        """Tear the pool down and stay single-process from here on."""
        self.shard_stats.worker_failures += 1
        self._pool_failed = True
        self.close()
        warnings.warn(
            f"sharded planner fell back to single-process planning: {detail}",
            RuntimeWarning,
            stacklevel=3,
        )

    # ------------------------------------------------------------------
    # Sharded CSR base construction
    # ------------------------------------------------------------------
    def _csr_builder(self) -> Optional[Callable]:
        """Base-structure builder handed to :class:`~repro.core.csr.IncrementalCsr`.

        Full rebuilds (first build, journal truncation, compaction stays
        serial) shard the O(E) edge mapping across the pool; any failure
        falls back to the serial vectorized build so the rebuild itself
        can never lose a round.
        """

        def build(ids: np.ndarray, edges: np.ndarray):
            runtime = self._pool(int(ids.size))
            if runtime is None or edges.shape[0] == 0:
                return _serial_links(ids, edges)
            try:
                result = self._parallel_csr(runtime, ids, edges)
            except Exception:
                self._abandon_pool(
                    f"parallel CSR build failed:\n{traceback.format_exc()}"
                )
                return _serial_links(ids, edges)
            self.shard_stats.parallel_csr_builds += 1
            return result

        return build

    def _parallel_csr(
        self, runtime: _Runtime, ids: np.ndarray, edges: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-shard edge scans in the workers, merged into one base CSR."""
        count = int(ids.size)
        before = runtime.version
        nodes = runtime.ensure("nodes", (count,), np.int64)
        np.copyto(nodes.array, ids)
        edge_segment = runtime.ensure("edges", edges.shape, np.int64)
        np.copyto(edge_segment.array, edges)
        if runtime.version != before:
            self.shard_stats.segment_reallocations += 1
        replies = self._collect(self._send_tasks(
            runtime,
            [
                ("csr", lo, hi)
                for lo, hi in _shard_bounds(count, runtime.shards)
                if hi > lo
            ],
        ))
        # Rebuilds are rare and the edge array can dominate memory at 1M
        # agents — release both build-only segments immediately.
        runtime.drop("edges")
        runtime.drop("nodes")
        link_rows = np.concatenate([reply[1] for reply in replies])
        link_cols = np.concatenate([reply[2] for reply in replies])
        return link_rows, link_cols

    # ------------------------------------------------------------------
    # Sharded row recomputation
    # ------------------------------------------------------------------
    def _begin_recompute(
        self,
        state: PlannerState,
        agents: list[Agent],
        vectors: AgentVectors,
        access: np.ndarray,
        ids_array: np.ndarray,
        rows: np.ndarray,
    ) -> Callable[[], None]:
        runtime = None
        if rows.size and state.k >= 1 and self._shardable():
            runtime = self._pool(len(agents))
        if runtime is None:
            if rows.size:
                self.shard_stats.inline_rounds += 1
            return super()._begin_recompute(
                state, agents, vectors, access, ids_array, rows
            )
        try:
            return self._begin_sharded(
                runtime, state, agents, vectors, access, ids_array, rows
            )
        except Exception:
            if not self._pool_failed:
                self._abandon_pool(
                    f"sharded dispatch failed:\n{traceback.format_exc()}"
                )
            return super()._begin_recompute(
                state, agents, vectors, access, ids_array, rows
            )

    def _shardable(self) -> bool:
        """Whether this plan's candidate selection is the CSR fast path.

        Mirrors the branch conditions of ``_candidate_rows``: workers can
        only reproduce the default-link bandwidth rule, and complete
        graphs already plan in O(n·k) through the global-pool shortcut.
        """
        if not _uses_default_links(self.link_model):
            return False
        node_count, edge_count = self._topology_counts()
        if node_count >= 2 and edge_count == node_count * (node_count - 1) // 2:
            return False
        return True

    def _begin_sharded(
        self,
        runtime: _Runtime,
        state: PlannerState,
        agents: list[Agent],
        vectors: AgentVectors,
        access: np.ndarray,
        ids_array: np.ndarray,
        rows: np.ndarray,
    ) -> Callable[[], None]:
        """Publish this plan's inputs, dispatch, and defer the gather.

        Everything up to the task sends runs eagerly; the returned
        ``finish`` callable blocks on the worker replies and scatters the
        output blocks — the caller overlaps parent-side work in between.
        """
        n = len(agents)
        k = state.k
        if self._csr is None:
            self._csr = self._make_csr()
            self._translation = None
        if self._runtime is None or self._pool_failed:
            # The parallel CSR build abandoned the pool mid-plan; the
            # caller's fallback recomputes in-process.
            raise _WorkerError("pool lost during CSR build")
        translation = self._participant_translation(state)
        sel_rows, sel_cols = self._csr.links_for(
            translation, None if rows.size == n else rows
        )

        before = runtime.version
        profile = self.profile
        floats = runtime.ensure("proff", (4, profile.num_options), np.float64)
        np.copyto(floats.array[0], profile.slow_time_array)
        np.copyto(floats.array[1], profile.fast_time_array)
        np.copyto(floats.array[2], profile.intermediate_bytes_array)
        np.copyto(floats.array[3], profile.offloaded_bytes_array)
        options = runtime.ensure("profi", (profile.num_options,), np.int64)
        np.copyto(options.array, profile.options_array)

        vals = runtime.ensure("vals", (_ACCESS_ROW + 1, n), np.float64)
        vectors.to_rows(vals.array)
        np.copyto(vals.array[_ACCESS_ROW], access)
        meta = runtime.ensure("meta", (2, n), np.int64)
        np.copyto(meta.array[0], ids_array)
        np.copyto(meta.array[1], tau_rank_of(state.taus))

        # Double-buffered per-round inputs: write the back buffer, flip by
        # naming it in the task tuple.  Link capacity grows monotonically
        # so per-round edge-count jitter never reallocates a segment.
        buf = self._back_buffer
        self._back_buffer = 1 - buf
        rows_segment = runtime.ensure(f"rows{buf}", (n,), np.int64)
        np.copyto(rows_segment.array[: rows.size], rows)
        need = int(sel_rows.size)
        existing = runtime.segments.get(f"links{buf}")
        capacity = max(
            need, 1 if existing is None else existing.array.shape[1]
        )
        links_segment = runtime.ensure(f"links{buf}", (2, capacity), np.int64)
        np.copyto(links_segment.array[0, :need], sel_rows)
        np.copyto(links_segment.array[1, :need], sel_cols)

        runtime.ensure("outi", (3, n, k), np.int64)
        runtime.ensure("outf", (2, n, k), np.float64)
        runtime.ensure("outb", (n, k), np.bool_)
        if runtime.version != before:
            self.shard_stats.segment_reallocations += 1

        tasks = [
            ("plan", buf, lo, hi, llo, lhi, int(k), self.latency_seconds)
            for lo, hi, llo, lhi in self._plan_bounds(
                rows, sel_rows, profile.num_options, runtime.shards
            )
            if hi > lo
        ]
        active = self._send_tasks(runtime, tasks)

        def finish() -> None:
            try:
                replies = self._collect(active)
            except _WorkerError:
                if not self._pool_failed:
                    self._abandon_pool(
                        "sharded row recompute failed:\n"
                        f"{traceback.format_exc()}"
                    )
                PrunedPlanner._recompute_rows(
                    self, state, agents, vectors, access, ids_array, rows
                )
                return
            total = sum(reply[1] for reply in replies)
            out = runtime.out_blocks()
            for target, source in zip(state.blocks(), out):
                target[rows] = source[rows]
            self.stats.last_pairs_evaluated = total * profile.num_options
            self.stats.pairs_evaluated += self.stats.last_pairs_evaluated
            self.shard_stats.sharded_rounds += 1

        return finish

    def _plan_bounds(
        self,
        rows: np.ndarray,
        sel_rows: np.ndarray,
        num_options: int,
        shards: int,
    ) -> list[tuple[int, int, int, int]]:
        """Shard boundaries as ``(lo, hi, llo, lhi)`` row + link ranges.

        ``balance="cost"`` cuts the dirty rows where the prefix sum of
        estimated row cost (candidate links × split options, plus a
        constant floor per row) crosses equal fractions of the total;
        ``"rows"`` keeps the legacy equal-row split.  Either way the link
        ranges fall out of the same prefix sums, since ``sel_rows`` is
        grouped by ascending dirty row.
        """
        d = int(rows.size)
        counts = np.searchsorted(sel_rows, rows, side="right") - np.searchsorted(
            sel_rows, rows, side="left"
        )
        link_cum = np.cumsum(counts)
        costs = counts * np.int64(num_options) + 1
        cost_cum = np.cumsum(costs)
        if self.balance == "cost" and d > 1 and shards > 1:
            targets = cost_cum[-1] * np.arange(1, shards) / shards
            cuts = np.searchsorted(cost_cum, targets, side="left")
            boundaries = np.concatenate(
                ([0], np.maximum.accumulate(cuts), [d])
            )
        else:
            boundaries = np.asarray(
                [d * index // shards for index in range(shards + 1)],
                dtype=np.int64,
            )
        link_at = np.concatenate(([0], link_cum))[boundaries]
        cost_at = np.concatenate(([0], cost_cum))[boundaries]
        shard_costs = np.diff(cost_at)
        live = shard_costs[shard_costs > 0]
        if live.size:
            spread = float(live.max() / live.mean())
            self.shard_stats.last_shard_costs = tuple(
                int(cost) for cost in shard_costs.tolist()
            )
            self.shard_stats.cost_spread_last = spread
            self.shard_stats.cost_spread_max = max(
                self.shard_stats.cost_spread_max, spread
            )
        return [
            (
                int(boundaries[index]),
                int(boundaries[index + 1]),
                int(link_at[index]),
                int(link_at[index + 1]),
            )
            for index in range(len(boundaries) - 1)
        ]

    def _send_tasks(
        self, runtime: _Runtime, tasks: list[tuple]
    ) -> list[_Worker]:
        """Send one task per worker; returns the workers owing a reply."""
        layout = runtime.layout()
        active: list[_Worker] = []
        try:
            for worker, task in zip(runtime.workers, tasks):
                worker.conn.send((task[0], layout, *task[1:]))
                active.append(worker)
        except (EOFError, BrokenPipeError, OSError) as error:
            raise _WorkerError(f"shard worker died: {error!r}") from error
        return active

    def _collect(self, active: list[_Worker]) -> list[tuple]:
        """Gather the replies of the given workers in shard order."""
        try:
            replies = [worker.conn.recv() for worker in active]
        except (EOFError, BrokenPipeError, OSError) as error:
            raise _WorkerError(f"shard worker died: {error!r}") from error
        failures = [reply[1] for reply in replies if reply[0] != "ok"]
        if failures:
            raise _WorkerError("\n".join(failures))
        return replies


def _shard_bounds(total: int, shards: int) -> list[tuple[int, int]]:
    """Contiguous, near-equal ``[lo, hi)`` ranges covering ``range(total)``."""
    return [
        (total * index // shards, total * (index + 1) // shards)
        for index in range(shards)
    ]
