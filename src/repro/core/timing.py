"""Round timing: turn a pairing plan into simulated durations.

Converts a list of :class:`~repro.core.pairing.PairingDecision` into the
per-agent busy/idle breakdown and the round makespan, then adds the
decentralized AllReduce aggregation cost.  This is the timing plane shared
by ComDML's orchestrator, the Table I decomposition, and the Figure 1
illustration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.agents.agent import Agent
from repro.agents.registry import AgentRegistry
from repro.core.pairing import PairingDecision
from repro.core.profiling import SplitProfile
from repro.network.allreduce import allreduce_time
from repro.network.compression import GradientCompressor
from repro.sim.costs import DEFAULT_LINK_LATENCY_SECONDS
from repro.utils.units import mbps_to_bytes_per_second


@dataclass(frozen=True)
class PairTiming:
    """Timing breakdown of one pairing decision within a round."""

    slow_id: int
    fast_id: Optional[int]
    offloaded_layers: int
    slow_compute: float
    fast_own_compute: float
    fast_offload_compute: float
    communication: float
    pair_time: float
    idle_time: float


@dataclass(frozen=True)
class RoundTiming:
    """Timing of one full round (local work, makespan, aggregation).

    Attributes
    ----------
    pair_timings:
        Per-decision breakdowns.
    makespan:
        Slowest pair/solo agent's completion time (local phase).
    aggregation_time:
        AllReduce duration.
    total_time:
        ``makespan + aggregation_time``.
    total_compute_time:
        Sum of all agents' busy compute time (for utilisation metrics).
    total_communication_time:
        Intermediate-activation/offload traffic time (excludes aggregation).
    total_idle_time:
        Combined idle time of all agents while waiting for the makespan.
    """

    pair_timings: tuple[PairTiming, ...]
    makespan: float
    aggregation_time: float
    total_time: float
    total_compute_time: float
    total_communication_time: float
    total_idle_time: float

    @property
    def num_pairs(self) -> int:
        """Number of decisions that actually offloaded work."""
        return sum(1 for timing in self.pair_timings if timing.fast_id is not None)


def bottleneck_bandwidth(agents: Sequence[Agent]) -> float:
    """Slowest connected agent's link speed (bytes/s) among the participants."""
    connected = [
        agent.profile.bandwidth_bytes_per_second
        for agent in agents
        if agent.is_connected
    ]
    if not connected:
        # No usable links: fall back to the slowest nominal profile (10 Mbps)
        # so the aggregation still completes in the simulation.
        return mbps_to_bytes_per_second(10.0)
    return min(connected)


def compute_round_timing(
    decisions: Sequence[PairingDecision],
    registry: AgentRegistry,
    profile: SplitProfile,
    allreduce_algorithm: str = "halving_doubling",
    num_aggregating_agents: Optional[int] = None,
    latency_seconds: float = DEFAULT_LINK_LATENCY_SECONDS,
    compressor: Optional[GradientCompressor] = None,
) -> RoundTiming:
    """Assemble a :class:`RoundTiming` from pairing decisions.

    ``num_aggregating_agents`` defaults to the number of agents involved in
    the decisions (solo agents + both members of each pair); pass the full
    population size when unsampled agents also join the aggregation.

    The per-decision breakdowns, the makespan, and the compute and
    communication totals are accumulated in a single pass over the
    decisions (decision order, left-to-right additions — the exact float
    sequence the sync golden regression pins down).
    """
    pair_timings: list[PairTiming] = []
    involved_ids: set[int] = set()
    makespan = 0.0
    total_compute = 0.0
    total_communication = 0.0

    for decision in decisions:
        estimate = decision.estimate
        is_pair = decision.fast_id is not None
        involved_ids.add(decision.slow_id)
        if is_pair:
            involved_ids.add(decision.fast_id)
        timing = PairTiming(
            slow_id=decision.slow_id,
            fast_id=decision.fast_id,
            offloaded_layers=decision.offloaded_layers,
            slow_compute=estimate.slow_time,
            fast_own_compute=estimate.fast_own_time if is_pair else 0.0,
            fast_offload_compute=estimate.fast_offload_time,
            communication=estimate.communication_time,
            pair_time=estimate.pair_time,
            idle_time=estimate.idle_time if is_pair else 0.0,
        )
        pair_timings.append(timing)
        makespan = max(makespan, timing.pair_time)
        total_compute += (
            timing.slow_compute + timing.fast_own_compute
        ) + timing.fast_offload_compute
        total_communication += timing.communication

    participants = [registry.get(agent_id) for agent_id in involved_ids if agent_id in registry]
    num_agents = (
        num_aggregating_agents
        if num_aggregating_agents is not None
        else max(1, len(involved_ids))
    )
    aggregation = allreduce_time(
        model_bytes=profile.full_model_bytes,
        num_agents=num_agents,
        bottleneck_bandwidth_bytes_per_second=bottleneck_bandwidth(participants)
        if participants
        else mbps_to_bytes_per_second(10.0),
        algorithm=allreduce_algorithm,
        latency_seconds=latency_seconds,
        compressor=compressor,
    )

    # Idle time: every involved agent waits from its own completion until the
    # makespan.  Within a pair the faster side additionally idles while its
    # partner finishes, which is already captured by PairTiming.idle_time; on
    # top of that the whole pair idles until the global makespan.  (Second
    # pass: the idle terms need the final makespan.)
    total_idle = 0.0
    for timing in pair_timings:
        total_idle += timing.idle_time
        group_size = 2 if timing.fast_id is not None else 1
        total_idle += group_size * (makespan - timing.pair_time)

    return RoundTiming(
        pair_timings=tuple(pair_timings),
        makespan=makespan,
        aggregation_time=aggregation,
        total_time=makespan + aggregation,
        total_compute_time=total_compute,
        total_communication_time=total_communication,
        total_idle_time=total_idle,
    )
