"""Workload-balancing optimization (Section III-C / IV-A of the paper).

Given a slow agent ``i``, a candidate fast agent ``j`` and a candidate split
``m``, the estimated round time of the pair is (Algorithm 1, function
``AgentTrainingTime``):

    τ̂_ij^m = max( Ñ_i / p_i^m ,  τ̂_j + Ñ_i ν_m / c_ij + Ñ_i / p_j^m )

with ``p_i^m = p_i / T_s(m)`` and ``p_j^m = p_j / T_f(m)``.  The slow agent
picks the split minimizing this estimate, and the pairing scheduler picks
the helper minimizing over candidates.

The global problem — choose the pairing matrix ``γ_ij ∈ {0,1}`` and the
splits minimizing the makespan ``max_i τ_i`` — is an integer program
(Eq. 5).  :func:`exact_min_makespan` solves it exactly for small
populations (branch-and-bound over the matching tree, with the per-pair
cost tables memoized once per call through the vectorized kernel); it
exists as the optimal reference the greedy decentralized scheduler is
ablated against.

The scalar functions here (:func:`estimate_offload_time`,
:func:`best_offload`) are the *reference oracle*: the vectorized kernel in
:mod:`repro.core.fastpath` mirrors their arithmetic operation-for-operation
and is tested to produce bit-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.agents.agent import Agent
from repro.core.profiling import SplitProfile
from repro.sim.costs import DEFAULT_LINK_LATENCY_SECONDS
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class OffloadEstimate:
    """Timing estimate for offloading from one agent to another with a given split.

    Attributes
    ----------
    offloaded_layers:
        The split index ``m``.
    slow_time:
        Slow agent's compute time for its retained sub-model.
    fast_own_time:
        Fast agent's time for its *own* local task (the paper's ``τ̂_j``).
    communication_time:
        Time to ship the intermediate activations for the round.
    fast_offload_time:
        Fast agent's compute time for the offloaded sub-model.
    pair_time:
        ``max(slow chain, fast chain)`` — the round time of the pair.
    """

    offloaded_layers: int
    slow_time: float
    fast_own_time: float
    communication_time: float
    fast_offload_time: float
    pair_time: float

    @property
    def fast_chain_time(self) -> float:
        """Total busy time of the fast agent: own task + receive + offloaded work."""
        return self.fast_own_time + self.communication_time + self.fast_offload_time

    @property
    def idle_time(self) -> float:
        """Combined idle time of the two agents within the pair."""
        return abs(self.slow_time - self.fast_chain_time)


def _batches_per_round(agent: Agent) -> float:
    """The paper's ``Ñ_i`` (scaled by local epochs)."""
    return float(agent.batches_per_round)


def agent_processing_speed(
    agent: Agent, profile: SplitProfile, batch_size: int
) -> float:
    """Full-model batches per second for an agent (the paper's ``p_i``)."""
    check_positive(batch_size, "batch_size")
    flops_per_batch = profile.full_train_flops_per_sample * batch_size
    return agent.processing_speed(flops_per_batch)


def individual_training_time(
    agent: Agent, profile: SplitProfile, batch_size: int
) -> float:
    """Round time without offloading (the paper's ``τ_i = Ñ_i / p_i``)."""
    speed = agent_processing_speed(agent, profile, batch_size)
    return _batches_per_round(agent) / speed


def estimate_offload_time(
    slow_agent: Agent,
    fast_agent: Agent,
    offloaded_layers: int,
    profile: SplitProfile,
    bandwidth_bytes_per_second: float,
    fast_agent_busy_time: Optional[float] = None,
    batch_size: Optional[int] = None,
    latency_seconds: float = DEFAULT_LINK_LATENCY_SECONDS,
) -> OffloadEstimate:
    """Implement the paper's ``AgentTrainingTime`` for one candidate split.

    Parameters
    ----------
    fast_agent_busy_time:
        The fast agent's estimated time for its own task (``τ̂_j``).  When
        omitted it is computed from the fast agent's dataset and speed.
    batch_size:
        Mini-batch size used to convert per-sample costs to per-batch costs;
        defaults to the slow agent's batch size.
    """
    check_positive(bandwidth_bytes_per_second, "bandwidth_bytes_per_second")
    batch_size = batch_size if batch_size is not None else slow_agent.batch_size

    slow_speed = agent_processing_speed(slow_agent, profile, batch_size)
    fast_speed = agent_processing_speed(fast_agent, profile, batch_size)
    slow_batches = _batches_per_round(slow_agent)

    slow_factor = profile.slow_time_factor(offloaded_layers)
    fast_factor = profile.fast_time_factor(offloaded_layers)

    # p_i^m = p_i / T_s(m): if the slow side costs a fraction T_s of the full
    # model, the slow agent processes batches 1 / T_s times faster.
    slow_time = (
        slow_batches * slow_factor / slow_speed if slow_factor > 0 else 0.0
    )
    fast_offload_time = (
        slow_batches * fast_factor / fast_speed if fast_factor > 0 else 0.0
    )

    if fast_agent_busy_time is None:
        fast_agent_busy_time = individual_training_time(fast_agent, profile, batch_size)

    intermediate_bytes = profile.intermediate_bytes(offloaded_layers) * batch_size
    if offloaded_layers > 0:
        communication_time = slow_batches * (
            latency_seconds + intermediate_bytes / bandwidth_bytes_per_second
        )
        # The offloaded sub-model itself is shipped once per round when the
        # pair forms (and returned before aggregation).
        communication_time += (
            2.0 * profile.offloaded_bytes(offloaded_layers) / bandwidth_bytes_per_second
        )
    else:
        communication_time = 0.0

    if offloaded_layers == 0:
        pair_time = max(
            individual_training_time(slow_agent, profile, batch_size),
            fast_agent_busy_time,
        )
        slow_time = individual_training_time(slow_agent, profile, batch_size)
        fast_offload_time = 0.0
        communication_time = 0.0
    else:
        fast_chain = fast_agent_busy_time + communication_time + fast_offload_time
        pair_time = max(slow_time, fast_chain)

    return OffloadEstimate(
        offloaded_layers=offloaded_layers,
        slow_time=slow_time,
        fast_own_time=fast_agent_busy_time,
        communication_time=communication_time,
        fast_offload_time=fast_offload_time,
        pair_time=pair_time,
    )


def best_offload(
    slow_agent: Agent,
    fast_agent: Agent,
    profile: SplitProfile,
    bandwidth_bytes_per_second: float,
    fast_agent_busy_time: Optional[float] = None,
    batch_size: Optional[int] = None,
    latency_seconds: float = DEFAULT_LINK_LATENCY_SECONDS,
) -> OffloadEstimate:
    """Minimize the pair time over all profiled splits (lines 15-22 of Algorithm 1)."""
    estimates = [
        estimate_offload_time(
            slow_agent,
            fast_agent,
            offloaded_layers=option,
            profile=profile,
            bandwidth_bytes_per_second=bandwidth_bytes_per_second,
            fast_agent_busy_time=fast_agent_busy_time,
            batch_size=batch_size,
            latency_seconds=latency_seconds,
        )
        for option in profile.offload_options
    ]
    return min(estimates, key=lambda estimate: estimate.pair_time)


# ----------------------------------------------------------------------
# Exact integer-programming reference (used by the ablation benchmark)
# ----------------------------------------------------------------------

def _pair_partitions(ids: Sequence[int]):
    """Yield all partitions of ``ids`` into unordered pairs and singletons.

    The enumeration order (first element solo, then paired with each later
    element in turn) is the tie-breaking contract of
    :func:`exact_min_makespan`: among partitions of equal makespan, the
    first one in this order wins.  The solver itself explores the same
    tree depth-first with branch-and-bound pruning instead of
    materializing every partition; this generator remains the executable
    specification the equivalence tests enumerate with.
    """
    ids = list(ids)
    if not ids:
        yield []
        return
    first, rest = ids[0], ids[1:]
    # First agent stays alone.
    for partition in _pair_partitions(rest):
        yield [(first,)] + partition
    # First agent pairs with each other agent.
    for index, partner in enumerate(rest):
        remaining = rest[:index] + rest[index + 1 :]
        for partition in _pair_partitions(remaining):
            yield [(first, partner)] + partition


def exact_min_makespan(
    agents: Sequence[Agent],
    profile: SplitProfile,
    bandwidth_lookup,
    batch_size: Optional[int] = None,
    max_agents: int = 10,
) -> tuple[float, list[tuple[int, Optional[int], int]]]:
    """Exactly solve the pairing/offloading integer program (Eq. 5).

    The group costs are precomputed *once per call*: the per-pair best
    split/time table comes from one vectorized
    :class:`~repro.core.fastpath.PairCostModel` evaluation over all agent
    pairs (the original solver re-derived it with scalar ``best_offload``
    calls for every partition containing the pair).  The partition tree is
    then explored depth-first in :func:`_pair_partitions` order with
    branch-and-bound pruning: a branch whose running makespan already
    reaches the incumbent can never *strictly* beat it, so pruning keeps
    the returned makespan and assignment identical to full enumeration.

    Parameters
    ----------
    bandwidth_lookup:
        Callable ``(agent_a, agent_b) -> bytes_per_second`` returning 0 when
        the two agents cannot communicate.
    max_agents:
        Safety bound — the number of matchings grows super-exponentially
        (pruning helps, but the worst case remains exponential).

    Returns
    -------
    ``(makespan, assignment)`` where each assignment entry is
    ``(slow_id, fast_id or None, offloaded_layers)``.  Within a pair the
    slower agent (larger individual time) is always the one offloading.
    """
    from repro.core.fastpath import PairCostModel

    if len(agents) > max_agents:
        raise ValueError(
            f"exact solver limited to {max_agents} agents, got {len(agents)}"
        )
    agents = list(agents)
    n = len(agents)
    if n == 0:
        return 0.0, []

    solo_times = [
        individual_training_time(agent, profile, batch_size or agent.batch_size)
        for agent in agents
    ]

    # Pair tables, memoized once per call.  Bandwidths come from the
    # caller's lookup, queried (slow, fast) like the scalar path; the
    # kernel then yields every pair's best split and time in one shot.
    bandwidths = np.zeros((n, n))
    pair_bandwidth: dict[tuple[int, int], float] = {}
    for p in range(n):
        for q in range(p + 1, n):
            slow_pos, fast_pos = (
                (p, q) if solo_times[p] >= solo_times[q] else (q, p)
            )
            bandwidth = bandwidth_lookup(agents[slow_pos], agents[fast_pos])
            pair_bandwidth[(p, q)] = bandwidth
            bandwidths[p, q] = bandwidths[q, p] = bandwidth
    cost_model = PairCostModel(
        agents,
        profile,
        bandwidths=bandwidths,
        batch_size=batch_size,
        shared_busy_times=False,
    )

    #: (p, q) with p < q -> (group makespan contribution, assignment entries)
    Entry = tuple[int, Optional[int], int]
    pair_table: dict[tuple[int, int], tuple[float, list[Entry]]] = {}
    for (p, q), bandwidth in pair_bandwidth.items():
        first, second = agents[p], agents[q]
        if bandwidth <= 0:
            # These two agents cannot pair; they both train alone.
            pair_table[(p, q)] = (
                max(solo_times[p], solo_times[q]),
                [(first.agent_id, None, 0), (second.agent_id, None, 0)],
            )
            continue
        slow_pos, fast_pos = (p, q) if solo_times[p] >= solo_times[q] else (q, p)
        offloaded = cost_model.best_offloaded_layers(slow_pos, fast_pos)
        pair_table[(p, q)] = (
            float(cost_model.best_pair_times[slow_pos, fast_pos]),
            [(agents[slow_pos].agent_id, agents[fast_pos].agent_id, offloaded)],
        )

    best_makespan = float("inf")
    best_groups: list[tuple[int, ...]] = []

    # Depth-first search over _pair_partitions' tree, pruned on the running
    # makespan.  Updates are strict-<, so cutting branches at >= preserves
    # the exact enumeration-order winner.
    def search(remaining: list[int], running: float, groups: list[tuple[int, ...]]):
        nonlocal best_makespan, best_groups
        if running >= best_makespan:
            return
        if not remaining:
            best_makespan = running
            best_groups = list(groups)
            return
        first, rest = remaining[0], remaining[1:]
        groups.append((first,))
        search(rest, max(running, solo_times[first]), groups)
        groups.pop()
        for index, partner in enumerate(rest):
            groups.append((first, partner))
            search(
                rest[:index] + rest[index + 1 :],
                max(running, pair_table[(first, partner)][0]),
                groups,
            )
            groups.pop()

    search(list(range(n)), 0.0, [])

    best_assignment: list[Entry] = []
    for group in best_groups:
        if len(group) == 1:
            best_assignment.append((agents[group[0]].agent_id, None, 0))
        else:
            best_assignment.extend(pair_table[group][1])
    return best_makespan, best_assignment
