"""Data layer: synthetic classification datasets and federated partitioners."""

from repro.data.dataset import Dataset, train_test_split
from repro.data.synthetic import (
    SyntheticSpec,
    make_synthetic_classification,
    cifar10_like,
    cifar100_like,
    cinic10_like,
)
from repro.data.partition import iid_partition, dirichlet_partition, partition_sizes
from repro.data.loader import BatchLoader

__all__ = [
    "Dataset",
    "train_test_split",
    "SyntheticSpec",
    "make_synthetic_classification",
    "cifar10_like",
    "cifar100_like",
    "cinic10_like",
    "iid_partition",
    "dirichlet_partition",
    "partition_sizes",
    "BatchLoader",
]
