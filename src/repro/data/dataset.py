"""Dataset container used by the learning plane."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_probability


@dataclass
class Dataset:
    """In-memory classification dataset.

    Attributes
    ----------
    features:
        Array of shape ``(N, D)`` (flattened samples).
    labels:
        Integer class labels of shape ``(N,)``.
    num_classes:
        Number of distinct classes the task defines (may exceed the classes
        present in a small shard).
    name:
        Human-readable dataset name (e.g. ``"cifar10-like"``).
    """

    features: np.ndarray
    labels: np.ndarray
    num_classes: int
    name: str = "dataset"

    def __post_init__(self) -> None:
        self.features = np.asarray(self.features, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if self.features.ndim != 2:
            raise ValueError(
                f"features must be 2-D (N, D), got shape {self.features.shape}"
            )
        if self.labels.ndim != 1:
            raise ValueError(f"labels must be 1-D, got shape {self.labels.shape}")
        if self.features.shape[0] != self.labels.shape[0]:
            raise ValueError(
                f"features ({self.features.shape[0]}) and labels "
                f"({self.labels.shape[0]}) disagree on sample count"
            )
        if self.num_classes <= 0:
            raise ValueError(f"num_classes must be positive, got {self.num_classes}")
        if self.labels.size and (
            self.labels.min() < 0 or self.labels.max() >= self.num_classes
        ):
            raise ValueError("labels out of range for num_classes")

    def __len__(self) -> int:
        return self.features.shape[0]

    @property
    def num_features(self) -> int:
        """Feature dimensionality ``D``."""
        return self.features.shape[1]

    def subset(self, indices: np.ndarray, name_suffix: str = "subset") -> "Dataset":
        """Dataset restricted to the given sample indices (copies the slices)."""
        indices = np.asarray(indices, dtype=np.int64)
        return Dataset(
            features=self.features[indices].copy(),
            labels=self.labels[indices].copy(),
            num_classes=self.num_classes,
            name=f"{self.name}/{name_suffix}",
        )

    def class_counts(self) -> np.ndarray:
        """Number of samples per class, shape ``(num_classes,)``."""
        return np.bincount(self.labels, minlength=self.num_classes)


def train_test_split(
    dataset: Dataset,
    test_fraction: float,
    rng: np.random.Generator,
) -> tuple[Dataset, Dataset]:
    """Random split into train and test subsets."""
    check_probability(test_fraction, "test_fraction")
    n = len(dataset)
    permutation = rng.permutation(n)
    test_count = int(round(test_fraction * n))
    test_indices = permutation[:test_count]
    train_indices = permutation[test_count:]
    return (
        dataset.subset(train_indices, "train"),
        dataset.subset(test_indices, "test"),
    )
