"""Mini-batch iteration over a :class:`~repro.data.dataset.Dataset`."""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.data.dataset import Dataset
from repro.utils.validation import check_positive


class BatchLoader:
    """Iterates (features, labels) mini-batches, optionally shuffled each epoch."""

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int = 100,
        shuffle: bool = True,
        rng: Optional[np.random.Generator] = None,
        drop_last: bool = False,
    ) -> None:
        check_positive(batch_size, "batch_size")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return -(-n // self.batch_size) if n else 0

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        if n == 0:
            return
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        for start in range(0, n, self.batch_size):
            indices = order[start : start + self.batch_size]
            if self.drop_last and len(indices) < self.batch_size:
                break
            yield (
                self.dataset.features[indices],
                self.dataset.labels[indices],
            )
