"""Federated data partitioning.

Two partitioners used in the paper's experiments:

* **I.I.D.** — samples are shuffled and dealt to agents in (optionally
  unequal) shares; every agent sees the global label distribution.
* **Non-I.I.D. (label-distribution skew)** — for each class, the sample mass
  is distributed across agents according to a Dirichlet distribution with
  concentration parameter 0.5, the setting used in the paper.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.utils.validation import check_positive


def partition_sizes(
    total_samples: int,
    num_agents: int,
    rng: Optional[np.random.Generator] = None,
    imbalance: float = 0.0,
) -> list[int]:
    """Split ``total_samples`` into ``num_agents`` shares.

    ``imbalance = 0`` gives (near-)equal shares; larger values draw shares
    from a Dirichlet whose concentration shrinks with the imbalance, giving
    heterogeneous local dataset sizes (the paper's "varying dataset sizes").
    Every agent receives at least one sample.
    """
    check_positive(total_samples, "total_samples")
    check_positive(num_agents, "num_agents")
    if total_samples < num_agents:
        raise ValueError(
            f"cannot give {num_agents} agents at least one of {total_samples} samples"
        )
    if imbalance < 0:
        raise ValueError(f"imbalance must be non-negative, got {imbalance}")
    if imbalance == 0 or rng is None:
        base = total_samples // num_agents
        remainder = total_samples - base * num_agents
        return [base + (1 if i < remainder else 0) for i in range(num_agents)]
    concentration = max(0.1, 5.0 / (1.0 + imbalance * 10.0))
    proportions = rng.dirichlet([concentration] * num_agents)
    raw = np.maximum(1, np.floor(proportions * total_samples).astype(int))
    # Adjust to hit the exact total.
    deficit = total_samples - int(raw.sum())
    order = np.argsort(-proportions)
    index = 0
    while deficit != 0:
        target = int(order[index % num_agents])
        if deficit > 0:
            raw[target] += 1
            deficit -= 1
        elif raw[target] > 1:
            raw[target] -= 1
            deficit += 1
        index += 1
    return [int(x) for x in raw]


def iid_partition(
    labels: np.ndarray,
    num_agents: int,
    rng: np.random.Generator,
    sizes: Optional[Sequence[int]] = None,
) -> list[np.ndarray]:
    """I.I.D. partition: shuffle and deal.

    Returns one index array per agent.  When ``sizes`` is given it must sum
    to at most ``len(labels)``; otherwise equal shares are used.
    """
    labels = np.asarray(labels)
    check_positive(num_agents, "num_agents")
    n = labels.shape[0]
    if sizes is None:
        sizes = partition_sizes(n, num_agents)
    if len(sizes) != num_agents:
        raise ValueError(f"expected {num_agents} sizes, got {len(sizes)}")
    if sum(sizes) > n:
        raise ValueError(f"requested {sum(sizes)} samples but only {n} available")
    permutation = rng.permutation(n)
    shards: list[np.ndarray] = []
    offset = 0
    for size in sizes:
        shards.append(np.sort(permutation[offset : offset + size]))
        offset += size
    return shards


def dirichlet_partition(
    labels: np.ndarray,
    num_agents: int,
    rng: np.random.Generator,
    alpha: float = 0.5,
    min_samples_per_agent: int = 1,
) -> list[np.ndarray]:
    """Label-distribution-skew partition via a per-class Dirichlet draw.

    For each class ``c`` the sample indices of that class are split across
    agents proportionally to a draw from ``Dirichlet(alpha, ..., alpha)``.
    Small ``alpha`` (the paper uses 0.5) concentrates each class on few
    agents, producing the non-I.I.D. variants of the datasets.  Agents left
    below ``min_samples_per_agent`` samples steal one sample from the
    best-endowed agent so no agent is empty.
    """
    labels = np.asarray(labels, dtype=np.int64)
    check_positive(num_agents, "num_agents")
    check_positive(alpha, "alpha")
    n = labels.shape[0]
    if n < num_agents:
        raise ValueError(
            f"cannot partition {n} samples across {num_agents} agents"
        )

    shards: list[list[int]] = [[] for _ in range(num_agents)]
    for class_id in np.unique(labels):
        class_indices = np.where(labels == class_id)[0]
        rng.shuffle(class_indices)
        proportions = rng.dirichlet([alpha] * num_agents)
        # Convert proportions to contiguous slice boundaries.
        boundaries = (np.cumsum(proportions) * len(class_indices)).astype(int)[:-1]
        pieces = np.split(class_indices, boundaries)
        for agent_index, piece in enumerate(pieces):
            shards[agent_index].extend(piece.tolist())

    # Guarantee the minimum shard size.
    for agent_index in range(num_agents):
        while len(shards[agent_index]) < min_samples_per_agent:
            donor = max(range(num_agents), key=lambda i: len(shards[i]))
            if donor == agent_index or len(shards[donor]) <= min_samples_per_agent:
                break
            shards[agent_index].append(shards[donor].pop())

    return [np.sort(np.asarray(shard, dtype=np.int64)) for shard in shards]


def label_distribution(
    labels: np.ndarray, shards: Sequence[np.ndarray], num_classes: int
) -> np.ndarray:
    """Per-agent class histograms, shape ``(num_agents, num_classes)``.

    Useful for verifying and visualising how non-I.I.D. a partition is.
    """
    labels = np.asarray(labels, dtype=np.int64)
    histogram = np.zeros((len(shards), num_classes), dtype=np.int64)
    for agent_index, shard in enumerate(shards):
        histogram[agent_index] = np.bincount(labels[shard], minlength=num_classes)
    return histogram
