"""Synthetic stand-ins for CIFAR-10, CIFAR-100 and CINIC-10.

The offline environment has no access to the real image datasets, so the
learning plane uses synthetic classification tasks with matched *structure*:

* the same number of classes (10 / 100 / 10);
* the same relative dataset sizes (CINIC-10 is ~1.8× larger than CIFAR);
* controllable difficulty, so that "harder" datasets (CIFAR-100-like) need
  more rounds to reach a lower target accuracy, as in the paper.

Samples are drawn from class-conditional Gaussian clusters whose means are
random unit vectors, then passed through a fixed random nonlinear mixing so
that a linear classifier cannot solve the task trivially and depth helps.
Every generator is fully determined by its seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class SyntheticSpec:
    """Parameters of a synthetic classification task.

    Attributes
    ----------
    name:
        Dataset name (used in reports).
    num_classes:
        Number of classes.
    num_features:
        Feature dimensionality after the nonlinear mixing.
    train_samples / test_samples:
        Default split sizes.
    class_separation:
        Distance between class means in units of the noise scale — larger is
        easier.  CIFAR-100-like uses a smaller separation than CIFAR-10-like.
    noise_scale:
        Standard deviation of the within-class Gaussian noise.
    """

    name: str
    num_classes: int
    num_features: int
    train_samples: int
    test_samples: int
    class_separation: float
    noise_scale: float = 1.0

    def __post_init__(self) -> None:
        check_positive(self.num_classes, "num_classes")
        check_positive(self.num_features, "num_features")
        check_positive(self.train_samples, "train_samples")
        check_positive(self.test_samples, "test_samples")
        check_positive(self.class_separation, "class_separation")
        check_positive(self.noise_scale, "noise_scale")


def make_synthetic_classification(
    spec: SyntheticSpec, seed: int = 0
) -> tuple[Dataset, Dataset]:
    """Generate (train, test) datasets for a :class:`SyntheticSpec`."""
    rng = np.random.default_rng(seed)
    latent_dim = max(8, spec.num_features // 2)

    # Class prototypes on a sphere of radius `class_separation`.
    prototypes = rng.normal(size=(spec.num_classes, latent_dim))
    prototypes /= np.linalg.norm(prototypes, axis=1, keepdims=True)
    prototypes *= spec.class_separation

    # Fixed random nonlinear mixing latent -> features.
    mixing_a = rng.normal(size=(latent_dim, spec.num_features)) / np.sqrt(latent_dim)
    mixing_b = rng.normal(size=(latent_dim, spec.num_features)) / np.sqrt(latent_dim)

    def _sample(count: int) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, spec.num_classes, size=count)
        latent = prototypes[labels] + rng.normal(
            scale=spec.noise_scale, size=(count, latent_dim)
        )
        features = np.tanh(latent @ mixing_a) + 0.5 * np.sin(latent @ mixing_b)
        features += 0.05 * rng.normal(size=features.shape)
        return features, labels

    train_features, train_labels = _sample(spec.train_samples)
    test_features, test_labels = _sample(spec.test_samples)

    train = Dataset(train_features, train_labels, spec.num_classes, f"{spec.name}/train")
    test = Dataset(test_features, test_labels, spec.num_classes, f"{spec.name}/test")
    return train, test


# ----------------------------------------------------------------------
# Named dataset presets (sizes are scaled-down but keep the paper's ratios)
# ----------------------------------------------------------------------

def cifar10_like(
    train_samples: int = 8000,
    test_samples: int = 2000,
    num_features: int = 64,
    seed: int = 0,
) -> tuple[Dataset, Dataset]:
    """Synthetic stand-in for CIFAR-10: 10 classes, well separated."""
    spec = SyntheticSpec(
        name="cifar10-like",
        num_classes=10,
        num_features=num_features,
        train_samples=train_samples,
        test_samples=test_samples,
        class_separation=3.0,
    )
    return make_synthetic_classification(spec, seed=seed)


def cifar100_like(
    train_samples: int = 8000,
    test_samples: int = 2000,
    num_features: int = 64,
    seed: int = 1,
) -> tuple[Dataset, Dataset]:
    """Synthetic stand-in for CIFAR-100: 100 classes, harder task."""
    spec = SyntheticSpec(
        name="cifar100-like",
        num_classes=100,
        num_features=num_features,
        train_samples=train_samples,
        test_samples=test_samples,
        class_separation=2.2,
    )
    return make_synthetic_classification(spec, seed=seed)


def cinic10_like(
    train_samples: int = 14400,
    test_samples: int = 3600,
    num_features: int = 64,
    seed: int = 2,
) -> tuple[Dataset, Dataset]:
    """Synthetic stand-in for CINIC-10: 10 classes, ~1.8× CIFAR's size, noisier."""
    spec = SyntheticSpec(
        name="cinic10-like",
        num_classes=10,
        num_features=num_features,
        train_samples=train_samples,
        test_samples=test_samples,
        class_separation=2.5,
        noise_scale=1.2,
    )
    return make_synthetic_classification(spec, seed=seed)


DATASET_PRESETS = {
    "cifar10": cifar10_like,
    "cifar100": cifar100_like,
    "cinic10": cinic10_like,
}


def load_preset(name: str, **kwargs) -> tuple[Dataset, Dataset]:
    """Load a named preset (``"cifar10"``, ``"cifar100"``, ``"cinic10"``)."""
    key = name.lower().replace("-like", "").replace("_", "").replace("-", "")
    if key not in DATASET_PRESETS:
        raise ValueError(
            f"unknown dataset preset {name!r}; expected one of {sorted(DATASET_PRESETS)}"
        )
    return DATASET_PRESETS[key](**kwargs)
