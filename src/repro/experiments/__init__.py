"""Experiment reproductions: one module per table/figure of the paper.

All harnesses execute on the shared campaign engine
(:mod:`repro.experiments.campaign`): a declarative
:class:`~repro.experiments.campaign.CampaignSpec` per grid, run by the
parallel, cached, resumable
:class:`~repro.experiments.campaign.CampaignExecutor`.
"""

from repro.experiments.backends import (
    EXECUTION_BACKENDS,
    ExecutionBackend,
    create_backend,
)
from repro.experiments.campaign import (
    CampaignCache,
    CampaignExecutor,
    CampaignResult,
    CampaignSpec,
    execute_campaign,
    resolve_cache_dir,
)
from repro.experiments.fingerprint import runner_fingerprint
from repro.experiments.scenarios import ScenarioConfig, Scenario, build_scenario
from repro.experiments.runner import ExperimentRunner, METHOD_REGISTRY
from repro.experiments.reporting import (
    CampaignProgressRenderer,
    aggregate_planner_reports,
    campaign_summary,
    execution_report,
    format_campaign_summary,
    format_table,
    payload_digest,
    speedup_over_baselines,
)
from repro.experiments.table1 import run_table1, TABLE1_OFFLOAD_OPTIONS
from repro.experiments.table2 import run_table2, TABLE2_TARGETS
from repro.experiments.table3 import run_table3
from repro.experiments.fig1 import run_fig1
from repro.experiments.fig3 import run_fig3
from repro.experiments.privacy import run_privacy_comparison

__all__ = [
    "CampaignCache",
    "CampaignExecutor",
    "CampaignProgressRenderer",
    "CampaignResult",
    "CampaignSpec",
    "EXECUTION_BACKENDS",
    "ExecutionBackend",
    "create_backend",
    "execute_campaign",
    "execution_report",
    "aggregate_planner_reports",
    "payload_digest",
    "resolve_cache_dir",
    "runner_fingerprint",
    "campaign_summary",
    "format_campaign_summary",
    "ScenarioConfig",
    "Scenario",
    "build_scenario",
    "ExperimentRunner",
    "METHOD_REGISTRY",
    "format_table",
    "speedup_over_baselines",
    "run_table1",
    "TABLE1_OFFLOAD_OPTIONS",
    "run_table2",
    "TABLE2_TARGETS",
    "run_table3",
    "run_fig1",
    "run_fig3",
    "run_privacy_comparison",
]
