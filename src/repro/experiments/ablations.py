"""Ablation grids as campaign cells.

The four design ablations (split-candidate granularity, resource
heterogeneity, greedy-vs-exact pairing, AllReduce algorithm choice) used to
live as hand-rolled loops inside ``benchmarks/bench_ablation_*.py``.  Each
is now a registered campaign cell runner plus a spec builder, so the
benchmarks are thin drivers over the shared
:class:`~repro.experiments.campaign.CampaignExecutor` — and any future
sweep (finer granularities, larger populations, more seeds) is a spec
edit, not a new loop.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.agents.registry import AgentRegistry
from repro.agents.resources import ResourceProfile
from repro.core.pairing import greedy_pairing, pairing_makespan
from repro.core.profiling import profile_architecture
from repro.core.workload import exact_min_makespan, individual_training_time
from repro.experiments.campaign import (
    CampaignPreset,
    CampaignResult,
    CampaignSpec,
)
from repro.models.resnet import resnet56_spec
from repro.network.allreduce import halving_doubling_allreduce, ring_allreduce
from repro.network.compression import QuantizationCompressor
from repro.network.link import LinkModel, pairwise_bandwidth
from repro.network.topology import full_topology
from repro.utils.units import mbps_to_bytes_per_second

#: Split-candidate granularities swept by the granularity ablation.
GRANULARITIES = (27, 13, 9, 6, 3, 1)

#: CPU spreads swept by the heterogeneity ablation (name -> CPU pool).
CPU_SPREADS: dict[str, tuple[float, ...]] = {
    "homogeneous (1.0 only)": (1.0,),
    "mild (2.0 / 1.0)": (2.0, 1.0),
    "moderate (4.0 / 1.0 / 0.5)": (4.0, 1.0, 0.5),
    "paper (4 / 2 / 1 / 0.5 / 0.2)": (4.0, 2.0, 1.0, 0.5, 0.2),
}

#: Agent counts swept by the AllReduce algorithm ablation.
ALLREDUCE_AGENT_COUNTS = (4, 8, 16, 32, 64, 128)


def _registry(num_agents: int, seed: int, batch_size: int = 100) -> AgentRegistry:
    return AgentRegistry.build(
        num_agents=num_agents,
        rng=np.random.default_rng(seed),
        samples_per_agent=1_000,
        batch_size=batch_size,
    )


# ----------------------------------------------------------------------
# Granularity: number of candidate split models M
# ----------------------------------------------------------------------

def granularity_cell(granularity: int, num_agents: int = 10, seed: int = 7) -> dict[str, Any]:
    """Makespan and candidate count at one split granularity."""
    profile = profile_architecture(resnet56_spec(), granularity=granularity)
    registry = _registry(num_agents, seed)
    link_model = LinkModel(full_topology(registry.ids))
    decisions = greedy_pairing(registry.agents, link_model, profile)
    return {
        "granularity": granularity,
        "candidates": profile.num_options,
        "makespan_seconds": pairing_makespan(decisions),
    }


def granularity_spec(
    granularities: Sequence[int] = GRANULARITIES,
    num_agents: int = 10,
    seed: int = 7,
) -> CampaignSpec:
    """Declare the split-granularity ablation grid."""
    return CampaignSpec.create(
        name="ablation-granularity",
        runner="ablation-granularity",
        axes={"granularity": tuple(granularities)},
        base={"num_agents": num_agents, "seed": seed},
    )


# ----------------------------------------------------------------------
# Heterogeneity: gain vs CPU spread
# ----------------------------------------------------------------------

def heterogeneity_cell(
    spread: str, num_agents: int = 10, granularity: int = 6, seed: int = 0
) -> dict[str, Any]:
    """ComDML's makespan reduction over no balancing for one CPU spread."""
    try:
        cpu_pool = CPU_SPREADS[spread]
    except KeyError:
        raise KeyError(
            f"unknown CPU spread {spread!r}; expected one of {sorted(CPU_SPREADS)}"
        ) from None
    profile = profile_architecture(resnet56_spec(), granularity=granularity)
    rng = np.random.default_rng(seed)
    profiles = [
        ResourceProfile(
            cpu_share=float(cpu_pool[i % len(cpu_pool)]), bandwidth_mbps=50.0
        )
        for i in range(num_agents)
    ]
    registry = AgentRegistry.build(
        num_agents=num_agents, rng=rng, samples_per_agent=1_000, profiles=profiles
    )
    link_model = LinkModel(full_topology(registry.ids))
    decisions = greedy_pairing(registry.agents, link_model, profile)
    balanced = pairing_makespan(decisions)
    unbalanced = max(
        individual_training_time(agent, profile, 100) for agent in registry.agents
    )
    return {
        "spread": spread,
        "unbalanced_seconds": unbalanced,
        "balanced_seconds": balanced,
        "reduction": 1.0 - balanced / unbalanced,
    }


def heterogeneity_spec(
    spreads: Sequence[str] = tuple(CPU_SPREADS),
    num_agents: int = 10,
    seed: int = 0,
) -> CampaignSpec:
    """Declare the heterogeneity ablation grid."""
    return CampaignSpec.create(
        name="ablation-heterogeneity",
        runner="ablation-heterogeneity",
        axes={"spread": tuple(spreads)},
        base={"num_agents": num_agents, "seed": seed},
    )


# ----------------------------------------------------------------------
# Pairing: greedy heuristic vs exact integer program
# ----------------------------------------------------------------------

def pairing_cell(seed: int, num_agents: int = 8, granularity: int = 9) -> dict[str, Any]:
    """Greedy vs exact makespan for one population draw."""
    profile = profile_architecture(resnet56_spec(), granularity=granularity)
    registry = _registry(num_agents, seed)
    link_model = LinkModel(full_topology(registry.ids))
    decisions = greedy_pairing(registry.agents, link_model, profile)
    greedy = pairing_makespan(decisions)
    exact, _ = exact_min_makespan(registry.agents, profile, pairwise_bandwidth)
    return {
        "seed": seed,
        "greedy_seconds": greedy,
        "exact_seconds": exact,
        "ratio": greedy / exact if exact > 0 else 1.0,
    }


def pairing_spec(
    seeds: Sequence[int] = tuple(range(5)),
    num_agents: int = 8,
) -> CampaignSpec:
    """Declare the greedy-vs-exact pairing ablation grid."""
    return CampaignSpec.create(
        name="ablation-pairing",
        runner="ablation-pairing",
        axes={"seed": tuple(seeds)},
        base={"num_agents": num_agents},
    )


# ----------------------------------------------------------------------
# AllReduce: ring vs recursive halving-doubling
# ----------------------------------------------------------------------

def allreduce_cell(
    num_agents: int,
    bandwidth_mbps: float = 10.0,
    compression_bits: int = 8,
) -> dict[str, Any]:
    """Both AllReduce algorithms (plus compression) at one population size."""
    model_bytes = resnet56_spec().model_bytes
    bandwidth = mbps_to_bytes_per_second(bandwidth_mbps)
    ring = ring_allreduce(model_bytes, num_agents, bandwidth)
    hd = halving_doubling_allreduce(model_bytes, num_agents, bandwidth)
    compressed = halving_doubling_allreduce(
        model_bytes,
        num_agents,
        bandwidth,
        compressor=QuantizationCompressor(bits=compression_bits),
    )
    return {
        "num_agents": num_agents,
        "ring_steps": ring.steps,
        "ring_seconds": ring.time_seconds,
        "ring_per_agent_bytes": ring.per_agent_bytes,
        "hd_steps": hd.steps,
        "hd_seconds": hd.time_seconds,
        "hd_per_agent_bytes": hd.per_agent_bytes,
        "compressed_seconds": compressed.time_seconds,
    }


def allreduce_spec(
    agent_counts: Sequence[int] = ALLREDUCE_AGENT_COUNTS,
    bandwidth_mbps: float = 10.0,
) -> CampaignSpec:
    """Declare the AllReduce algorithm ablation grid."""
    return CampaignSpec.create(
        name="ablation-allreduce",
        runner="ablation-allreduce",
        axes={"num_agents": tuple(agent_counts)},
        base={"bandwidth_mbps": bandwidth_mbps},
    )


# ----------------------------------------------------------------------
# Presets (CLI-runnable)
# ----------------------------------------------------------------------

def _format_rows(result: CampaignResult) -> str:
    from repro.experiments.reporting import format_table

    return format_table(result.payloads(), float_format="{:.3f}")


GRANULARITY_PRESET = CampaignPreset(
    build_spec=granularity_spec, format_result=_format_rows
)
HETEROGENEITY_PRESET = CampaignPreset(
    build_spec=heterogeneity_spec, format_result=_format_rows
)
PAIRING_PRESET = CampaignPreset(build_spec=pairing_spec, format_result=_format_rows)
ALLREDUCE_PRESET = CampaignPreset(
    build_spec=allreduce_spec, format_result=_format_rows
)
