"""Pluggable campaign execution backends.

The campaign layer (:mod:`repro.experiments.campaign`) owns *what* to run
— spec expansion, cache probes, result assembly; this package owns *how*:
an :class:`ExecutionBackend` turns a sequence of
:class:`~repro.experiments.backends.events.CellTask` objects into a
stream of typed :class:`~repro.experiments.backends.events.BackendEvent`
objects.  Four implementations ship:

=============  ========================================================
``serial``     In-process, zero overhead — the debugging backend.
``thread``     Thread pool; live mid-cell progress, no pickling.
``process``    ``ProcessPoolExecutor`` — the classic ``--jobs N`` path.
``worker-pool``  TCP coordinator + ``comdml worker serve`` processes on
               any number of hosts; heartbeats, per-worker failure
               isolation, automatic requeue from dead workers.
=============  ========================================================

Because cells are pure functions of their parameters, every backend
produces byte-identical campaign results — the backend choice is purely
an operational one (see ``docs/campaigns.md`` for the selection matrix).
"""

from __future__ import annotations

from typing import Iterator, Protocol, Sequence, runtime_checkable

from repro.experiments.backends.events import (
    BackendEvent,
    CellCached,
    CellFailed,
    CellFinished,
    CellProgress,
    CellStarted,
    CellTask,
    WorkerJoined,
    WorkerLost,
)
from repro.experiments.backends.invoke import report_cell_progress, resolve_dotted
from repro.experiments.backends.local import ProcessBackend, SerialBackend, ThreadBackend
from repro.experiments.backends.worker_pool import WorkerPoolBackend, serve_worker


@runtime_checkable
class ExecutionBackend(Protocol):
    """The contract every backend implements.

    ``submit`` consumes the uncached cells of a campaign and yields
    events until each task has produced exactly one terminal event
    (``cell_finished`` or ``cell_failed``).  A failing cell must not
    abort the stream; remaining cells keep executing so they still reach
    the cache.
    """

    name: str

    def submit(self, tasks: Sequence[CellTask]) -> Iterator[BackendEvent]:
        ...


#: Backend registry: CLI/name -> class.  Constructors accept ``jobs``
#: (ignored where it has no meaning) plus backend-specific options.
EXECUTION_BACKENDS: dict[str, type] = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
    WorkerPoolBackend.name: WorkerPoolBackend,
}


def create_backend(name: str, jobs: int = 1, **options) -> ExecutionBackend:
    """Instantiate a registered backend by name."""
    try:
        factory = EXECUTION_BACKENDS[name]
    except KeyError:
        raise KeyError(
            f"unknown execution backend {name!r}; expected one of "
            f"{sorted(EXECUTION_BACKENDS)}"
        ) from None
    return factory(jobs=jobs, **options)


__all__ = [
    "BackendEvent",
    "CellCached",
    "CellFailed",
    "CellFinished",
    "CellProgress",
    "CellStarted",
    "CellTask",
    "ExecutionBackend",
    "EXECUTION_BACKENDS",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "WorkerJoined",
    "WorkerLost",
    "WorkerPoolBackend",
    "create_backend",
    "report_cell_progress",
    "resolve_dotted",
    "serve_worker",
]
