"""The ``demo-cell`` runner: a controllable cell for smoke tests and demos.

Registered in :data:`repro.experiments.campaign.CELL_RUNNERS`, so
``comdml campaign run`` can exercise any backend — including a freshly
deployed worker pool — without paying for a real experiment:

.. code-block:: python

    CampaignSpec.create(
        name="pool-check", runner="demo-cell",
        axes={"cell_id": tuple(range(8))},
        base={"sleep_seconds": 0.2, "progress_steps": 4},
    )

The payload is a pure function of the parameters (identical across
backends and retries); ``sleep_seconds`` makes cells long enough to
observe live progress or to kill a worker mid-cell, and ``fail_ids``
turns selected cells into deterministic failures.
"""

from __future__ import annotations

import hashlib
import time
from typing import Optional, Sequence

from repro.experiments.backends.invoke import report_cell_progress


def demo_cell(
    cell_id: int,
    sleep_seconds: float = 0.0,
    progress_steps: int = 0,
    fail_ids: Optional[Sequence[int]] = None,
) -> dict:
    """Sleep, optionally stream progress, and return a deterministic payload."""
    if fail_ids and cell_id in fail_ids:
        raise RuntimeError(f"demo cell {cell_id} asked to fail")
    steps = max(int(progress_steps), 0)
    for step in range(steps):
        if sleep_seconds:
            time.sleep(sleep_seconds / max(steps, 1))
        report_cell_progress((step + 1) / steps, f"step {step + 1}/{steps}")
    if not steps and sleep_seconds:
        time.sleep(sleep_seconds)
    token = hashlib.sha256(f"demo-cell:{cell_id}".encode("utf-8")).hexdigest()[:16]
    return {"cell_id": cell_id, "token": token}
