"""Typed events and the unit of work shared by every execution backend.

A backend receives a sequence of :class:`CellTask` objects and yields a
stream of :class:`BackendEvent` subclasses — the *only* channel through
which execution progress reaches the campaign layer and its renderers.
The event vocabulary:

``cell_started``
    A cell began executing (may repeat if a dead worker's cell is
    requeued onto a live one).
``cell_progress``
    Mid-cell progress reported by the runner via
    :func:`repro.experiments.backends.invoke.report_cell_progress`.
    Streaming backends (thread, worker-pool) deliver these live; the
    serial backend buffers them until the cell returns; the process
    backend cannot observe them (separate address space, no channel).
``cell_finished``
    A cell completed; carries the JSON payload and the compute time.
``cell_failed``
    The cell's runner raised; carries the stringified error (and, for
    in-process backends, the original exception object).
``cell_cached``
    Emitted by the executor — never by a backend — when a cell is
    served from the on-disk cache.
``worker_joined`` / ``worker_lost``
    Worker-pool membership changes; ``worker_lost`` names the cells
    that were in flight on the dead worker and have been requeued.

Events are frozen dataclasses so renderers and tests can rely on their
shape; every event exposes a ``kind`` string for dispatch and counting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar, Optional


@dataclass(frozen=True)
class CellTask:
    """One schedulable unit of a campaign: a cell the cache did not cover.

    ``runner`` is the registry name (for reports), ``dotted`` the
    ``"module:function"`` path backends actually resolve — workers in
    other processes or on other hosts cannot see runners registered at
    runtime in the coordinator, so the dotted path travels with the task.
    """

    index: int
    params: dict[str, Any]
    key: str
    runner: str
    dotted: str


@dataclass(frozen=True)
class BackendEvent:
    """Base class of everything a backend may yield."""

    kind: ClassVar[str] = "event"


@dataclass(frozen=True)
class CellStarted(BackendEvent):
    kind: ClassVar[str] = "cell_started"

    index: int
    key: str
    params: dict[str, Any] = field(default_factory=dict)
    worker: Optional[str] = None


@dataclass(frozen=True)
class CellProgress(BackendEvent):
    kind: ClassVar[str] = "cell_progress"

    index: int
    key: str
    fraction: float
    message: str = ""
    worker: Optional[str] = None


@dataclass(frozen=True)
class CellFinished(BackendEvent):
    kind: ClassVar[str] = "cell_finished"

    index: int
    key: str
    payload: Any = None
    elapsed_seconds: float = 0.0
    worker: Optional[str] = None


@dataclass(frozen=True)
class CellFailed(BackendEvent):
    kind: ClassVar[str] = "cell_failed"

    index: int
    key: str
    error: str = ""
    #: The original exception when the backend shares our address space
    #: (serial/thread/process); ``None`` for worker-pool failures, which
    #: arrive as strings over the wire.
    exception: Optional[BaseException] = None
    worker: Optional[str] = None


@dataclass(frozen=True)
class CellCached(BackendEvent):
    kind: ClassVar[str] = "cell_cached"

    index: int
    key: str
    elapsed_seconds: float = 0.0


@dataclass(frozen=True)
class WorkerJoined(BackendEvent):
    kind: ClassVar[str] = "worker_joined"

    worker: str
    capacity: int = 1


@dataclass(frozen=True)
class WorkerLost(BackendEvent):
    kind: ClassVar[str] = "worker_lost"

    worker: str
    reason: str = ""
    requeued: tuple[int, ...] = ()
