"""Cell invocation and the in-cell progress hook.

Backends do not import the campaign module (the campaign module imports
*them*); everything they need to run a cell — resolving the dotted
runner path and timing the call — lives here.

Runners may report mid-cell progress by calling
:func:`report_cell_progress`; the active backend wires a per-thread sink
around the call (:func:`execute_task`), so the same runner code streams
progress under the serial, thread, and worker-pool backends and is a
silent no-op under the process backend (separate address space) or when
invoked outside a campaign.
"""

from __future__ import annotations

import importlib
import threading
import time
from typing import Any, Callable, Optional

from repro.experiments.backends.events import CellProgress, CellTask

_state = threading.local()


def resolve_dotted(dotted: str) -> Callable[..., Any]:
    """Import a ``"module:function"`` reference."""
    module_name, _, attribute = dotted.partition(":")
    module = importlib.import_module(module_name)
    return getattr(module, attribute)


def report_cell_progress(fraction: float, message: str = "") -> None:
    """Report mid-cell progress from inside a runner (0.0 <= fraction <= 1.0).

    Safe to call anywhere: outside a campaign cell (or under a backend
    with no progress channel) it does nothing.
    """
    sink = getattr(_state, "sink", None)
    if sink is not None:
        sink(min(max(float(fraction), 0.0), 1.0), str(message))


def execute_task(
    task: CellTask,
    progress: Optional[Callable[[CellProgress], None]] = None,
    worker: Optional[str] = None,
) -> tuple[Any, float]:
    """Run one cell and time it; wires the progress hook for the duration.

    Returns ``(payload, elapsed_seconds)``; exceptions from the runner
    propagate to the caller, with the hook reliably unwound.
    """
    if progress is not None:
        _state.sink = lambda fraction, message: progress(
            CellProgress(
                index=task.index,
                key=task.key,
                fraction=fraction,
                message=message,
                worker=worker,
            )
        )
    started = time.perf_counter()
    try:
        payload = resolve_dotted(task.dotted)(**task.params)
    finally:
        _state.sink = None
    return payload, time.perf_counter() - started


def timed_call(dotted: str, params: dict[str, Any]) -> tuple[Any, float]:
    """Process-pool worker entry point: run one cell inside the subprocess."""
    started = time.perf_counter()
    payload = resolve_dotted(dotted)(**params)
    return payload, time.perf_counter() - started
