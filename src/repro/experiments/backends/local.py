"""Single-host execution backends: serial, thread pool, process pool.

All three speak the same :class:`~repro.experiments.backends.ExecutionBackend`
protocol — ``submit(tasks)`` yields typed events until every task has
either finished or failed.  A failing cell never aborts the stream:
remaining cells keep executing (and therefore keep reaching the cache),
and the campaign executor re-raises the first failure only after the
stream is drained.
"""

from __future__ import annotations

import queue
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, ThreadPoolExecutor, wait
from typing import Iterator, Sequence

from repro.experiments.backends.events import (
    BackendEvent,
    CellFailed,
    CellFinished,
    CellProgress,
    CellStarted,
    CellTask,
)
from repro.experiments.backends.invoke import execute_task, timed_call


class SerialBackend:
    """Run cells inline in the calling thread — zero overhead, trivially
    debuggable (a ``pdb`` breakpoint in a runner just works).

    Mid-cell progress is buffered and yielded between the cell's
    ``cell_started`` and ``cell_finished`` events (a single thread cannot
    interleave a generator with a running cell).
    """

    name = "serial"

    def __init__(self, jobs: int = 1) -> None:
        del jobs  # accepted for registry uniformity; serial is always 1

    def submit(self, tasks: Sequence[CellTask]) -> Iterator[BackendEvent]:
        for task in tasks:
            yield CellStarted(index=task.index, key=task.key, params=task.params)
            buffered: list[CellProgress] = []
            try:
                payload, elapsed = execute_task(task, progress=buffered.append)
            except BaseException as error:  # noqa: BLE001 - surfaced as an event
                yield from buffered
                yield CellFailed(
                    index=task.index, key=task.key, error=str(error), exception=error
                )
                continue
            yield from buffered
            yield CellFinished(
                index=task.index, key=task.key, payload=payload, elapsed_seconds=elapsed
            )


class ThreadBackend:
    """Run cells on a thread pool; events (including live mid-cell
    progress) stream through a queue as they happen.

    Correct because cells are pure functions of their parameters with
    instance-local RNGs — nothing in a runner touches global random or
    module state — so thread interleaving cannot change payloads.
    """

    name = "thread"

    def __init__(self, jobs: int = 2) -> None:
        if jobs < 1:
            raise ValueError(f"thread backend needs jobs >= 1, got {jobs}")
        self.jobs = jobs

    def submit(self, tasks: Sequence[CellTask]) -> Iterator[BackendEvent]:
        if not tasks:
            return
        events: "queue.Queue[BackendEvent]" = queue.Queue()

        def run(task: CellTask) -> None:
            events.put(CellStarted(index=task.index, key=task.key, params=task.params))
            try:
                payload, elapsed = execute_task(task, progress=events.put)
            except BaseException as error:  # noqa: BLE001 - surfaced as an event
                events.put(
                    CellFailed(
                        index=task.index, key=task.key, error=str(error), exception=error
                    )
                )
                return
            events.put(
                CellFinished(
                    index=task.index,
                    key=task.key,
                    payload=payload,
                    elapsed_seconds=elapsed,
                )
            )

        with ThreadPoolExecutor(max_workers=min(self.jobs, len(tasks))) as pool:
            for task in tasks:
                pool.submit(run, task)
            remaining = len(tasks)
            while remaining:
                event = events.get()
                if event.kind in ("cell_finished", "cell_failed"):
                    remaining -= 1
                yield event


class ProcessBackend:
    """Run cells on a ``ProcessPoolExecutor`` — the pre-refactor behaviour.

    Tasks are dispatched in a window of ``jobs`` so ``cell_started``
    events track actual execution rather than enqueueing; mid-cell
    progress is not observable across the process boundary.
    """

    name = "process"

    def __init__(self, jobs: int = 2) -> None:
        if jobs < 1:
            raise ValueError(f"process backend needs jobs >= 1, got {jobs}")
        self.jobs = jobs

    def submit(self, tasks: Sequence[CellTask]) -> Iterator[BackendEvent]:
        if not tasks:
            return
        backlog = list(tasks)
        with ProcessPoolExecutor(max_workers=min(self.jobs, len(tasks))) as pool:
            outstanding = {}
            while backlog and len(outstanding) < self.jobs:
                task = backlog.pop(0)
                outstanding[pool.submit(timed_call, task.dotted, task.params)] = task
                yield CellStarted(index=task.index, key=task.key, params=task.params)
            while outstanding:
                done, _ = wait(outstanding, return_when=FIRST_COMPLETED)
                for future in done:
                    task = outstanding.pop(future)
                    try:
                        payload, elapsed = future.result()
                    except BaseException as error:  # noqa: BLE001 - event below
                        yield CellFailed(
                            index=task.index,
                            key=task.key,
                            error=str(error),
                            exception=error,
                        )
                    else:
                        yield CellFinished(
                            index=task.index,
                            key=task.key,
                            payload=payload,
                            elapsed_seconds=elapsed,
                        )
                    if backlog:
                        next_task = backlog.pop(0)
                        outstanding[
                            pool.submit(timed_call, next_task.dotted, next_task.params)
                        ] = next_task
                        yield CellStarted(
                            index=next_task.index,
                            key=next_task.key,
                            params=next_task.params,
                        )
