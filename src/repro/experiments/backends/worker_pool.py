"""Multi-host execution: a socket coordinator and ``comdml worker serve``.

The :class:`WorkerPoolBackend` binds a TCP socket and dispatches cells to
worker processes that *attach* to it — typically ``comdml worker serve
--host H --port P`` on any number of hosts (or :func:`serve_worker`
in-process, which the tests use).  The wire protocol is newline-delimited
JSON frames:

======================  ==============================================
worker → coordinator    ``hello`` (name, capacity, cache schema),
                        ``heartbeat``,
                        ``progress`` (cell, fraction, message),
                        ``result`` (cell, payload, elapsed),
                        ``error`` (cell, error, traceback),
                        ``reject`` (cell, reason — code mismatch)
coordinator → worker    ``cell`` (cell, runner dotted path, params,
                        key, expected runner fingerprint), ``shutdown``
======================  ==============================================

Two code-equivalence guards keep a mixed-version fleet from poisoning
the content-addressed cache: a worker whose ``hello`` advertises a
different cache schema is refused outright, and every ``cell`` frame
carries the coordinator's runner *source fingerprint* — a worker whose
local checkout fingerprints differently **rejects** the cell instead of
computing a stale-code payload that would be stored under a
current-code key.  A rejecting worker is dropped like a dead one (its
cells requeue onto up-to-date survivors), so a partially upgraded fleet
degrades to the correct subset instead of corrupting results.

Failure isolation is per worker: a cell whose runner *raises* is a cell
failure (reported, never retried — a deterministic error would just
ping-pong); a worker that disconnects or stops heartbeating is declared
lost, and every cell in flight on it is requeued onto the survivors, so
killing a worker mid-sweep costs only the lost partial work.  Cells are
pure functions of their parameters, so requeueing cannot change results.
"""

from __future__ import annotations

import json
import os
import queue
import socket
import threading
import time
import traceback
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Iterator, Optional, Sequence

from repro.experiments.backends.events import (
    BackendEvent,
    CellFailed,
    CellFinished,
    CellProgress,
    CellStarted,
    CellTask,
    WorkerJoined,
    WorkerLost,
)
from repro.experiments.backends.invoke import execute_task
from repro.experiments.fingerprint import runner_fingerprint
from repro.utils.logging import get_logger

logger = get_logger("worker_pool")

#: Wire-protocol version, checked at the hello handshake; bump on any
#: incompatible frame change so mixed-version fleets fail fast and loud.
PROTOCOL_VERSION = 1

#: Seconds between worker heartbeat frames.
HEARTBEAT_INTERVAL = 1.0

#: Coordinator declares a silent worker lost after this many seconds.
HEARTBEAT_TIMEOUT = 10.0


def _write_frame(wfile, lock: threading.Lock, frame: dict[str, Any]) -> None:
    payload = json.dumps(frame, separators=(",", ":")) + "\n"
    with lock:
        wfile.write(payload)
        wfile.flush()


class _WorkerConn:
    """Coordinator-side state for one attached worker."""

    def __init__(self, conn: socket.socket) -> None:
        self.conn = conn
        self.rfile = conn.makefile("r", encoding="utf-8", newline="\n")
        self.wfile = conn.makefile("w", encoding="utf-8", newline="\n")
        self.send_lock = threading.Lock()
        self.name = "?"
        self.capacity = 1
        self.assigned: dict[int, CellTask] = {}
        self.last_seen = time.monotonic()
        self.lost = False

    def send(self, frame: dict[str, Any]) -> None:
        _write_frame(self.wfile, self.send_lock, frame)

    def close(self) -> None:
        try:
            self.conn.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.conn.close()
        except OSError:
            pass


class WorkerPoolBackend:
    """Dispatch cells over TCP to attached ``comdml worker serve`` processes.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read it back
        from :attr:`address`).  Binding happens in the constructor so the
        address is known before any worker needs it.
    jobs:
        Accepted for registry uniformity; parallelism is the sum of
        attached worker capacities, not a local setting.
    start_timeout:
        Seconds to wait for the *first* worker (and, later, for a
        replacement when every worker has died with cells pending)
        before giving up with a ``RuntimeError``.
    heartbeat_timeout:
        Seconds of silence after which a worker is declared lost.
    """

    name = "worker-pool"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        jobs: Optional[int] = None,
        start_timeout: float = 60.0,
        heartbeat_timeout: float = HEARTBEAT_TIMEOUT,
    ) -> None:
        del jobs
        self.start_timeout = start_timeout
        self.heartbeat_timeout = heartbeat_timeout
        self._server = socket.create_server((host, port))
        self._server.settimeout(0.2)
        self._closed = False

    @property
    def address(self) -> tuple[str, int]:
        """The ``(host, port)`` the coordinator is listening on."""
        host, port = self._server.getsockname()[:2]
        return host, port

    def close(self) -> None:
        """Stop listening (submit() calls this when the stream ends).

        The backend is single-use: once its stream has ended the listening
        socket is gone, so construct a fresh backend per campaign run.
        """
        self._closed = True
        try:
            self._server.close()
        except OSError:
            pass

    # ------------------------------------------------------------------
    def submit(self, tasks: Sequence[CellTask]) -> Iterator[BackendEvent]:
        if self._closed:
            raise RuntimeError(
                "this WorkerPoolBackend has already run a campaign and shut "
                "down its socket; construct a new backend per run"
            )
        if not tasks:
            self.close()
            return
        inbox: "queue.Queue[tuple]" = queue.Queue()
        stop = threading.Event()
        names_lock = threading.Lock()
        names_taken: set[str] = set()
        #: Every accepted connection, joined or not — all of them are closed
        #: when the stream ends so no worker is ever left blocking on a read.
        accepted_lock = threading.Lock()
        accepted: list[_WorkerConn] = []

        def reader(worker: _WorkerConn) -> None:
            try:
                hello = json.loads(worker.rfile.readline() or "null")
            except (OSError, ValueError):
                hello = None
            if not isinstance(hello, dict) or hello.get("type") != "hello":
                worker.close()
                return
            if hello.get("protocol") != PROTOCOL_VERSION:
                logger.warning(
                    "refusing worker %s: wire protocol %r != %d",
                    hello.get("worker"),
                    hello.get("protocol"),
                    PROTOCOL_VERSION,
                )
                worker.close()
                return
            base = str(hello.get("worker") or "worker")
            # Readers run concurrently: reserve the (deduplicated) name under
            # a lock so two same-named workers cannot shadow each other.
            with names_lock:
                worker.name = base
                suffix = 2
                while worker.name in names_taken:
                    worker.name = f"{base}#{suffix}"
                    suffix += 1
                names_taken.add(worker.name)
            worker.capacity = max(1, int(hello.get("capacity", 1)))
            inbox.put(("join", worker, None))
            try:
                for line in worker.rfile:
                    frame = json.loads(line)
                    inbox.put(("frame", worker, frame))
            except (OSError, ValueError) as error:
                inbox.put(("gone", worker, f"read error: {error}"))
                return
            inbox.put(("gone", worker, "disconnected"))

        def acceptor() -> None:
            while not stop.is_set():
                try:
                    conn, _ = self._server.accept()
                except socket.timeout:
                    continue
                except OSError:
                    return
                worker = _WorkerConn(conn)
                with accepted_lock:
                    accepted.append(worker)
                threading.Thread(target=reader, args=(worker,), daemon=True).start()

        threading.Thread(target=acceptor, daemon=True).start()

        pending: deque[CellTask] = deque(tasks)
        workers: dict[str, _WorkerConn] = {}
        completed: set[int] = set()
        done = 0
        total = len(tasks)
        last_worker_activity = time.monotonic()

        def dispatch(worker: _WorkerConn) -> list[BackendEvent]:
            events: list[BackendEvent] = []
            # A frame can be queued behind the drop that declared its sender
            # lost; dispatching onto the dead connection would strand cells
            # in its assigned map forever.
            if worker.lost:
                return events
            while pending and len(worker.assigned) < worker.capacity:
                task = pending.popleft()
                worker.assigned[task.index] = task
                try:
                    worker.send(
                        {
                            "type": "cell",
                            "cell": task.index,
                            "runner": task.dotted,
                            "params": task.params,
                            "key": task.key,
                            # The coordinator's view of the runner's code;
                            # a worker whose checkout fingerprints
                            # differently must reject rather than compute.
                            "fingerprint": runner_fingerprint(task.dotted),
                        }
                    )
                except OSError as error:
                    events.extend(drop(worker, f"send failed: {error}"))
                    return events
                events.append(
                    CellStarted(
                        index=task.index,
                        key=task.key,
                        params=task.params,
                        worker=worker.name,
                    )
                )
            return events

        def drop(worker: _WorkerConn, reason: str) -> list[BackendEvent]:
            if worker.lost:
                return []
            worker.lost = True
            worker.close()
            workers.pop(worker.name, None)
            requeued = tuple(sorted(worker.assigned))
            pending.extend(worker.assigned.values())
            worker.assigned.clear()
            logger.warning(
                "worker %s lost (%s); requeued %d cell(s)",
                worker.name,
                reason,
                len(requeued),
            )
            events: list[BackendEvent] = [
                WorkerLost(worker=worker.name, reason=reason, requeued=requeued)
            ]
            for survivor in list(workers.values()):
                events.extend(dispatch(survivor))
            return events

        def handle(worker: _WorkerConn, frame: dict[str, Any]) -> list[BackendEvent]:
            nonlocal done
            if worker.lost:
                # Late frame from a worker already declared lost: its cells
                # were requeued, so the (duplicate) outcome is ignored.
                return []
            worker.last_seen = time.monotonic()
            kind = frame.get("type")
            if kind == "heartbeat":
                return []
            if kind == "progress":
                index = int(frame.get("cell", -1))
                task = worker.assigned.get(index)
                if task is None:
                    return []
                return [
                    CellProgress(
                        index=index,
                        key=task.key,
                        fraction=float(frame.get("fraction", 0.0)),
                        message=str(frame.get("message", "")),
                        worker=worker.name,
                    )
                ]
            if kind == "reject":
                # The worker's checkout disagrees with ours about the
                # runner's code: requeue everything it holds (drop() does)
                # and cut it loose so it cannot poison the cache.
                return drop(
                    worker,
                    f"code mismatch: {frame.get('reason', 'runner fingerprint differs')}",
                )
            if kind in ("result", "error"):
                index = int(frame.get("cell", -1))
                task = worker.assigned.pop(index, None)
                events: list[BackendEvent] = []
                if task is not None and index not in completed:
                    completed.add(index)
                    done += 1
                    if kind == "result":
                        events.append(
                            CellFinished(
                                index=index,
                                key=task.key,
                                payload=frame.get("payload"),
                                elapsed_seconds=float(frame.get("elapsed", 0.0)),
                                worker=worker.name,
                            )
                        )
                    else:
                        events.append(
                            CellFailed(
                                index=index,
                                key=task.key,
                                error=str(frame.get("error", "cell failed")),
                                worker=worker.name,
                            )
                        )
                events.extend(dispatch(worker))
                return events
            logger.warning("ignoring unknown frame %r from %s", kind, worker.name)
            return []

        try:
            while done < total:
                try:
                    item = inbox.get(timeout=0.25)
                except queue.Empty:
                    item = None
                now = time.monotonic()
                if item is not None:
                    action, worker, detail = item
                    last_worker_activity = now
                    if action == "join":
                        workers[worker.name] = worker
                        worker.last_seen = now
                        yield WorkerJoined(worker=worker.name, capacity=worker.capacity)
                        for event in dispatch(worker):
                            yield event
                    elif action == "gone":
                        for event in drop(worker, detail or "disconnected"):
                            yield event
                    elif action == "frame":
                        for event in handle(worker, detail):
                            yield event
                for worker in list(workers.values()):
                    if now - worker.last_seen > self.heartbeat_timeout:
                        for event in drop(worker, "heartbeat timeout"):
                            yield event
                if not workers and done < total:
                    if now - last_worker_activity > self.start_timeout:
                        raise RuntimeError(
                            f"worker pool on {self.address[0]}:{self.address[1]} has "
                            f"no live workers after {self.start_timeout:.0f}s "
                            f"({total - done} cell(s) pending); start workers with "
                            f"'comdml worker serve --host {self.address[0]} "
                            f"--port {self.address[1]}'"
                        )
        finally:
            stop.set()
            # A worker whose 'join' is still queued in the inbox must get a
            # shutdown too; drain what the main loop never processed.
            while True:
                try:
                    action, worker, _ = inbox.get_nowait()
                except queue.Empty:
                    break
                if action == "join":
                    workers.setdefault(worker.name, worker)
            for worker in list(workers.values()):
                try:
                    worker.send({"type": "shutdown"})
                except OSError:
                    pass
            # Close every accepted connection (joined or not): readers
            # unblock and the attached serve_worker loops see EOF.
            with accepted_lock:
                for worker in accepted:
                    worker.close()
            self.close()


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

def _connect_with_retry(host: str, port: int, retry_seconds: float) -> socket.socket:
    deadline = time.monotonic() + retry_seconds
    while True:
        try:
            return socket.create_connection((host, port), timeout=10.0)
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.2)


def serve_worker(
    host: str,
    port: int,
    name: Optional[str] = None,
    capacity: int = 1,
    retry_seconds: float = 10.0,
    heartbeat_interval: float = HEARTBEAT_INTERVAL,
) -> int:
    """Attach to a coordinator and compute cells until it says shutdown.

    This is the body of ``comdml worker serve``; it retries the initial
    connection for ``retry_seconds`` (so workers may be started before
    the campaign), sends heartbeats from a background thread, streams
    per-cell progress frames, and returns the number of cells computed.
    """
    sock = _connect_with_retry(host, port, retry_seconds)
    sock.settimeout(None)
    worker_name = name or f"{socket.gethostname()}-{os.getpid()}"
    rfile = sock.makefile("r", encoding="utf-8", newline="\n")
    wfile = sock.makefile("w", encoding="utf-8", newline="\n")
    send_lock = threading.Lock()

    def send(frame: dict[str, Any]) -> None:
        _write_frame(wfile, send_lock, frame)

    stop = threading.Event()

    def heartbeats() -> None:
        while not stop.wait(heartbeat_interval):
            try:
                send({"type": "heartbeat"})
            except OSError:
                return

    threading.Thread(target=heartbeats, daemon=True).start()
    computed_lock = threading.Lock()
    computed = 0

    def forward_progress(event: CellProgress) -> None:
        try:
            send(
                {
                    "type": "progress",
                    "cell": event.index,
                    "fraction": event.fraction,
                    "message": event.message,
                }
            )
        except OSError:
            pass

    def run_cell(task: CellTask) -> None:
        nonlocal computed
        try:
            payload, elapsed = execute_task(
                task, progress=forward_progress, worker=worker_name
            )
        except BaseException as error:  # noqa: BLE001 - reported over the wire
            send(
                {
                    "type": "error",
                    "cell": task.index,
                    "error": f"{type(error).__name__}: {error}",
                    "traceback": traceback.format_exc(),
                }
            )
        else:
            send(
                {
                    "type": "result",
                    "cell": task.index,
                    "payload": payload,
                    "elapsed": elapsed,
                }
            )
            with computed_lock:
                computed += 1

    # capacity > 1 genuinely runs that many cells concurrently — the read
    # loop must keep draining frames while cells compute, so execution
    # moves to a thread pool and frame sends are serialised by send_lock.
    pool = ThreadPoolExecutor(max_workers=capacity) if capacity > 1 else None
    logger.info("worker %s attached to %s:%d", worker_name, host, port)
    try:
        # Inside the OSError guard: the coordinator may have gone away (or
        # never accepted us — e.g. a fully-cached run) between connect and
        # here, which surfaces as a reset on this first write.
        send(
            {
                "type": "hello",
                "worker": worker_name,
                "capacity": capacity,
                "protocol": PROTOCOL_VERSION,
            }
        )
        for line in rfile:
            frame = json.loads(line)
            kind = frame.get("type")
            if kind == "shutdown":
                break
            if kind != "cell":
                continue
            task = CellTask(
                index=int(frame["cell"]),
                params=dict(frame.get("params", {})),
                key=str(frame.get("key", "")),
                runner="",
                dotted=str(frame["runner"]),
            )
            expected = frame.get("fingerprint")
            if expected is not None:
                try:
                    local = runner_fingerprint(task.dotted)
                except Exception as error:  # noqa: BLE001 - treated as mismatch
                    local = f"unfingerprintable: {error}"
                if local != expected:
                    # Computing with different code would store a stale
                    # payload under the coordinator's current-code cache
                    # key; bow out and let an up-to-date worker take it.
                    send(
                        {
                            "type": "reject",
                            "cell": task.index,
                            "reason": (
                                f"local fingerprint of {task.dotted} differs "
                                "(worker checkout out of date?)"
                            ),
                        }
                    )
                    break
            if pool is not None:
                pool.submit(run_cell, task)
            else:
                run_cell(task)
    except (OSError, ValueError):
        pass
    finally:
        if pool is not None:
            pool.shutdown(wait=True)
        stop.set()
        try:
            sock.close()
        except OSError:
            pass
    logger.info("worker %s detached after %d cell(s)", worker_name, computed)
    return computed
