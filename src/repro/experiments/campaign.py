"""Declarative campaign engine: parallel, cached, resumable experiment sweeps.

Every result in the paper is a grid — Tables I–III and Figures 1/3 sweep
method × dataset × model × agent-count × seed — and so is every ablation.
Instead of each harness hand-rolling its own serial loop, a
:class:`CampaignSpec` *declares* the grid (a set of named axes over a base
configuration) and a :class:`CampaignExecutor` executes its cells:

* **expansion** — :meth:`CampaignSpec.expand` materialises the Cartesian
  product of the axes into per-cell parameter dictionaries, in a
  deterministic order (axes vary right-to-left, like nested loops);
* **execution** — cells run on a pluggable
  :class:`~repro.experiments.backends.ExecutionBackend` (``serial``,
  ``thread``, ``process``, or the multi-host ``worker-pool``); backends
  stream typed events (``cell_started`` … ``worker_lost``) that the
  executor forwards to an optional ``on_event`` consumer, e.g. the live
  renderer in :mod:`repro.experiments.reporting`.  Because every cell is
  a pure function of its parameters (each carries its own seed), results
  are byte-identical regardless of backend, worker count, or completion
  order;
* **memoisation** — each finished cell is written to an on-disk
  content-addressed cache keyed by a stable hash of the cell parameters
  plus the *runner's source fingerprint*
  (:mod:`repro.experiments.fingerprint`), so re-running a campaign (or
  resuming one after an interruption) skips every cached cell — and a
  release or an edit to an unrelated module leaves the cache warm.

A cell is ``(runner, params)``: ``runner`` names an entry of
:data:`CELL_RUNNERS` (a dotted ``module:function`` path, resolved lazily so
experiment modules can both *use* the engine and *register* runners without
import cycles) and ``params`` is a JSON dictionary the runner receives as
keyword arguments.  Runners must return JSON-serialisable payloads — the
experiment modules keep thin post-processors that turn payloads back into
their result dataclasses.

>>> spec = CampaignSpec.create(
...     name="demo", runner="table2-cell",
...     axes={"dataset": ("cifar10", "cifar100"), "method": ("ComDML", "FedAvg")},
...     base={"seed": 0},
... )
>>> len(spec.expand())
4
>>> spec.expand()[1]["dataset"], spec.expand()[1]["method"]
('cifar10', 'FedAvg')
>>> CampaignSpec.from_json(spec.to_json()) == spec
True
"""

from __future__ import annotations

import hashlib
import importlib
import json
import os
import re
import tempfile
import time
from collections import Counter
from dataclasses import dataclass, field
from itertools import product
from pathlib import Path
from typing import Any, Callable, Mapping, Optional, Sequence, Union

from repro.experiments.backends import (
    CellCached,
    CellFailed,
    CellFinished,
    CellTask,
    ExecutionBackend,
    create_backend,
    resolve_dotted,
)
from repro.experiments.fingerprint import runner_fingerprint
from repro.utils.logging import get_logger
from repro.version import __version__

logger = get_logger("campaign")

#: Bumped whenever the cell/payload contract changes incompatibly; part of
#: every cache key, so stale entries can never be served to new code.
#: (2: package-version key component replaced by runner source fingerprints.)
CACHE_SCHEMA_VERSION = 2

#: Default on-disk cache location (relative to the working directory).
DEFAULT_CACHE_DIR = ".comdml-cache"

#: Environment variable naming the default cache root; an explicit
#: ``--cache-dir`` always wins (see :func:`resolve_cache_dir`).
CACHE_DIR_ENV = "COMDML_CACHE_DIR"

#: Cache layout patterns: two-hex-digit shard directories holding
#: ``<sha256 hex>.json`` entry files (plus quarantined ``*.corrupt``
#: siblings awaiting ``clean``).
_HEX2_RE = re.compile(r"[0-9a-f]{2}")
_KEY_FILE_RE = re.compile(r"[0-9a-f]{64}\.json")
_CORRUPT_FILE_RE = re.compile(r"[0-9a-f]{64}\.json\.corrupt")

#: Registered cell runners: name -> dotted "module:function" path.  The
#: indirection keeps this module import-light and cycle-free; workers
#: resolve the callable lazily inside the subprocess.
CELL_RUNNERS: dict[str, str] = {
    "table1-setting": "repro.experiments.table1:run_campaign_cell",
    "table2-cell": "repro.experiments.table2:run_campaign_cell",
    "table3-cell": "repro.experiments.table3:run_campaign_cell",
    "fig1-timeline": "repro.experiments.fig1:run_campaign_cell",
    "fig3-bar": "repro.experiments.fig3:run_campaign_cell",
    "privacy-mechanism": "repro.experiments.privacy:run_campaign_cell",
    "compare-method": "repro.experiments.comparison:run_campaign_cell",
    "ablation-granularity": "repro.experiments.ablations:granularity_cell",
    "ablation-heterogeneity": "repro.experiments.ablations:heterogeneity_cell",
    "ablation-pairing": "repro.experiments.ablations:pairing_cell",
    "ablation-allreduce": "repro.experiments.ablations:allreduce_cell",
    "demo-cell": "repro.experiments.backends.demo:demo_cell",
}

#: Campaign presets the CLI can run by name: name -> dotted path of a
#: module-level :class:`CampaignPreset`.
CAMPAIGN_PRESETS: dict[str, str] = {
    "table1": "repro.experiments.table1:CAMPAIGN_PRESET",
    "table2": "repro.experiments.table2:CAMPAIGN_PRESET",
    "table3": "repro.experiments.table3:CAMPAIGN_PRESET",
    "fig1": "repro.experiments.fig1:CAMPAIGN_PRESET",
    "fig3": "repro.experiments.fig3:CAMPAIGN_PRESET",
    "privacy": "repro.experiments.privacy:CAMPAIGN_PRESET",
    "ablation-granularity": "repro.experiments.ablations:GRANULARITY_PRESET",
    "ablation-heterogeneity": "repro.experiments.ablations:HETEROGENEITY_PRESET",
    "ablation-pairing": "repro.experiments.ablations:PAIRING_PRESET",
    "ablation-allreduce": "repro.experiments.ablations:ALLREDUCE_PRESET",
}


def register_cell_runner(name: str, dotted_path: str) -> None:
    """Register (or override) a cell runner under ``name``.

    ``dotted_path`` must be a ``"package.module:function"`` reference to a
    module-level callable taking the cell parameters as keyword arguments.
    """
    if ":" not in dotted_path:
        raise ValueError(
            f"runner path must look like 'module:function', got {dotted_path!r}"
        )
    CELL_RUNNERS[name] = dotted_path


def resolve_runner(name: str) -> Callable[..., Any]:
    """Import and return the callable registered under ``name``."""
    try:
        dotted = CELL_RUNNERS[name]
    except KeyError:
        raise KeyError(
            f"unknown cell runner {name!r}; expected one of {sorted(CELL_RUNNERS)}"
        ) from None
    return resolve_dotted(dotted)


def resolve_preset(name: str) -> "CampaignPreset":
    """Import and return the :class:`CampaignPreset` registered under ``name``."""
    try:
        dotted = CAMPAIGN_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown campaign {name!r}; expected one of {sorted(CAMPAIGN_PRESETS)}"
        ) from None
    module_name, _, attribute = dotted.partition(":")
    module = importlib.import_module(module_name)
    return getattr(module, attribute)


def run_cell(runner: str, params: Mapping[str, Any]) -> Any:
    """Execute one cell in-process and return its JSON payload."""
    return resolve_runner(runner)(**params)


def resolve_cache_dir(
    explicit: Optional[str] = None, fallback: Optional[str] = None
) -> Optional[str]:
    """Pick the cache root: explicit flag > ``$COMDML_CACHE_DIR`` > fallback.

    Lets CI and multi-user hosts redirect every command's cache without
    threading ``--cache-dir`` through each invocation.
    """
    if explicit is not None:
        return explicit
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return env
    return fallback


# ----------------------------------------------------------------------
# Spec
# ----------------------------------------------------------------------

def _freeze(value: Any) -> Any:
    """Recursively turn lists into tuples so spec fields are immutable."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    return value


def _thaw(value: Any) -> Any:
    """Recursively turn tuples back into lists for JSON/params payloads."""
    if isinstance(value, tuple):
        return [_thaw(item) for item in value]
    return value


@dataclass(frozen=True)
class CampaignSpec:
    """Declarative description of one experiment sweep.

    Attributes
    ----------
    name:
        Human-readable campaign name (used in reports and summaries).
    runner:
        Key into :data:`CELL_RUNNERS` naming the function every cell runs.
    axes:
        Ordered ``(axis name, values)`` pairs; the grid is their Cartesian
        product, varying the *last* axis fastest (nested-loop order).
    base:
        ``(key, value)`` pairs merged into every cell's parameters.  An
        axis of the same name overrides a base entry.

    Build instances with :meth:`create`, which normalises plain mappings
    and sequences into the hashable tuple form stored here.
    """

    name: str
    runner: str
    axes: tuple[tuple[str, tuple], ...] = ()
    base: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("campaign name must be non-empty")
        if not self.runner:
            raise ValueError("campaign runner must be non-empty")
        seen: set[str] = set()
        for axis, values in self.axes:
            if axis in seen:
                raise ValueError(f"duplicate axis {axis!r}")
            seen.add(axis)
            if not values:
                raise ValueError(f"axis {axis!r} has no values")

    @classmethod
    def create(
        cls,
        name: str,
        runner: str,
        axes: Optional[Mapping[str, Sequence[Any]]] = None,
        base: Optional[Mapping[str, Any]] = None,
    ) -> "CampaignSpec":
        """Build a spec from plain mappings (axis order = mapping order)."""
        return cls(
            name=name,
            runner=runner,
            axes=tuple(
                (axis, tuple(_freeze(v) for v in values))
                for axis, values in (axes or {}).items()
            ),
            base=tuple((key, _freeze(value)) for key, value in (base or {}).items()),
        )

    # ------------------------------------------------------------------
    @property
    def axes_dict(self) -> dict[str, tuple]:
        """Axes as an ordered dictionary."""
        return dict(self.axes)

    @property
    def base_dict(self) -> dict[str, Any]:
        """Base parameters as a dictionary."""
        return dict(self.base)

    @property
    def num_cells(self) -> int:
        """Number of cells the grid expands to."""
        count = 1
        for _, values in self.axes:
            count *= len(values)
        return count

    def expand(self) -> tuple[dict[str, Any], ...]:
        """Materialise the grid into per-cell parameter dictionaries.

        Cells are ordered like nested loops over the axes in declaration
        order (first axis outermost), which keeps the expansion — and
        therefore every report built from it — deterministic.  Tuple values
        are thawed back into lists so parameters survive a JSON round trip
        unchanged.
        """
        names = [axis for axis, _ in self.axes]
        value_lists = [values for _, values in self.axes]
        cells = []
        for combination in product(*value_lists):
            params = dict(self.base)
            params.update(zip(names, combination))
            cells.append({key: _thaw(value) for key, value in params.items()})
        return tuple(cells)

    # ------------------------------------------------------------------
    def to_json(self) -> dict[str, Any]:
        """JSON-serialisable representation (inverse of :meth:`from_json`)."""
        return {
            "schema": CACHE_SCHEMA_VERSION,
            "name": self.name,
            "runner": self.runner,
            "axes": [[axis, _thaw(list(values))] for axis, values in self.axes],
            "base": {key: _thaw(value) for key, value in self.base},
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "CampaignSpec":
        """Rebuild a spec from :meth:`to_json` output."""
        return cls.create(
            name=payload["name"],
            runner=payload["runner"],
            axes={axis: values for axis, values in payload.get("axes", [])},
            base=payload.get("base", {}),
        )

    def save(self, path: str | Path) -> None:
        """Write the spec to a JSON file (parent directories are created)."""
        atomic_write_json(Path(path), self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> "CampaignSpec":
        """Read a spec from a JSON file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(json.load(handle))


@dataclass(frozen=True)
class CampaignPreset:
    """A named, CLI-runnable campaign: spec builder + result formatter."""

    #: Builds the campaign's :class:`CampaignSpec` (accepts overrides as kwargs).
    build_spec: Callable[..., CampaignSpec]
    #: Renders the finished :class:`CampaignResult` for the terminal.
    format_result: Callable[["CampaignResult"], str]


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------

def cell_key(runner: str, params: Mapping[str, Any]) -> str:
    """Stable content hash of one cell (parameters + runner code fingerprint).

    Any change to the cell parameters, the cache schema, or the source of
    the runner's module (including its intra-``repro`` import closure —
    see :mod:`repro.experiments.fingerprint`) yields a different key, so
    the cache can only ever serve results produced by equivalent code on
    an identical configuration.  Edits to *unrelated* modules — and
    version bumps — leave keys (and therefore warm caches) untouched.
    """
    dotted = CELL_RUNNERS.get(runner)
    fingerprint = runner_fingerprint(dotted) if dotted is not None else None
    canonical = json.dumps(
        {
            "schema": CACHE_SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "runner": runner,
            "params": params,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def atomic_write_json(
    target: Path, payload: Any, default: Optional[Callable[[Any], Any]] = None
) -> None:
    """Write JSON via a sibling temp file + ``os.replace`` (crash-safe).

    Parent directories are created; ``default`` is passed to ``json.dump``
    for non-JSON-native values.
    """
    target.parent.mkdir(parents=True, exist_ok=True)
    descriptor, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=target.name, suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, default=default)
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class CampaignCache:
    """Content-addressed on-disk store of finished cell payloads.

    Layout: ``<root>/<key[:2]>/<key>.json``, each file holding the cell's
    runner, parameters, payload, and the compute time of the original run.
    Entries are written atomically, so an interrupted campaign can never
    leave a truncated file behind — resume simply re-runs the missing keys.
    An entry that is unreadable anyway (e.g. a torn write on a filesystem
    without atomic replace) is *quarantined* — renamed to ``*.corrupt`` —
    so it is recomputed exactly once instead of re-parsed on every run;
    :meth:`clear` removes quarantined files along with live entries.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        """Cache file backing ``key``."""
        return self.root / key[:2] / f"{key}.json"

    def load(self, key: str) -> Optional[dict[str, Any]]:
        """Return the stored entry for ``key``, or ``None`` on a miss.

        A corrupt entry is treated as a miss and quarantined (renamed to
        ``<key>.json.corrupt``) so the next store overwrites a clean file
        and subsequent runs never re-parse the broken one.
        """
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError):
            logger.warning("quarantining unreadable cache entry %s", path)
            try:
                path.replace(path.with_name(path.name + ".corrupt"))
            except OSError:
                try:
                    path.unlink()
                except OSError:
                    pass
            return None

    def store(
        self,
        key: str,
        runner: str,
        params: Mapping[str, Any],
        payload: Any,
        elapsed_seconds: float,
    ) -> None:
        """Persist one finished cell atomically."""
        atomic_write_json(
            self.path_for(key),
            {
                "key": key,
                "runner": runner,
                "params": dict(params),
                "payload": payload,
                "elapsed_seconds": elapsed_seconds,
                "version": __version__,
            },
        )

    def _entries(self, include_corrupt: bool = False):
        """Paths of files matching the cache layout (``<hex2>/<hex64>.json``).

        Deliberately strict so that ``clear`` pointed at the wrong directory
        (``--cache-dir .``) can never delete spec files, exported results,
        or any other JSON that merely lives under the root.
        """
        if not self.root.exists():
            return
        for shard in self.root.iterdir():
            if not (shard.is_dir() and _HEX2_RE.fullmatch(shard.name)):
                continue
            for path in shard.iterdir():
                if _KEY_FILE_RE.fullmatch(path.name):
                    yield path
                elif include_corrupt and _CORRUPT_FILE_RE.fullmatch(path.name):
                    yield path

    def quarantined(self) -> list[Path]:
        """Quarantined (``*.corrupt``) files currently under the root."""
        return [
            path
            for path in self._entries(include_corrupt=True)
            if path.name.endswith(".corrupt")
        ]

    def clear(self) -> int:
        """Delete every cache entry (including quarantined ``*.corrupt``
        files); returns the number of files removed.

        Only files laid out like cache entries are touched — foreign files
        under the cache root are left alone.
        """
        removed = 0
        for path in self._entries(include_corrupt=True):
            path.unlink()
            removed += 1
        if self.root.exists():
            for shard in self.root.iterdir():
                if shard.is_dir() and _HEX2_RE.fullmatch(shard.name):
                    try:
                        shard.rmdir()
                    except OSError:
                        pass
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------

def cell_payload_digest(payload: Any) -> str:
    """sha256 of a cell payload's canonical JSON form.

    Computed once per cell as results stream in (cache hits included), so
    summary construction consumes digests instead of re-serialising every
    payload after the fact.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CellResult:
    """Outcome of one campaign cell."""

    index: int
    params: dict[str, Any]
    key: str
    status: str  # "hit" or "miss"
    payload: Any
    elapsed_seconds: float
    #: Canonical digest of ``payload``, stamped when the result is created;
    #: the campaign summary folds these through its audit chain.
    payload_digest: str = ""

    @property
    def cached(self) -> bool:
        """Whether the payload was served from the cache."""
        return self.status == "hit"


@dataclass
class CampaignResult:
    """All cell results of one campaign run, in expansion order."""

    spec: CampaignSpec
    cells: tuple[CellResult, ...]
    wall_seconds: float
    jobs: int
    cache_dir: Optional[str] = None
    backend: str = "serial"
    #: How many of each backend event kind the run produced (includes
    #: ``worker_joined``/``worker_lost`` for worker-pool runs).
    event_counts: dict[str, int] = field(default_factory=dict)

    @property
    def hits(self) -> int:
        """Number of cells served from the cache."""
        return sum(1 for cell in self.cells if cell.cached)

    @property
    def misses(self) -> int:
        """Number of cells computed in this run."""
        return len(self.cells) - self.hits

    @property
    def cell_seconds(self) -> float:
        """Total per-cell compute time (cached cells count their original cost)."""
        return sum(cell.elapsed_seconds for cell in self.cells)

    @property
    def speedup(self) -> float:
        """Wall-clock speedup over running every cell serially from scratch."""
        if self.wall_seconds <= 0:
            return float("inf")
        return self.cell_seconds / self.wall_seconds

    def payloads(self) -> list[Any]:
        """Cell payloads in deterministic expansion order."""
        return [cell.payload for cell in self.cells]


class CampaignExecutor:
    """Expands a :class:`CampaignSpec` and runs its cells on a backend.

    Parameters
    ----------
    spec:
        The campaign to execute.
    cache_dir:
        Root of the on-disk cell cache; ``None`` disables caching (every
        cell recomputes).
    jobs:
        Parallelism for the ``thread``/``process`` backends; ignored by
        ``serial`` and by ``worker-pool`` (whose parallelism is the sum
        of attached worker capacities).
    backend:
        An :class:`~repro.experiments.backends.ExecutionBackend` instance,
        a registered backend name, or ``None`` to pick the classic
        behaviour: ``process`` when ``jobs > 1`` and more than one cell
        needs computing, else ``serial`` (a single pending cell always
        runs inline — no pool spin-up on a warm resume).  Explicit
        backends are constructed eagerly, so a ``"worker-pool"`` string
        binds its socket here — read the address from
        :attr:`execution_backend` before :meth:`run` to attach workers
        (or construct the
        :class:`~repro.experiments.backends.WorkerPoolBackend` yourself).
    on_event:
        Optional callable receiving every
        :class:`~repro.experiments.backends.events.BackendEvent` as it
        happens (``cell_cached`` events for hits included) — the hook the
        live progress renderer plugs into.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        cache_dir: Optional[str | Path] = None,
        jobs: int = 1,
        backend: Union[ExecutionBackend, str, None] = None,
        on_event: Optional[Callable[[Any], None]] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if spec.runner not in CELL_RUNNERS:
            raise KeyError(
                f"unknown cell runner {spec.runner!r}; expected one of "
                f"{sorted(CELL_RUNNERS)}"
            )
        self.spec = spec
        self.jobs = jobs
        self.backend = backend
        #: The resolved backend instance for explicit selections; ``None``
        #: means "choose per run" (serial/process depending on workload).
        self.execution_backend: Optional[ExecutionBackend] = None
        if isinstance(backend, str):
            self.execution_backend = create_backend(backend, jobs=jobs)
        elif backend is not None:
            self.execution_backend = backend
        self.on_event = on_event
        self.cache = CampaignCache(cache_dir) if cache_dir is not None else None

    # ------------------------------------------------------------------
    def plan(self) -> list[tuple[int, dict[str, Any], str, Optional[dict[str, Any]]]]:
        """Expansion plus cache probe: ``(index, params, key, cached entry)``."""
        rows = []
        for index, params in enumerate(self.spec.expand()):
            key = cell_key(self.spec.runner, params)
            entry = self.cache.load(key) if self.cache is not None else None
            rows.append((index, params, key, entry))
        return rows

    def _resolve_backend(self, num_pending: int) -> ExecutionBackend:
        if self.execution_backend is not None:
            return self.execution_backend
        # Default selection: a pool only pays off for 2+ cells to compute;
        # a warm resume with one missing cell runs inline.
        name = "process" if self.jobs > 1 and num_pending > 1 else "serial"
        return create_backend(name, jobs=self.jobs)

    def run(
        self,
        force: bool = False,
        on_event: Optional[Callable[[Any], None]] = None,
    ) -> CampaignResult:
        """Execute the campaign and return per-cell results in grid order.

        ``force`` ignores (and overwrites) cached entries.  Interrupting a
        run is safe: finished cells are already on disk, so the next ``run``
        resumes by recomputing only the missing ones.  A failing cell does
        not abort the sweep — the remaining cells still execute (and reach
        the cache) before the first failure is re-raised, so a resumed run
        recomputes only the failed cells.
        """
        emit = on_event or self.on_event or (lambda event: None)
        started = time.perf_counter()
        plan = self.plan()
        results: dict[int, CellResult] = {}
        pending: list[CellTask] = []
        event_counts: Counter[str] = Counter()
        for index, params, key, entry in plan:
            if entry is not None and not force:
                elapsed = float(entry.get("elapsed_seconds", 0.0))
                results[index] = CellResult(
                    index=index,
                    params=params,
                    key=key,
                    status="hit",
                    payload=entry["payload"],
                    elapsed_seconds=elapsed,
                    payload_digest=cell_payload_digest(entry["payload"]),
                )
                event_counts["cell_cached"] += 1
                emit(CellCached(index=index, key=key, elapsed_seconds=elapsed))
            else:
                pending.append(
                    CellTask(
                        index=index,
                        params=params,
                        key=key,
                        runner=self.spec.runner,
                        dotted=CELL_RUNNERS[self.spec.runner],
                    )
                )

        backend = self._resolve_backend(len(pending))
        if pending:
            logger.info(
                "campaign %s: %d/%d cells to compute (%d cached), backend=%s jobs=%d",
                self.spec.name,
                len(pending),
                len(plan),
                len(plan) - len(pending),
                backend.name,
                self.jobs,
            )
        tasks_by_index = {task.index: task for task in pending}
        failures: list[CellFailed] = []
        # Submit even an empty pending list: backends that own resources
        # (the worker-pool's listening socket and attached workers) release
        # them on their empty-submit path, so a fully-cached run must not
        # leave a coordinator dangling.
        for event in backend.submit(pending):
            event_counts[event.kind] += 1
            if isinstance(event, CellFinished):
                task = tasks_by_index[event.index]
                if self.cache is not None:
                    self.cache.store(
                        task.key,
                        self.spec.runner,
                        task.params,
                        event.payload,
                        event.elapsed_seconds,
                    )
                results[event.index] = CellResult(
                    index=event.index,
                    params=task.params,
                    key=task.key,
                    status="miss",
                    payload=event.payload,
                    elapsed_seconds=event.elapsed_seconds,
                    payload_digest=cell_payload_digest(event.payload),
                )
            elif isinstance(event, CellFailed):
                logger.warning(
                    "cell %d (%s) failed: %s",
                    event.index,
                    event.key[:12],
                    event.error,
                )
                failures.append(event)
            emit(event)
        if failures:
            first = failures[0]
            if first.exception is not None:
                raise first.exception
            raise RuntimeError(
                f"cell {first.index} failed on backend {backend.name}: {first.error}"
            )

        return CampaignResult(
            spec=self.spec,
            cells=tuple(results[index] for index in sorted(results)),
            wall_seconds=time.perf_counter() - started,
            jobs=self.jobs,
            cache_dir=str(self.cache.root) if self.cache is not None else None,
            backend=backend.name,
            event_counts=dict(event_counts),
        )


def execute_campaign(
    spec: CampaignSpec,
    jobs: int = 1,
    cache_dir: Optional[str | Path] = None,
    force: bool = False,
    backend: Union[ExecutionBackend, str, None] = None,
    on_event: Optional[Callable[[Any], None]] = None,
) -> CampaignResult:
    """One-shot convenience wrapper around :class:`CampaignExecutor`."""
    return CampaignExecutor(
        spec, cache_dir=cache_dir, jobs=jobs, backend=backend, on_event=on_event
    ).run(force=force)
