"""Campaign cell runner for free-form method comparisons.

Everything ``comdml compare`` can express — scenario shape, execution mode,
quorum policy, and an optional :class:`~repro.runtime.dynamics.DynamicsSchedule`
— packaged as one campaign cell per method, so ad-hoc comparisons get the
same parallelism, caching, and resumability as the paper's tables.  The
cell payload carries the summary row the CLI prints *plus* the run's
:meth:`~repro.training.metrics.RunHistory.digest`, which is what the
determinism property (identical results for any ``--jobs``) asserts on.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.experiments.campaign import CampaignSpec
from repro.experiments.reporting import dynamics_annotation
from repro.experiments.runner import ExperimentRunner, PAPER_COMPARISON_METHODS
from repro.experiments.scenarios import ScenarioConfig
from repro.runtime.dynamics import DynamicsSchedule

#: ScenarioConfig fields a compare cell accepts verbatim.
_SCENARIO_FIELDS = (
    "num_agents",
    "dataset",
    "model",
    "iid",
    "topology",
    "link_fraction",
    "participation_fraction",
    "target_accuracy",
    "max_rounds",
    "offload_granularity",
    "churn_fraction",
    "churn_interval_rounds",
    "batch_size",
    "size_imbalance",
    "samples_per_agent",
    "execution_mode",
    "quorum_fraction",
    "quorum_policy",
    "quorum_deadline_factor",
    "seed",
)


def campaign_spec(
    methods: Sequence[str] = PAPER_COMPARISON_METHODS,
    schedule: Optional[dict[str, Any]] = None,
    **scenario: Any,
) -> CampaignSpec:
    """Declare a comparison campaign: one cell per method on one scenario.

    ``scenario`` keyword arguments are :class:`ScenarioConfig` fields;
    ``schedule`` is an optional serialized
    :class:`~repro.runtime.dynamics.DynamicsSchedule` (the cell builds a
    fresh live schedule per run, preserving one-schedule-per-run hygiene).
    """
    unknown = set(scenario) - set(_SCENARIO_FIELDS)
    if unknown:
        raise ValueError(f"unknown scenario fields: {sorted(unknown)}")
    base: dict[str, Any] = dict(scenario)
    if schedule is not None:
        base["schedule"] = schedule
    return CampaignSpec.create(
        name="compare",
        runner="compare-method",
        axes={"method": tuple(methods)},
        base=base,
    )


def run_campaign_cell(
    method: str,
    schedule: Optional[dict[str, Any]] = None,
    **scenario: Any,
) -> dict[str, Any]:
    """Run one method on the scenario and return its summary payload."""
    config = ScenarioConfig(**scenario)
    runner = ExperimentRunner(config)
    dynamics = (
        DynamicsSchedule.from_json(schedule) if schedule is not None else None
    )
    trainer = runner.build_method(method, dynamics=dynamics)
    history = trainer.run()
    trace = trainer.runtime.trace
    target = config.target_accuracy
    payload = {
        "method": method,
        "rounds": len(history),
        "time_to_target_s": history.time_to_accuracy(target) if target else None,
        "total_time_s": round(history.total_time, 1),
        "total_time_seconds": history.total_time,
        "final_accuracy": round(history.final_accuracy, 4),
        "events": dynamics_annotation(trace),
        "history_digest": history.digest(),
    }
    planner_report = getattr(trainer, "planner_report", None)
    if planner_report is not None:
        report = planner_report()
        if report is not None:
            payload["planner"] = report
    return payload


def speedups_from_payloads(
    payloads: Sequence[dict[str, Any]],
    target: Optional[float],
    reference_method: str = "ComDML",
) -> dict[str, float]:
    """Per-baseline speedup of the reference method, from cell payloads.

    Mirrors :func:`repro.experiments.reporting.speedup_over_baselines` but
    works on the JSON rows a compare campaign produces (time to target when
    the target was reached, total run time otherwise).
    """
    def effective_time(payload: dict[str, Any]) -> float:
        if target and payload.get("time_to_target_s") is not None:
            return payload["time_to_target_s"]
        return payload["total_time_seconds"]

    by_method = {payload["method"]: payload for payload in payloads}
    if reference_method not in by_method:
        raise KeyError(f"{reference_method!r} not present in payloads")
    reference_time = effective_time(by_method[reference_method])
    speedups: dict[str, float] = {}
    for method, payload in by_method.items():
        if method == reference_method:
            continue
        baseline_time = effective_time(payload)
        speedups[method] = (
            baseline_time / reference_time if reference_time > 0 else float("inf")
        )
    return speedups
