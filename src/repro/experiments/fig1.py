"""Figure 1 reproduction (illustrative): one round with and without balancing.

The paper's Figure 1 contrasts the per-round timeline of two heterogeneous
agents with and without workload balancing: without balancing, agent 2 sits
idle while agent 1 (the straggler) finishes; with balancing, agent 1 offloads
part of the model and both finish at roughly the same time, shortening the
round.  This harness produces the numeric timeline behind that picture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.agents.agent import Agent
from repro.agents.resources import ResourceProfile
from repro.core.profiling import profile_architecture
from repro.core.workload import best_offload, estimate_offload_time, individual_training_time
from repro.experiments.campaign import (
    CampaignPreset,
    CampaignResult,
    CampaignSpec,
)
from repro.models.resnet import resnet56_spec
from repro.utils.units import mbps_to_bytes_per_second


@dataclass(frozen=True)
class Fig1Timeline:
    """Round timeline with and without workload balancing."""

    slow_solo_time: float
    fast_solo_time: float
    round_time_without_balancing: float
    idle_without_balancing: float
    offloaded_layers: int
    slow_time_with_balancing: float
    fast_time_with_balancing: float
    communication_overhead: float
    round_time_with_balancing: float
    idle_with_balancing: float

    @property
    def round_time_reduction(self) -> float:
        """Absolute round-time reduction achieved by balancing."""
        return self.round_time_without_balancing - self.round_time_with_balancing

    @property
    def round_time_reduction_fraction(self) -> float:
        """Relative round-time reduction achieved by balancing."""
        if self.round_time_without_balancing == 0:
            return 0.0
        return self.round_time_reduction / self.round_time_without_balancing


def run_fig1(
    slow_cpu: float = 0.5,
    fast_cpu: float = 2.0,
    bandwidth_mbps: float = 50.0,
    samples_per_agent: int = 5_000,
    batch_size: int = 100,
    offload_granularity: int = 3,
) -> Fig1Timeline:
    """Compute the Figure 1 timeline for a configurable two-agent setting."""
    spec = resnet56_spec()
    profile = profile_architecture(spec, granularity=offload_granularity)
    bandwidth = mbps_to_bytes_per_second(bandwidth_mbps)

    slow_agent = Agent(
        agent_id=0,
        profile=ResourceProfile(cpu_share=slow_cpu, bandwidth_mbps=bandwidth_mbps),
        num_samples=samples_per_agent,
        batch_size=batch_size,
    )
    fast_agent = Agent(
        agent_id=1,
        profile=ResourceProfile(cpu_share=fast_cpu, bandwidth_mbps=bandwidth_mbps),
        num_samples=samples_per_agent,
        batch_size=batch_size,
    )

    slow_solo = individual_training_time(slow_agent, profile, batch_size)
    fast_solo = individual_training_time(fast_agent, profile, batch_size)
    round_without = max(slow_solo, fast_solo)
    idle_without = abs(slow_solo - fast_solo)

    estimate = best_offload(
        slow_agent=slow_agent,
        fast_agent=fast_agent,
        profile=profile,
        bandwidth_bytes_per_second=bandwidth,
    )

    return Fig1Timeline(
        slow_solo_time=slow_solo,
        fast_solo_time=fast_solo,
        round_time_without_balancing=round_without,
        idle_without_balancing=idle_without,
        offloaded_layers=estimate.offloaded_layers,
        slow_time_with_balancing=estimate.slow_time,
        fast_time_with_balancing=estimate.fast_chain_time,
        communication_overhead=estimate.communication_time,
        round_time_with_balancing=estimate.pair_time,
        idle_with_balancing=estimate.idle_time,
    )


# ----------------------------------------------------------------------
# Campaign integration: spec builder, cell runner, post-processor
# ----------------------------------------------------------------------

def campaign_spec(
    slow_cpu: float = 0.5,
    fast_cpu: float = 2.0,
    bandwidth_mbps: float = 50.0,
) -> CampaignSpec:
    """Declare the Figure 1 campaign (a single-cell grid).

    Sweeping the axes instead (e.g. ``slow_cpu`` over several values) turns
    the same runner into a heterogeneity sensitivity study.
    """
    return CampaignSpec.create(
        name="fig1",
        runner="fig1-timeline",
        axes={"slow_cpu": (slow_cpu,)},
        base={"fast_cpu": fast_cpu, "bandwidth_mbps": bandwidth_mbps},
    )


def run_campaign_cell(
    slow_cpu: float = 0.5,
    fast_cpu: float = 2.0,
    bandwidth_mbps: float = 50.0,
    samples_per_agent: int = 5_000,
    batch_size: int = 100,
    offload_granularity: int = 3,
) -> dict[str, Any]:
    """One balancing timeline as a JSON payload."""
    timeline = run_fig1(
        slow_cpu=slow_cpu,
        fast_cpu=fast_cpu,
        bandwidth_mbps=bandwidth_mbps,
        samples_per_agent=samples_per_agent,
        batch_size=batch_size,
        offload_granularity=offload_granularity,
    )
    return timeline.__dict__


def timelines_from_campaign(result: CampaignResult) -> list[Fig1Timeline]:
    """Post-process a finished Figure 1 campaign into its timelines."""
    return [Fig1Timeline(**payload) for payload in result.payloads()]


def format_fig1(timeline: Fig1Timeline) -> str:
    """Render the Figure 1 timeline the way the CLI reports it."""
    return "\n".join(
        [
            f"round without balancing : {timeline.round_time_without_balancing:10.1f} s",
            f"round with balancing    : {timeline.round_time_with_balancing:10.1f} s",
            f"offloaded layers        : {timeline.offloaded_layers:10d}",
            f"reduction               : {timeline.round_time_reduction_fraction:10.1%}",
        ]
    )


CAMPAIGN_PRESET = CampaignPreset(
    build_spec=campaign_spec,
    format_result=lambda result: "\n\n".join(
        format_fig1(timeline) for timeline in timelines_from_campaign(result)
    ),
)
