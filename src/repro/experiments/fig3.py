"""Figure 3 reproduction: limited connectivity (20 % of full-graph links).

50 agents connected by a random topology that keeps only 20 % of the
complete graph's links, on the three I.I.D. datasets.  The figure compares
total training time (to the same targets as Table II's I.I.D. columns)
across methods; ComDML's decentralized pairing keeps working because agents
only ever need to pair with a *connected* neighbour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.experiments.campaign import (
    CampaignPreset,
    CampaignResult,
    CampaignSpec,
    execute_campaign,
)
from repro.experiments.runner import ExperimentRunner, PAPER_COMPARISON_METHODS
from repro.experiments.scenarios import ScenarioConfig
from repro.experiments.table2 import TABLE2_TARGETS

#: Fraction of full-graph links retained in the random topology.
FIG3_LINK_FRACTION = 0.2

#: Number of agents in the Figure 3 experiment.
FIG3_NUM_AGENTS = 50


@dataclass(frozen=True)
class Fig3Bar:
    """One bar of Figure 3: a (dataset, method) total training time."""

    dataset: str
    method: str
    target_accuracy: float
    time_to_target_seconds: Optional[float]
    total_time_seconds: float
    final_accuracy: float


def run_fig3_dataset(
    dataset: str,
    methods: Sequence[str] = PAPER_COMPARISON_METHODS,
    num_agents: int = FIG3_NUM_AGENTS,
    link_fraction: float = FIG3_LINK_FRACTION,
    max_rounds: int = 1_800,
    participation_fraction: float = 0.2,
    samples_per_agent: int = 500,
    seed: int = 0,
) -> list[Fig3Bar]:
    """Run every method on one dataset under the limited-connectivity topology.

    The setting mirrors the 50-agent scalability experiments (fixed 500-sample
    shards, 20 % participation); ``max_rounds`` is generous so that even the
    slow-mixing gossip baseline reaches the target.
    """
    target = TABLE2_TARGETS[(dataset, True)]
    config = ScenarioConfig(
        num_agents=num_agents,
        dataset=dataset,
        model="resnet56",
        iid=True,
        topology="random",
        link_fraction=link_fraction,
        participation_fraction=participation_fraction,
        target_accuracy=target,
        max_rounds=max_rounds,
        offload_granularity=9,
        samples_per_agent=samples_per_agent,
        seed=seed,
    )
    runner = ExperimentRunner(config)
    results = runner.compare(list(methods))
    bars: list[Fig3Bar] = []
    for method, history in results.items():
        bars.append(
            Fig3Bar(
                dataset=dataset,
                method=method,
                target_accuracy=target,
                time_to_target_seconds=history.time_to_accuracy(target),
                total_time_seconds=history.total_time,
                final_accuracy=history.final_accuracy,
            )
        )
    return bars


# ----------------------------------------------------------------------
# Campaign integration: spec builder, cell runner, post-processor
# ----------------------------------------------------------------------

def campaign_spec(
    datasets: Sequence[str] = ("cifar10", "cifar100", "cinic10"),
    methods: Sequence[str] = PAPER_COMPARISON_METHODS,
    num_agents: int = FIG3_NUM_AGENTS,
    max_rounds: int = 1_800,
    seed: int = 0,
) -> CampaignSpec:
    """Declare the Figure 3 grid: dataset × method."""
    return CampaignSpec.create(
        name="fig3",
        runner="fig3-bar",
        axes={"dataset": tuple(datasets), "method": tuple(methods)},
        base={"num_agents": num_agents, "max_rounds": max_rounds, "seed": seed},
    )


def run_campaign_cell(
    dataset: str,
    method: str,
    num_agents: int = FIG3_NUM_AGENTS,
    max_rounds: int = 1_800,
    seed: int = 0,
) -> dict[str, Any]:
    """One (dataset, method) bar as a JSON payload."""
    [bar] = run_fig3_dataset(
        dataset=dataset,
        methods=(method,),
        num_agents=num_agents,
        max_rounds=max_rounds,
        seed=seed,
    )
    return bar.__dict__


def bars_from_campaign(result: CampaignResult) -> list[Fig3Bar]:
    """Post-process a finished Figure 3 campaign into its bars."""
    return [Fig3Bar(**payload) for payload in result.payloads()]


CAMPAIGN_PRESET = CampaignPreset(
    build_spec=campaign_spec,
    format_result=lambda result: format_fig3(bars_from_campaign(result)),
)


def run_fig3(
    datasets: Sequence[str] = ("cifar10", "cifar100", "cinic10"),
    methods: Sequence[str] = PAPER_COMPARISON_METHODS,
    num_agents: int = FIG3_NUM_AGENTS,
    max_rounds: int = 1_800,
    seed: int = 0,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    backend=None,
    on_event=None,
) -> list[Fig3Bar]:
    """Run the full Figure 3 series (all datasets, all methods)."""
    spec = campaign_spec(
        datasets=datasets,
        methods=methods,
        num_agents=num_agents,
        max_rounds=max_rounds,
        seed=seed,
    )
    result = execute_campaign(
        spec, jobs=jobs, cache_dir=cache_dir, backend=backend, on_event=on_event
    )
    return bars_from_campaign(result)


def format_fig3(bars: Sequence[Fig3Bar]) -> str:
    """Render the Figure 3 series as a dataset × method table of times."""
    datasets = list(dict.fromkeys(bar.dataset for bar in bars))
    methods = list(dict.fromkeys(bar.method for bar in bars))
    lookup = {(bar.dataset, bar.method): bar for bar in bars}
    header = "Method".ljust(18) + "".join(dataset.rjust(16) for dataset in datasets)
    lines = [header, "-" * len(header)]
    for method in methods:
        row = method.ljust(18)
        for dataset in datasets:
            bar = lookup.get((dataset, method))
            if bar is None or bar.time_to_target_seconds is None:
                row += "n/a".rjust(16)
            else:
                row += f"{bar.time_to_target_seconds:.0f}".rjust(16)
        lines.append(row)
    return "\n".join(lines)
