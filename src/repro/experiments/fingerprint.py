"""Per-runner source fingerprints for campaign cache keys.

The original cache key folded in the *package version*, so every release
— or any edit whatsoever once versions were bumped — invalidated every
cached cell.  A cell's payload actually depends only on the code that
runs it: the runner function's module and the ``repro`` modules that
module (transitively) imports.  This module computes exactly that —

``runner_fingerprint("pkg.mod:func")`` =
    sha256 over the sorted ``(module name, sha256(module source))``
    pairs of ``pkg.mod`` and its intra-``repro`` import closure.

Editing a module inside the closure changes the fingerprint (and hence
invalidates exactly the runners that can see it); editing an unrelated
module, or bumping ``repro.version.__version__``, changes nothing, so
caches stay warm across releases.

Imports are discovered *statically* (``ast`` over the module source) and
module names resolve to files via :func:`importlib.util.find_spec` — no
runner module is executed to be fingerprinted.  ``from x import y``
counts ``x.y`` only when it is itself a module; attribute imports fall
back to ``x``.  Conditional or ``TYPE_CHECKING`` imports are included —
over-approximating the closure only ever invalidates too much, never too
little.  Modules whose source cannot be found (C extensions, zipped
installs) contribute a version-based sentinel instead, restoring the old
whole-package behaviour for exactly those cells.

Ancestor package ``__init__`` modules *are* part of every closure: a
statement ``import repro.core.pairing`` executes ``repro/__init__.py``
and ``repro/core/__init__.py`` at import time, so their source is hashed
into the fingerprint of every closure that imports through them
(including ancestors of excluded engine modules — the exclusion is about
*their* content, not the packages they live in).  Their own imports are
**not** followed, though: hub ``__init__`` files re-export every harness,
and recursing through them would collapse the per-runner granularity this
module exists to provide.  The net effect is that a behaviour-changing
edit to a package ``__init__`` invalidates the caches that can see it —
no :data:`repro.experiments.campaign.CACHE_SCHEMA_VERSION` bump needed —
while editing a module that is merely *re-exported* by a hub still only
invalidates the runners that genuinely import it.  (The residual blind
spot is an ``__init__`` whose import-time *side effects* call into a
module nobody imports explicitly; that still needs a schema bump.)
"""

from __future__ import annotations

import ast
import hashlib
import json
from importlib import util as importlib_util
from pathlib import Path
from typing import Iterator, Optional

from repro.version import __version__

#: Only imports inside this package are part of a fingerprint closure.
ROOT_PACKAGE = "repro"

#: Modules excluded from every closure: their content cannot affect cell
#: payloads.  ``repro.version`` would re-create the exact "every release
#: invalidates everything" failure this module removes; the campaign
#: engine and backends orchestrate *around* cells (runners import
#: ``CampaignSpec`` for spec building only — payloads are stored
#: verbatim, never transformed by the engine), and they are the most
#: frequently edited modules, so including them would invalidate every
#: cache on every engine tweak.  Engine changes that *do* alter the
#: cell/payload contract must bump
#: :data:`repro.experiments.campaign.CACHE_SCHEMA_VERSION`, which is part
#: of every key.
EXCLUDED_MODULES = frozenset(
    {
        "repro.version",
        "repro.experiments.campaign",
        "repro.experiments.fingerprint",
    }
)

#: Package prefixes excluded wholesale (same rationale as above).
EXCLUDED_PREFIXES = ("repro.experiments.backends",)

_fingerprint_cache: dict[str, str] = {}
_closure_cache: dict[str, dict[str, str]] = {}


def clear_fingerprint_cache() -> None:
    """Forget memoised fingerprints (tests that edit sources need this)."""
    _fingerprint_cache.clear()
    _closure_cache.clear()


def _find_spec(module_name: str):
    try:
        return importlib_util.find_spec(module_name)
    except (ImportError, AttributeError, ValueError):
        return None


def _module_source(module_name: str) -> Optional[str]:
    """The module's source text, or ``None`` when unavailable."""
    spec = _find_spec(module_name)
    if spec is None or spec.origin in (None, "built-in", "frozen"):
        return None
    try:
        return Path(spec.origin).read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError):
        return None


def _is_package(module_name: str) -> bool:
    spec = _find_spec(module_name)
    return spec is not None and spec.submodule_search_locations is not None


def _resolve_relative(module_name: str, level: int, target: Optional[str]) -> Optional[str]:
    """Resolve a ``from ... import`` base for a relative import."""
    package_parts = module_name.split(".")
    if not _is_package(module_name):
        package_parts = package_parts[:-1]
    # level=1 is the current package; each extra level walks one parent up.
    if level - 1 >= len(package_parts):
        return None
    if level > 1:
        package_parts = package_parts[: -(level - 1)]
    base = ".".join(package_parts)
    if not base:
        return None
    return f"{base}.{target}" if target else base


def _imported_module_names(module_name: str, source: str) -> Iterator[str]:
    """Module names ``module_name`` imports, resolved absolute (best effort)."""
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = _resolve_relative(module_name, node.level, node.module)
            else:
                base = node.module
            if base is None:
                continue
            yield base
            for alias in node.names:
                if alias.name != "*":
                    yield f"{base}.{alias.name}"


def _ancestor_packages(module_name: str) -> Iterator[str]:
    """Proper ancestor package names of a dotted module name."""
    parts = module_name.split(".")
    for count in range(1, len(parts)):
        yield ".".join(parts[:count])


def _in_scope(module_name: str) -> bool:
    if not (
        module_name == ROOT_PACKAGE or module_name.startswith(ROOT_PACKAGE + ".")
    ):
        return False
    if module_name in EXCLUDED_MODULES:
        return False
    return not any(
        module_name == prefix or module_name.startswith(prefix + ".")
        for prefix in EXCLUDED_PREFIXES
    )


def module_source_closure(module_name: str) -> dict[str, str]:
    """``{module name: sha256(source)}`` for a module and its intra-``repro``
    import closure (plus the root module itself even when outside ``repro``,
    so custom runners registered from user packages are still fingerprinted).

    Ancestor package ``__init__`` modules of every name the walk touches
    are hashed into the closure too — importing a module executes them —
    but their own imports are not followed (see the module docstring).
    """
    if module_name in _closure_cache:
        return dict(_closure_cache[module_name])
    closure: dict[str, str] = {}
    queue = [module_name]
    seen = {module_name}
    #: Every ROOT_PACKAGE-scoped name the walk touched, including excluded
    #: imports: importing them still executes their package __init__s.
    touched = {module_name}
    while queue:
        current = queue.pop()
        source = _module_source(current)
        if source is None:
            # No source to hash — pin to the package version as a sentinel
            # so such modules behave like the pre-fingerprint cache did.
            closure[current] = f"unavailable:{__version__}"
            continue
        closure[current] = hashlib.sha256(source.encode("utf-8")).hexdigest()
        for imported in _imported_module_names(current, source):
            touched.add(imported)
            if imported in seen or not _in_scope(imported):
                continue
            # `from x import y` yields candidate x.y for attributes too;
            # keep only names that resolve to actual modules.
            if _find_spec(imported) is None:
                continue
            seen.add(imported)
            queue.append(imported)
    for name in sorted(touched):
        for ancestor in _ancestor_packages(name):
            if ancestor in closure or not _in_scope(ancestor):
                continue
            if _find_spec(ancestor) is None:
                continue
            source = _module_source(ancestor)
            closure[ancestor] = (
                f"unavailable:{__version__}"
                if source is None
                else hashlib.sha256(source.encode("utf-8")).hexdigest()
            )
    _closure_cache[module_name] = dict(closure)
    return closure


def source_fingerprint(module_name: str) -> str:
    """Stable hash of a module's source closure (order-independent)."""
    closure = module_source_closure(module_name)
    canonical = json.dumps(sorted(closure.items()), separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def runner_fingerprint(dotted: str) -> str:
    """Fingerprint of a ``"module:function"`` cell runner's code.

    Memoised per dotted path — a campaign probes the cache once per cell,
    and the closure walk (a dozen file reads) must not repeat per probe.
    """
    if dotted in _fingerprint_cache:
        return _fingerprint_cache[dotted]
    module_name = dotted.partition(":")[0]
    fingerprint = source_fingerprint(module_name)
    _fingerprint_cache[dotted] = fingerprint
    return fingerprint
