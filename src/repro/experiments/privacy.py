"""Privacy integration experiment (Section V-B-4).

The paper integrates three privacy mechanisms with ComDML and reports the
resulting model accuracy: distance correlation minimisation (α = 0.5), patch
shuffling, and differential privacy (Laplace, ε = 0.5), each at a small
accuracy cost relative to undefended training.

This harness runs real proxy-model training (small population, synthetic
CIFAR-10-like data) through the full ComDML pipeline — pairing, local-loss
split training, AllReduce averaging — once per privacy configuration, and
reports the final accuracies, mirroring the paper's comparison at reduced
scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.agents.registry import AgentRegistry
from repro.experiments.campaign import (
    CampaignPreset,
    CampaignResult,
    CampaignSpec,
    execute_campaign,
)
from repro.core.comdml import ComDML
from repro.core.config import ComDMLConfig
from repro.core.profiling import profile_architecture
from repro.data.partition import dirichlet_partition, iid_partition
from repro.data.synthetic import cifar10_like
from repro.models.proxy import ProxyModelFactory
from repro.models.resnet import resnet56_spec
from repro.privacy.differential_privacy import DifferentialPrivacy
from repro.privacy.distance_correlation import DistanceCorrelationDefense
from repro.privacy.patch_shuffle import PatchShuffle
from repro.training.accuracy import ProxyAccuracyTracker
from repro.utils.seeding import SeedSequenceFactory


@dataclass(frozen=True)
class PrivacyResult:
    """Outcome of one privacy configuration."""

    mechanism: str
    final_accuracy: float
    best_accuracy: float
    rounds: int
    total_time_seconds: float


def _build_population(
    num_agents: int,
    train_dataset,
    iid: bool,
    seeds: SeedSequenceFactory,
    batch_size: int,
):
    """Agents + per-agent shards over the synthetic dataset."""
    rng = seeds.generator("population")
    if iid:
        shards = iid_partition(train_dataset.labels, num_agents, seeds.generator("partition"))
    else:
        shards = dirichlet_partition(
            train_dataset.labels, num_agents, seeds.generator("partition"), alpha=0.5
        )
    sizes = [len(shard) for shard in shards]
    registry = AgentRegistry.build(
        num_agents=num_agents,
        rng=rng,
        samples_per_agent=sizes,
        batch_size=batch_size,
    )
    datasets = {
        agent_id: train_dataset.subset(shards[agent_id], f"agent{agent_id}")
        for agent_id in registry.ids
    }
    return registry, datasets


def run_privacy_configuration(
    mechanism: str,
    num_agents: int = 8,
    rounds: int = 12,
    batch_size: int = 50,
    train_samples: int = 2_400,
    test_samples: int = 800,
    iid: bool = True,
    seed: int = 0,
) -> PrivacyResult:
    """Run ComDML with one privacy mechanism and return its accuracy.

    ``mechanism`` is one of ``"none"``, ``"distance_correlation"``,
    ``"patch_shuffle"``, ``"differential_privacy"``.
    """
    seeds = SeedSequenceFactory(seed)
    train, test = cifar10_like(
        train_samples=train_samples, test_samples=test_samples, seed=seed
    )
    registry, datasets = _build_population(num_agents, train, iid, seeds, batch_size)

    spec = resnet56_spec()
    factory = ProxyModelFactory(
        spec=spec, input_features=train.num_features, num_blocks=4, width=48
    )

    activation_transform = None
    parameter_transform = None
    if mechanism == "distance_correlation":
        defense = DistanceCorrelationDefense(alpha=0.5, rng=seeds.generator("dcor"))
        activation_transform = defense.make_transform()
    elif mechanism == "patch_shuffle":
        activation_transform = PatchShuffle(num_patches=8, rng=seeds.generator("shuffle"))
    elif mechanism == "differential_privacy":
        mechanism_dp = DifferentialPrivacy(
            epsilon=0.5, delta=1e-5, clip_norm=1.0, rng=seeds.generator("dp")
        )
        parameter_transform = mechanism_dp
    elif mechanism != "none":
        raise ValueError(f"unknown privacy mechanism {mechanism!r}")

    tracker = ProxyAccuracyTracker(
        factory=factory,
        agent_datasets=datasets,
        test_dataset=test,
        batch_size=batch_size,
        seed=seed,
        activation_transform=activation_transform,
        parameter_transform=parameter_transform,
    )
    # A healthier learning rate than the paper's 0.001 is used because the
    # proxy model is far smaller than ResNet-56 and trains for few rounds.
    config = ComDMLConfig(
        max_rounds=rounds,
        learning_rate=0.03,
        batch_size=batch_size,
        offload_granularity=9,
        seed=seed,
    )
    comdml = ComDML(
        registry=registry,
        spec=spec,
        config=config,
        accuracy_tracker=tracker,
    )
    history = comdml.run()
    return PrivacyResult(
        mechanism=mechanism,
        final_accuracy=history.final_accuracy,
        best_accuracy=history.best_accuracy,
        rounds=len(history),
        total_time_seconds=history.total_time,
    )


# ----------------------------------------------------------------------
# Campaign integration: spec builder, cell runner, post-processor
# ----------------------------------------------------------------------

#: Mechanisms compared in the paper's Section V-B-4, in report order.
PRIVACY_MECHANISMS = (
    "none",
    "distance_correlation",
    "patch_shuffle",
    "differential_privacy",
)


def campaign_spec(
    mechanisms: tuple[str, ...] = PRIVACY_MECHANISMS,
    num_agents: int = 8,
    rounds: int = 12,
    seed: int = 0,
) -> CampaignSpec:
    """Declare the privacy comparison: one cell per mechanism."""
    return CampaignSpec.create(
        name="privacy",
        runner="privacy-mechanism",
        axes={"mechanism": tuple(mechanisms)},
        base={"num_agents": num_agents, "rounds": rounds, "seed": seed},
    )


def run_campaign_cell(
    mechanism: str,
    num_agents: int = 8,
    rounds: int = 12,
    seed: int = 0,
) -> dict[str, Any]:
    """One privacy configuration's outcome as a JSON payload."""
    result = run_privacy_configuration(
        mechanism, num_agents=num_agents, rounds=rounds, seed=seed
    )
    return result.__dict__


def results_from_campaign(result: CampaignResult) -> list[PrivacyResult]:
    """Post-process a finished privacy campaign into its results."""
    return [PrivacyResult(**payload) for payload in result.payloads()]


CAMPAIGN_PRESET = CampaignPreset(
    build_spec=campaign_spec,
    format_result=lambda result: format_privacy_results(
        results_from_campaign(result)
    ),
)


def run_privacy_comparison(
    mechanisms: tuple[str, ...] = PRIVACY_MECHANISMS,
    num_agents: int = 8,
    rounds: int = 12,
    seed: int = 0,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    backend=None,
    on_event=None,
) -> list[PrivacyResult]:
    """Run every privacy configuration and return the accuracy comparison."""
    spec = campaign_spec(
        mechanisms=tuple(mechanisms), num_agents=num_agents, rounds=rounds, seed=seed
    )
    result = execute_campaign(
        spec, jobs=jobs, cache_dir=cache_dir, backend=backend, on_event=on_event
    )
    return results_from_campaign(result)


def format_privacy_results(results: list[PrivacyResult]) -> str:
    """Render the privacy comparison as a small table."""
    lines = ["Mechanism                      Final acc   Best acc   Rounds"]
    lines.append("-" * len(lines[0]))
    for result in results:
        lines.append(
            f"{result.mechanism:<30} {result.final_accuracy:>9.3f} "
            f"{result.best_accuracy:>10.3f} {result.rounds:>8d}"
        )
    return "\n".join(lines)
