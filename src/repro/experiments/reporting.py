"""Result formatting helpers shared by the benchmark harnesses and examples.

Besides the aligned plain-text tables (:func:`format_table`) and the
speedup arithmetic the CLI prints, this module renders the runtime's
:class:`~repro.runtime.trace.EventTrace` for human consumption:
per-agent timelines (:func:`per_agent_timelines`,
:func:`format_agent_timeline`), a per-round dynamics summary
(:func:`format_dynamics_summary`), and the compact arrival/churn/departure
annotation string (:func:`dynamics_annotation`) shown as the ``events``
column of ``comdml compare``.  Campaign runs get two aggregation
surfaces with deliberately different guarantees:

* :func:`campaign_summary` — the *deterministic* result summary
  (per-cell payload digests and an overall campaign digest).  Its bytes
  are identical for the same spec regardless of backend, job count, or
  cache state, which is what the CI backend matrix asserts on.
* :func:`execution_report` — the *run-dependent* facts: backend, cache
  hit/miss counts, wall-clock time and speedup, per-cell status and
  timings, worker membership changes.

Live campaigns stream through :class:`CampaignProgressRenderer`, the
consumer for backend events (``cell_started``, ``cell_progress``,
``cell_finished``, ``cell_cached``, ``worker_joined``/``worker_lost``):
a refreshing status line on a TTY, one line per event otherwise.
"""

from __future__ import annotations

import hashlib
import json
import sys
from typing import TYPE_CHECKING, Any, Mapping, Optional, Sequence, TextIO

from repro.runtime.audit import ChainState
from repro.runtime.dynamics import DYNAMICS_KINDS
from repro.runtime.sinks import CallbackSink
from repro.runtime.trace import EventTrace, TraceEvent
from repro.training.metrics import RunHistory

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.experiments.campaign import CampaignResult

#: Trace kinds counted as scenario dynamics in annotations/summaries —
#: exactly the event kinds a DynamicsSchedule can produce.
DYNAMICS_TRACE_KINDS = DYNAMICS_KINDS


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    float_format: str = "{:.0f}",
) -> str:
    """Render a list of row dictionaries as an aligned plain-text table."""
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), max(len(cells[i]) for cells in rendered))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(widths[i]) for i, column in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join(
        "  ".join(cells[i].rjust(widths[i]) for i in range(len(columns)))
        for cells in rendered
    )
    return f"{header}\n{separator}\n{body}"


def time_to_target_or_total(history: RunHistory, target: Optional[float]) -> float:
    """Time to reach the target accuracy, falling back to the run's total time."""
    if target is not None:
        reached = history.time_to_accuracy(target)
        if reached is not None:
            return reached
    return history.total_time


def speedup_over_baselines(
    results: Mapping[str, RunHistory],
    target: Optional[float],
    reference_method: str = "ComDML",
) -> dict[str, float]:
    """Per-baseline speedup factor of the reference method (>1 means faster)."""
    if reference_method not in results:
        raise KeyError(f"{reference_method!r} not present in results")
    reference_time = time_to_target_or_total(results[reference_method], target)
    speedups: dict[str, float] = {}
    for method, history in results.items():
        if method == reference_method:
            continue
        baseline_time = time_to_target_or_total(history, target)
        speedups[method] = baseline_time / reference_time if reference_time > 0 else float("inf")
    return speedups


def reduction_percentage(reference_time: float, baseline_time: float) -> float:
    """Percentage reduction of the reference vs a baseline (the paper's "up to 71 %")."""
    if baseline_time <= 0:
        return 0.0
    return 100.0 * (1.0 - reference_time / baseline_time)


# ----------------------------------------------------------------------
# EventTrace rendering
# ----------------------------------------------------------------------

def _event_row(event: TraceEvent) -> dict[str, Any]:
    return {
        "t (s)": round(event.timestamp, 1),
        "round": event.round_index,
        "event": event.kind,
        "agents": ",".join(str(agent_id) for agent_id in event.agent_ids),
    }


def per_agent_timelines(trace: EventTrace) -> dict[int, list[dict[str, Any]]]:
    """JSON-serialisable per-agent timelines of a runtime trace.

    One chronological event list per agent the trace mentions; round-level
    events (``round_start``, ``quorum_reached``, …) carry no agent ids and
    are therefore not part of any per-agent timeline.
    """
    timelines: dict[int, list[dict[str, Any]]] = {
        agent_id: [] for agent_id in trace.agent_ids()
    }
    for event, payload in zip(trace, trace.to_dicts()):
        for agent_id in event.agent_ids:
            timelines[agent_id].append(payload)
    return timelines


def export_trace_json(trace: EventTrace, path: str) -> None:
    """Write the full trace plus per-agent timelines to a JSON file."""
    payload = {
        "events": trace.to_dicts(),
        "per_agent": per_agent_timelines(trace),
        "kind_counts": trace.kind_counts(),
        "dropped_events": trace.dropped_events,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)


def format_agent_timeline(
    trace: EventTrace, agent_id: int, max_rows: int = 30
) -> str:
    """One agent's chronological trace as an aligned plain-text table."""
    events = trace.for_agent(agent_id)
    rows = [_event_row(event) for event in events[:max_rows]]
    if not rows:
        return f"(no events for agent {agent_id})"
    table = format_table(rows, float_format="{:.1f}")
    if len(events) > max_rows:
        table += f"\n... and {len(events) - max_rows} more"
    return f"agent {agent_id} timeline\n{table}"


class StreamingTraceSummary:
    """Incremental trace consumer: summary figures without event retention.

    Attach via :meth:`sink` as an extra pipeline sink and the summary
    accumulates kind counts and per-round dynamics tallies *as the run
    executes* — memory stays O(rounds), so a capped (or even empty)
    in-memory view no longer limits reporting.  The rendering helpers
    (:func:`dynamics_annotation`, :func:`format_dynamics_summary`) accept a
    summary anywhere they accept a trace.
    """

    #: Kinds tallied per round (matches the dynamics summary table).
    TRACKED = DYNAMICS_TRACE_KINDS + (
        "unit_repriced",
        "unit_abandoned",
        "straggler_dropped",
    )

    def __init__(self) -> None:
        self.events = 0
        self._kind_counts: dict[str, int] = {}
        self.per_round: dict[int, dict[str, int]] = {}
        self._trace: Optional[EventTrace] = None

    def consume(self, event: TraceEvent) -> None:
        """Fold one event into the running summary."""
        self.events += 1
        self._kind_counts[event.kind] = self._kind_counts.get(event.kind, 0) + 1
        if event.kind in self.TRACKED:
            counts = self.per_round.setdefault(
                event.round_index, {kind: 0 for kind in self.TRACKED}
            )
            counts[event.kind] += 1

    def sink(self, name: str = "summary") -> CallbackSink:
        """The pipeline sink that feeds this summary."""
        return CallbackSink(self.consume, name=name)

    def bind(self, trace: EventTrace) -> "StreamingTraceSummary":
        """Remember the pipeline so :attr:`dropped_events` reflects it."""
        self._trace = trace
        return self

    @property
    def dropped_events(self) -> int:
        """Drop count of the bound pipeline (0 when unbound)."""
        return self._trace.dropped_events if self._trace is not None else 0

    def kind_counts(self) -> dict[str, int]:
        """Histogram of consumed event kinds."""
        return dict(self._kind_counts)


def dynamics_annotation(trace: "EventTrace | StreamingTraceSummary") -> str:
    """Compact arrival/churn/departure summary, e.g. ``"2 arr · 1 dep · 3 churn"``.

    Accepts an event trace or a :class:`StreamingTraceSummary`.  Returns
    ``"-"`` when there are no dynamics events, so the string can be used
    directly as a table cell.
    """
    counts = trace.kind_counts()
    parts = []
    for kind, label in (
        ("arrival", "arr"),
        ("departure", "dep"),
        ("churn", "churn"),
    ):
        if counts.get(kind, 0):
            parts.append(f"{counts[kind]} {label}")
    return " · ".join(parts) if parts else "-"


def _per_round_dynamics(
    trace: "EventTrace | StreamingTraceSummary",
) -> dict[int, dict[str, int]]:
    """Per-round dynamics tallies from a trace or a streaming summary."""
    if isinstance(trace, StreamingTraceSummary):
        return trace.per_round
    per_round: dict[int, dict[str, int]] = {}
    tracked = StreamingTraceSummary.TRACKED
    for event in trace:
        if event.kind not in tracked:
            continue
        counts = per_round.setdefault(event.round_index, {k: 0 for k in tracked})
        counts[event.kind] += 1
    return per_round


def format_dynamics_summary(trace: "EventTrace | StreamingTraceSummary") -> str:
    """Per-round table of dynamics events and their casualties.

    One row per round that saw an arrival, departure, churn, re-cost,
    abandoned unit or dropped straggler — the observability surface for
    :class:`~repro.runtime.dynamics.DynamicsSchedule` runs.  Accepts an
    event trace or a bound :class:`StreamingTraceSummary`.  When the trace
    pipeline dropped events (capacity, filters), the count is stated below
    the table — truncation is never silent.
    """
    per_round = _per_round_dynamics(trace)
    dropped = getattr(trace, "dropped_events", 0)
    suffix = (
        f"\n({dropped} trace events dropped by capacity/filters; "
        "tallies reflect retained events only)"
        if dropped
        else ""
    )
    if not per_round:
        return "(no dynamics events)" + suffix
    rows = [
        {
            "round": round_index,
            "arrivals": counts["arrival"],
            "departures": counts["departure"],
            "churn": counts["churn"],
            "repriced": counts["unit_repriced"],
            "abandoned": counts["unit_abandoned"],
            "dropped": counts["straggler_dropped"],
        }
        for round_index, counts in sorted(per_round.items())
    ]
    return format_table(rows) + suffix


# ----------------------------------------------------------------------
# Campaign-level aggregation
# ----------------------------------------------------------------------

def cell_label(params: Mapping[str, Any], axes: Sequence[str]) -> str:
    """Compact per-cell label built from the campaign's axis values."""
    if not axes:
        return "-"
    return ", ".join(f"{axis}={params.get(axis)}" for axis in axes)


def payload_digest(payload: Any) -> str:
    """sha256 of a cell payload's canonical JSON form."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def campaign_summary(result: "CampaignResult") -> dict[str, Any]:
    """The *deterministic* summary of a campaign's results.

    Contains only facts that are a pure function of the spec and the
    runner code — cell keys and payload digests, folded through the audit
    hash chain of :mod:`repro.runtime.audit` — and none of how the run
    happened (backend, jobs, cache state, timing: see
    :func:`execution_report`).  The CI backend matrix asserts these bytes
    are identical across ``serial``/``thread``/``process``/``worker-pool``.

    Each ``per_cell`` row carries its payload digest (streamed from the
    executor as results arrive, re-derived here as a fallback) plus the
    chain head after folding it in; ``digest`` is the final head, so
    :func:`repro.runtime.audit.verify_campaign_summary` localises any
    tampering to the exact first divergent cell.
    """
    axes = [axis for axis, _ in result.spec.axes]
    chain = ChainState()
    per_cell = []
    for cell in result.cells:
        digest = getattr(cell, "payload_digest", None) or payload_digest(
            cell.payload
        )
        per_cell.append(
            {
                "index": cell.index,
                "cell": cell_label(cell.params, axes),
                "key": cell.key,
                "payload_digest": digest,
                "chain": chain.update(digest),
            }
        )
    return {
        "name": result.spec.name,
        "runner": result.spec.runner,
        "cells": len(result.cells),
        "digest": chain.head,
        "per_cell": per_cell,
    }


def aggregate_planner_reports(
    payloads: Sequence[Any],
) -> Optional[dict[str, Any]]:
    """Fold per-cell planner stats into one campaign-wide view.

    Cells whose payload carries a ``"planner"`` dict (see
    :meth:`repro.core.comdml.ComDML.planner_report`) contribute to the
    aggregate: counters sum across cells (recursively, so the sharded
    planner's nested ``"shards"`` section folds the same way), while
    ``cost_spread_*`` fields — shard imbalance ratios, where only the
    worst observation matters — take the maximum.  Non-numeric fields
    (e.g. the per-run ``last_shard_costs`` split) are dropped.  Returns
    ``None`` when no cell reported planner stats.
    """

    def fold(report: Mapping[str, Any], into: dict[str, Any]) -> None:
        for key, value in report.items():
            if isinstance(value, Mapping):
                fold(value, into.setdefault(key, {}))
            elif isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            elif key.startswith("cost_spread"):
                into[key] = max(into.get(key, 0.0), value)
            else:
                into[key] = into.get(key, 0) + value

    aggregate: dict[str, Any] = {}
    reported = 0
    for payload in payloads:
        if isinstance(payload, Mapping) and isinstance(
            payload.get("planner"), Mapping
        ):
            fold(payload["planner"], aggregate)
            reported += 1
    if not reported:
        return None
    aggregate["cells_reporting"] = reported
    return aggregate


def execution_report(result: "CampaignResult") -> dict[str, Any]:
    """The *run-dependent* report of one campaign execution.

    Everything :func:`campaign_summary` deliberately leaves out: which
    backend ran the sweep, cache hit/miss counts, wall-clock time and
    speedup, per-cell status and compute time, for worker-pool
    runs how many workers joined and were lost mid-sweep, and — when
    cells report planner stats — the aggregated planner/shard counters
    (``planner`` key, see :func:`aggregate_planner_reports`).
    """
    counts = result.event_counts
    axes = [axis for axis, _ in result.spec.axes]
    return {
        "name": result.spec.name,
        "backend": result.backend,
        "jobs": result.jobs,
        "cache_dir": result.cache_dir,
        "cells": len(result.cells),
        "cache_hits": result.hits,
        "cache_misses": result.misses,
        "wall_seconds": result.wall_seconds,
        "cell_seconds": result.cell_seconds,
        "speedup": result.speedup,
        "workers_joined": counts.get("worker_joined", 0),
        "workers_lost": counts.get("worker_lost", 0),
        "events": dict(counts),
        "planner": aggregate_planner_reports(
            [cell.payload for cell in result.cells]
        ),
        "per_cell": [
            {
                "index": cell.index,
                "cell": cell_label(cell.params, axes),
                "status": cell.status,
                "elapsed_seconds": cell.elapsed_seconds,
                "key": cell.key[:12],
            }
            for cell in result.cells
        ],
    }


def format_campaign_summary(result: "CampaignResult", verbose: bool = False) -> str:
    """Render a campaign run: headline counters, plus per-cell rows if verbose."""
    report = execution_report(result)
    headline = (
        f"campaign {report['name']}: {report['cells']} cells "
        f"({report['cache_hits']} cached, {report['cache_misses']} computed) "
        f"in {report['wall_seconds']:.2f}s wall "
        f"[backend={report['backend']}, jobs={report['jobs']}, "
        f"{report['speedup']:.2f}x vs serial cold run]"
    )
    if report["workers_lost"]:
        headline += (
            f" · {report['workers_lost']} worker(s) lost, "
            f"{result.event_counts.get('worker_joined', 0)} joined"
        )
    lines = [headline]
    if verbose and report["per_cell"]:
        lines.append(format_table(report["per_cell"], float_format="{:.3f}"))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Live campaign progress
# ----------------------------------------------------------------------

class CampaignProgressRenderer:
    """Stream backend events to a terminal as the campaign executes.

    On a TTY (``live=True``) a single status line is redrawn in place —
    done/cached/failed counters, the number of in-flight cells, worker
    membership, and the latest progress message; worker joins/losses and
    cell failures still get a full line each so they survive in the
    scrollback.  On a non-TTY (CI logs, redirects) every event becomes
    one plain line.  Pass the instance as ``on_event`` to
    :class:`~repro.experiments.campaign.CampaignExecutor` and call
    :meth:`close` when the run returns.
    """

    def __init__(
        self,
        total_cells: int,
        name: str = "",
        axes: Sequence[str] = (),
        stream: Optional[TextIO] = None,
        live: Optional[bool] = None,
    ) -> None:
        self.total = total_cells
        self.name = name
        self.axes = list(axes)
        self.stream = stream if stream is not None else sys.stderr
        if live is None:
            live = bool(getattr(self.stream, "isatty", lambda: False)())
        self.live = live
        self.done = 0
        self.cached = 0
        self.failed = 0
        self.running: set[int] = set()
        self.workers: set[str] = set()
        self.lost_workers = 0
        self.last_message = ""
        self._labels: dict[int, str] = {}
        self._status_shown = False

    # ------------------------------------------------------------------
    def _label(self, index: int) -> str:
        return self._labels.get(index, f"#{index}")

    def _println(self, text: str) -> None:
        if self.live and self._status_shown:
            self.stream.write("\r\x1b[2K")
        self.stream.write(text + "\n")
        self._status_shown = False
        if self.live:
            self._render_status()
        self.stream.flush()

    def _render_status(self) -> None:
        finished = self.done + self.cached + self.failed
        parts = [
            f"{self.name or 'campaign'}: {finished}/{self.total}",
            f"{self.done} computed",
            f"{self.cached} cached",
        ]
        if self.failed:
            parts.append(f"{self.failed} FAILED")
        if self.running:
            parts.append(f"{len(self.running)} running")
        if self.workers or self.lost_workers:
            parts.append(f"workers {len(self.workers)} (+{self.lost_workers} lost)")
        if self.last_message:
            parts.append(self.last_message)
        self.stream.write("\r\x1b[2K" + " · ".join(parts))
        self._status_shown = True
        self.stream.flush()

    # ------------------------------------------------------------------
    def __call__(self, event: Any) -> None:
        kind = getattr(event, "kind", "")
        if kind == "cell_started":
            self._labels[event.index] = cell_label(event.params, self.axes)
            self.running.add(event.index)
            if not self.live:
                self._println(
                    f"[{self.name}] cell {event.index} started"
                    + (f" on {event.worker}" if event.worker else "")
                    + f" ({self._label(event.index)})"
                )
            else:
                self._render_status()
        elif kind == "cell_progress":
            self.last_message = (
                f"cell {event.index} {event.fraction * 100.0:.0f}%"
                + (f" {event.message}" if event.message else "")
            )
            if not self.live:
                self._println(f"[{self.name}] {self.last_message}")
            else:
                self._render_status()
        elif kind == "cell_finished":
            self.running.discard(event.index)
            self.done += 1
            if not self.live:
                self._println(
                    f"[{self.name}] cell {event.index} finished "
                    f"in {event.elapsed_seconds:.2f}s ({self._label(event.index)})"
                )
            else:
                self._render_status()
        elif kind == "cell_cached":
            self.cached += 1
            if not self.live:
                self._println(f"[{self.name}] cell {event.index} cached")
            else:
                self._render_status()
        elif kind == "cell_failed":
            self.running.discard(event.index)
            self.failed += 1
            self._println(
                f"[{self.name}] cell {event.index} FAILED: {event.error}"
            )
        elif kind == "worker_joined":
            self.workers.add(event.worker)
            self._println(
                f"[{self.name}] worker {event.worker} joined "
                f"(capacity {event.capacity})"
            )
        elif kind == "worker_lost":
            self.workers.discard(event.worker)
            self.lost_workers += 1
            for index in event.requeued:
                self.running.discard(index)
            requeued = (
                f"; requeued cells {', '.join(str(i) for i in event.requeued)}"
                if event.requeued
                else ""
            )
            self._println(
                f"[{self.name}] worker {event.worker} LOST ({event.reason}){requeued}"
            )

    def close(self) -> None:
        """Terminate the status line so the next print starts clean."""
        if self.live and self._status_shown:
            self.stream.write("\n")
            self._status_shown = False
            self.stream.flush()


def progress_renderer_for(
    spec: Any,
    enabled: Optional[bool] = None,
    stream: Optional[TextIO] = None,
) -> Optional[CampaignProgressRenderer]:
    """Build a renderer for a spec, honouring the ``--progress`` tri-state.

    ``enabled=None`` (auto) turns progress on only when the stream is a
    TTY — CI logs and redirected output stay clean unless ``--progress``
    is passed explicitly.  Returns ``None`` when progress is off.
    """
    out = stream if stream is not None else sys.stderr
    if enabled is None:
        enabled = bool(getattr(out, "isatty", lambda: False)())
    if not enabled:
        return None
    return CampaignProgressRenderer(
        total_cells=spec.num_cells,
        name=spec.name,
        axes=[axis for axis, _ in spec.axes],
        stream=out,
    )
