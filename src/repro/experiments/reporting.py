"""Result formatting helpers shared by the benchmark harnesses and examples.

Besides the aligned plain-text tables (:func:`format_table`) and the
speedup arithmetic the CLI prints, this module renders the runtime's
:class:`~repro.runtime.trace.EventTrace` for human consumption:
per-agent timelines (:func:`per_agent_timelines`,
:func:`format_agent_timeline`), a per-round dynamics summary
(:func:`format_dynamics_summary`), and the compact arrival/churn/departure
annotation string (:func:`dynamics_annotation`) shown as the ``events``
column of ``comdml compare``.  Campaign runs get their own aggregation
surface: :func:`campaign_summary` (per-cell status, cache hit/miss counts,
wall-clock speedup) and :func:`format_campaign_summary`.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Mapping, Optional, Sequence

from repro.runtime.dynamics import DYNAMICS_KINDS
from repro.runtime.trace import EventTrace, TraceEvent
from repro.training.metrics import RunHistory

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.experiments.campaign import CampaignResult

#: Trace kinds counted as scenario dynamics in annotations/summaries —
#: exactly the event kinds a DynamicsSchedule can produce.
DYNAMICS_TRACE_KINDS = DYNAMICS_KINDS


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    float_format: str = "{:.0f}",
) -> str:
    """Render a list of row dictionaries as an aligned plain-text table."""
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), max(len(cells[i]) for cells in rendered))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(widths[i]) for i, column in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join(
        "  ".join(cells[i].rjust(widths[i]) for i in range(len(columns)))
        for cells in rendered
    )
    return f"{header}\n{separator}\n{body}"


def time_to_target_or_total(history: RunHistory, target: Optional[float]) -> float:
    """Time to reach the target accuracy, falling back to the run's total time."""
    if target is not None:
        reached = history.time_to_accuracy(target)
        if reached is not None:
            return reached
    return history.total_time


def speedup_over_baselines(
    results: Mapping[str, RunHistory],
    target: Optional[float],
    reference_method: str = "ComDML",
) -> dict[str, float]:
    """Per-baseline speedup factor of the reference method (>1 means faster)."""
    if reference_method not in results:
        raise KeyError(f"{reference_method!r} not present in results")
    reference_time = time_to_target_or_total(results[reference_method], target)
    speedups: dict[str, float] = {}
    for method, history in results.items():
        if method == reference_method:
            continue
        baseline_time = time_to_target_or_total(history, target)
        speedups[method] = baseline_time / reference_time if reference_time > 0 else float("inf")
    return speedups


def reduction_percentage(reference_time: float, baseline_time: float) -> float:
    """Percentage reduction of the reference vs a baseline (the paper's "up to 71 %")."""
    if baseline_time <= 0:
        return 0.0
    return 100.0 * (1.0 - reference_time / baseline_time)


# ----------------------------------------------------------------------
# EventTrace rendering
# ----------------------------------------------------------------------

def _event_row(event: TraceEvent) -> dict[str, Any]:
    return {
        "t (s)": round(event.timestamp, 1),
        "round": event.round_index,
        "event": event.kind,
        "agents": ",".join(str(agent_id) for agent_id in event.agent_ids),
    }


def per_agent_timelines(trace: EventTrace) -> dict[int, list[dict[str, Any]]]:
    """JSON-serialisable per-agent timelines of a runtime trace.

    One chronological event list per agent the trace mentions; round-level
    events (``round_start``, ``quorum_reached``, …) carry no agent ids and
    are therefore not part of any per-agent timeline.
    """
    timelines: dict[int, list[dict[str, Any]]] = {
        agent_id: [] for agent_id in trace.agent_ids()
    }
    for event, payload in zip(trace, trace.to_dicts()):
        for agent_id in event.agent_ids:
            timelines[agent_id].append(payload)
    return timelines


def export_trace_json(trace: EventTrace, path: str) -> None:
    """Write the full trace plus per-agent timelines to a JSON file."""
    payload = {
        "events": trace.to_dicts(),
        "per_agent": per_agent_timelines(trace),
        "kind_counts": trace.kind_counts(),
        "dropped_events": trace.dropped_events,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)


def format_agent_timeline(
    trace: EventTrace, agent_id: int, max_rows: int = 30
) -> str:
    """One agent's chronological trace as an aligned plain-text table."""
    events = trace.for_agent(agent_id)
    rows = [_event_row(event) for event in events[:max_rows]]
    if not rows:
        return f"(no events for agent {agent_id})"
    table = format_table(rows, float_format="{:.1f}")
    if len(events) > max_rows:
        table += f"\n... and {len(events) - max_rows} more"
    return f"agent {agent_id} timeline\n{table}"


def dynamics_annotation(trace: EventTrace) -> str:
    """Compact arrival/churn/departure summary, e.g. ``"2 arr · 1 dep · 3 churn"``.

    Returns ``"-"`` when the trace holds no dynamics events, so the string
    can be used directly as a table cell.
    """
    counts = trace.kind_counts()
    parts = []
    for kind, label in (
        ("arrival", "arr"),
        ("departure", "dep"),
        ("churn", "churn"),
    ):
        if counts.get(kind, 0):
            parts.append(f"{counts[kind]} {label}")
    return " · ".join(parts) if parts else "-"


def format_dynamics_summary(trace: EventTrace) -> str:
    """Per-round table of dynamics events and their casualties.

    One row per round that saw an arrival, departure, churn, re-cost,
    abandoned unit or dropped straggler — the observability surface for
    :class:`~repro.runtime.dynamics.DynamicsSchedule` runs.
    """
    per_round: dict[int, dict[str, int]] = {}
    tracked = DYNAMICS_TRACE_KINDS + ("unit_repriced", "unit_abandoned", "straggler_dropped")
    for event in trace:
        if event.kind not in tracked:
            continue
        counts = per_round.setdefault(event.round_index, {k: 0 for k in tracked})
        counts[event.kind] += 1
    if not per_round:
        return "(no dynamics events)"
    rows = [
        {
            "round": round_index,
            "arrivals": counts["arrival"],
            "departures": counts["departure"],
            "churn": counts["churn"],
            "repriced": counts["unit_repriced"],
            "abandoned": counts["unit_abandoned"],
            "dropped": counts["straggler_dropped"],
        }
        for round_index, counts in sorted(per_round.items())
    ]
    return format_table(rows)


# ----------------------------------------------------------------------
# Campaign-level aggregation
# ----------------------------------------------------------------------

def cell_label(params: Mapping[str, Any], axes: Sequence[str]) -> str:
    """Compact per-cell label built from the campaign's axis values."""
    if not axes:
        return "-"
    return ", ".join(f"{axis}={params.get(axis)}" for axis in axes)


def campaign_summary(result: "CampaignResult") -> dict[str, Any]:
    """JSON-serialisable aggregation of one campaign run.

    Includes per-cell status (cache ``hit`` or computed ``miss``) and the
    executive numbers a resume/CI check needs: hit/miss counts, wall-clock
    time, accumulated per-cell compute time, and the resulting wall-clock
    speedup (>1 when parallelism and/or caching paid off).
    """
    axes = [axis for axis, _ in result.spec.axes]
    return {
        "name": result.spec.name,
        "runner": result.spec.runner,
        "cells": len(result.cells),
        "cache_hits": result.hits,
        "cache_misses": result.misses,
        "cache_dir": result.cache_dir,
        "jobs": result.jobs,
        "wall_seconds": result.wall_seconds,
        "cell_seconds": result.cell_seconds,
        "speedup": result.speedup,
        "per_cell": [
            {
                "index": cell.index,
                "cell": cell_label(cell.params, axes),
                "status": cell.status,
                "elapsed_seconds": cell.elapsed_seconds,
                "key": cell.key[:12],
            }
            for cell in result.cells
        ],
    }


def format_campaign_summary(result: "CampaignResult", verbose: bool = False) -> str:
    """Render a campaign run: headline counters, plus per-cell rows if verbose."""
    summary = campaign_summary(result)
    lines = [
        f"campaign {summary['name']}: {summary['cells']} cells "
        f"({summary['cache_hits']} cached, {summary['cache_misses']} computed) "
        f"in {summary['wall_seconds']:.2f}s wall "
        f"[jobs={summary['jobs']}, {summary['speedup']:.2f}x vs serial cold run]"
    ]
    if verbose and summary["per_cell"]:
        lines.append(
            format_table(summary["per_cell"], float_format="{:.3f}")
        )
    return "\n".join(lines)
