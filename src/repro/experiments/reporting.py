"""Result formatting helpers shared by the benchmark harnesses and examples."""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.training.metrics import RunHistory


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    float_format: str = "{:.0f}",
) -> str:
    """Render a list of row dictionaries as an aligned plain-text table."""
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), max(len(cells[i]) for cells in rendered))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(widths[i]) for i, column in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join(
        "  ".join(cells[i].rjust(widths[i]) for i in range(len(columns)))
        for cells in rendered
    )
    return f"{header}\n{separator}\n{body}"


def time_to_target_or_total(history: RunHistory, target: Optional[float]) -> float:
    """Time to reach the target accuracy, falling back to the run's total time."""
    if target is not None:
        reached = history.time_to_accuracy(target)
        if reached is not None:
            return reached
    return history.total_time


def speedup_over_baselines(
    results: Mapping[str, RunHistory],
    target: Optional[float],
    reference_method: str = "ComDML",
) -> dict[str, float]:
    """Per-baseline speedup factor of the reference method (>1 means faster)."""
    if reference_method not in results:
        raise KeyError(f"{reference_method!r} not present in results")
    reference_time = time_to_target_or_total(results[reference_method], target)
    speedups: dict[str, float] = {}
    for method, history in results.items():
        if method == reference_method:
            continue
        baseline_time = time_to_target_or_total(history, target)
        speedups[method] = baseline_time / reference_time if reference_time > 0 else float("inf")
    return speedups


def reduction_percentage(reference_time: float, baseline_time: float) -> float:
    """Percentage reduction of the reference vs a baseline (the paper's "up to 71 %")."""
    if baseline_time <= 0:
        return 0.0
    return 100.0 * (1.0 - reference_time / baseline_time)
