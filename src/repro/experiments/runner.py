"""Generic experiment runner.

Builds a training method (ComDML or a baseline) for a scenario, runs it on
its :class:`~repro.runtime.TrainingRuntime` (in whatever execution mode the
scenario configures — ``sync``, ``semi-sync`` or ``async``), and returns the
:class:`~repro.training.metrics.RunHistory`; :meth:`ExperimentRunner.run_method_with_trace`
additionally returns the runtime's per-agent
:class:`~repro.runtime.trace.EventTrace`.  The method registry maps the
names the paper's tables use to the implementing classes and their
learning-curve efficiency keys.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.baselines.allreduce_dml import AllReduceDML
from repro.baselines.braintorrent import BrainTorrent
from repro.baselines.fedavg import FedAvg
from repro.baselines.fedprox import FedProx
from repro.baselines.gossip import GossipLearning
from repro.core.comdml import ComDML
from repro.experiments.scenarios import Scenario, ScenarioConfig, build_scenario
from repro.runtime.dynamics import DynamicsSchedule
from repro.runtime.sinks import JSONLSink
from repro.runtime.trace import EventTrace
from repro.training.accuracy import AccuracyTracker
from repro.training.metrics import RunHistory

#: name → (class, learning-curve method key)
METHOD_REGISTRY = {
    "ComDML": (ComDML, "comdml"),
    "Gossip Learning": (GossipLearning, "gossip"),
    "BrainTorrent": (BrainTorrent, "braintorrent"),
    "AllReduce": (AllReduceDML, "allreduce"),
    "FedAvg": (FedAvg, "fedavg"),
    "FedProx": (FedProx, "fedprox"),
}

#: The methods compared in the paper's Tables II/III and Figure 3, in order.
PAPER_COMPARISON_METHODS = (
    "ComDML",
    "Gossip Learning",
    "BrainTorrent",
    "AllReduce",
    "FedAvg",
)


class ExperimentRunner:
    """Runs one or more training methods on a scenario."""

    def __init__(self, scenario: Scenario | ScenarioConfig) -> None:
        if isinstance(scenario, ScenarioConfig):
            scenario = build_scenario(scenario)
        self.scenario = scenario

    def build_method(
        self,
        method: str,
        accuracy_tracker: Optional[AccuracyTracker] = None,
        dynamics: Optional[DynamicsSchedule] = None,
        trace: Optional[EventTrace] = None,
    ):
        """Instantiate a training method for this scenario.

        A :class:`~repro.runtime.dynamics.DynamicsSchedule` may be passed to
        enable mid-round dynamics; since arrivals/departures mutate the
        topology, the method then receives its own copy so later methods on
        the same scenario start from the pristine graph.  Schedules carry
        concrete :class:`~repro.agents.agent.Agent` objects whose profiles
        the run mutates, so hand every method its *own* schedule (build a
        fresh one per call).
        """
        if method not in METHOD_REGISTRY:
            raise KeyError(
                f"unknown method {method!r}; expected one of {sorted(METHOD_REGISTRY)}"
            )
        cls, curve_key = METHOD_REGISTRY[method]
        tracker = (
            accuracy_tracker
            if accuracy_tracker is not None
            else self.scenario.curve_tracker(curve_key)
        )
        topology = (
            self.scenario.topology.copy()
            if dynamics is not None
            else self.scenario.topology
        )
        return cls(
            registry=self.scenario.fresh_registry(),
            spec=self.scenario.spec,
            config=self.scenario.comdml_config,
            topology=topology,
            accuracy_tracker=tracker,
            profile=self.scenario.profile,
            dynamics=dynamics,
            trace=trace,
        )

    def run_method(
        self,
        method: str,
        accuracy_tracker: Optional[AccuracyTracker] = None,
        dynamics: Optional[DynamicsSchedule] = None,
    ) -> RunHistory:
        """Run one method to completion and return its history."""
        trainer = self.build_method(method, accuracy_tracker, dynamics)
        return trainer.run()

    def run_method_with_trace(
        self,
        method: str,
        accuracy_tracker: Optional[AccuracyTracker] = None,
        dynamics: Optional[DynamicsSchedule] = None,
        trace: Optional[EventTrace] = None,
    ):
        """Run one method and return ``(history, event_trace)``."""
        trainer = self.build_method(method, accuracy_tracker, dynamics, trace)
        history = trainer.run()
        return history, trainer.runtime.trace

    def run_method_sealed(
        self,
        method: str,
        jsonl_path: str | Path,
        accuracy_tracker: Optional[AccuracyTracker] = None,
        dynamics: Optional[DynamicsSchedule] = None,
        segment_events: Optional[int] = None,
    ) -> RunHistory:
        """Run one method with a sealed JSONL trace sink, closing it after.

        The run's full event stream lands in ``jsonl_path`` as a
        hash-chained, sealed trace (see :mod:`repro.runtime.audit`) that
        ``comdml trace verify`` accepts; the in-memory view keeps the
        scenario's configured cap.  Returns the run history.
        """
        config = self.scenario.comdml_config
        sink = JSONLSink(
            jsonl_path,
            segment_events=segment_events
            if segment_events is not None
            else config.trace_segment_events,
        )
        trace = EventTrace(max_events=config.trace_max_events, sinks=(sink,))
        try:
            history, _ = self.run_method_with_trace(
                method, accuracy_tracker, dynamics, trace
            )
        finally:
            trace.close()
        return history

    def compare(self, methods: Optional[list[str]] = None) -> dict[str, RunHistory]:
        """Run several methods on identical copies of the scenario."""
        methods = list(methods) if methods is not None else list(PAPER_COMPARISON_METHODS)
        return {method: self.run_method(method) for method in methods}
