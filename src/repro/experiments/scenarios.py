"""Experiment scenario construction.

A :class:`ScenarioConfig` describes one experimental setting of the paper
(population size, dataset, model, data distribution, topology, participation
and churn); :func:`build_scenario` turns it into the concrete objects every
training method consumes: an agent registry with paper-profile resources, a
topology, an architecture spec/profile, and fresh accuracy trackers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.agents.registry import AgentRegistry
from repro.core.config import (
    ComDMLConfig,
    normalize_execution_mode,
    normalize_quorum_policy,
)
from repro.core.profiling import SplitProfile, profile_architecture
from repro.data.partition import partition_sizes
from repro.models.resnet import cifar_resnet_spec
from repro.models.spec import ArchitectureSpec
from repro.network.topology import (
    Topology,
    full_topology,
    random_topology,
    ring_topology,
)
from repro.training.accuracy import CurveAccuracyTracker
from repro.training.curves import LearningCurveModel, curve_preset_for
from repro.utils.seeding import SeedSequenceFactory
from repro.utils.validation import check_positive, check_probability

#: Total training-set sizes of the real datasets the synthetic stand-ins mirror.
DATASET_TRAIN_SIZES = {
    "cifar10": 50_000,
    "cifar100": 50_000,
    "cinic10": 90_000,
}

#: Number of classes per dataset.
DATASET_NUM_CLASSES = {
    "cifar10": 10,
    "cifar100": 100,
    "cinic10": 10,
}

#: Model name → CIFAR ResNet depth.
MODEL_DEPTHS = {
    "resnet56": 56,
    "resnet110": 110,
}


@dataclass(frozen=True)
class ScenarioConfig:
    """Declarative description of one experimental setting."""

    num_agents: int = 10
    dataset: str = "cifar10"
    model: str = "resnet56"
    iid: bool = True
    topology: str = "full"
    link_fraction: float = 1.0
    participation_fraction: float = 1.0
    target_accuracy: Optional[float] = None
    max_rounds: int = 600
    offload_granularity: int = 6
    churn_fraction: float = 0.0
    churn_interval_rounds: int = 100
    batch_size: int = 100
    size_imbalance: float = 0.0
    samples_per_agent: Optional[int] = None
    execution_mode: str = "sync"
    quorum_fraction: float = 0.8
    quorum_policy: str = "fixed"
    quorum_deadline_factor: float = 1.5
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive(self.num_agents, "num_agents")
        if self.dataset not in DATASET_TRAIN_SIZES:
            raise ValueError(
                f"unknown dataset {self.dataset!r}; expected one of "
                f"{sorted(DATASET_TRAIN_SIZES)}"
            )
        if self.model not in MODEL_DEPTHS:
            raise ValueError(
                f"unknown model {self.model!r}; expected one of {sorted(MODEL_DEPTHS)}"
            )
        if self.topology not in ("full", "ring", "random"):
            raise ValueError(
                f"topology must be 'full', 'ring' or 'random', got {self.topology!r}"
            )
        check_probability(self.link_fraction, "link_fraction")
        check_probability(self.participation_fraction, "participation_fraction")
        object.__setattr__(
            self, "execution_mode", normalize_execution_mode(self.execution_mode)
        )
        object.__setattr__(
            self, "quorum_policy", normalize_quorum_policy(self.quorum_policy)
        )

    def with_(self, **changes) -> "ScenarioConfig":
        """Return a modified copy of the config."""
        return replace(self, **changes)


@dataclass
class Scenario:
    """Concrete objects built from a :class:`ScenarioConfig`."""

    config: ScenarioConfig
    registry: AgentRegistry
    topology: Topology
    spec: ArchitectureSpec
    profile: SplitProfile
    comdml_config: ComDMLConfig
    seeds: SeedSequenceFactory = field(repr=False, default=None)

    def curve_tracker(self, method_key: str) -> CurveAccuracyTracker:
        """A fresh curve-based accuracy tracker for the given method."""
        preset = curve_preset_for(self.config.dataset, self.config.model)
        curve = LearningCurveModel(
            preset=preset,
            method=method_key,
            iid=self.config.iid,
            rng=self.seeds.generator(f"curve.{method_key}"),
        )
        return CurveAccuracyTracker(curve)

    def fresh_registry(self) -> AgentRegistry:
        """Rebuild the agent registry (identical profiles / sizes).

        Each training method mutates agent profiles through dynamic churn,
        so comparisons must hand every method its own copy of the population.
        """
        return _build_registry(self.config, self.seeds)


def _build_registry(config: ScenarioConfig, seeds: SeedSequenceFactory) -> AgentRegistry:
    rng = seeds.generator("population")
    if config.samples_per_agent is not None:
        # Fixed per-agent shard size (used by the scalability study, where the
        # population grows while each agent's local dataset stays the same).
        total_samples = config.samples_per_agent * config.num_agents
    else:
        total_samples = DATASET_TRAIN_SIZES[config.dataset]
    imbalance = config.size_imbalance if config.iid else max(config.size_imbalance, 0.3)
    sizes = partition_sizes(
        total_samples,
        config.num_agents,
        rng=seeds.generator("sizes"),
        imbalance=imbalance,
    )
    return AgentRegistry.build(
        num_agents=config.num_agents,
        rng=rng,
        samples_per_agent=sizes,
        batch_size=config.batch_size,
    )


def build_scenario(config: ScenarioConfig) -> Scenario:
    """Materialise a scenario: population, topology, spec, profile, run config."""
    seeds = SeedSequenceFactory(config.seed)
    registry = _build_registry(config, seeds)

    if config.topology == "full":
        topology = full_topology(registry.ids)
    elif config.topology == "ring":
        topology = ring_topology(registry.ids)
    else:
        topology = random_topology(
            registry.ids,
            link_fraction=config.link_fraction,
            rng=seeds.generator("topology"),
        )

    spec = cifar_resnet_spec(
        MODEL_DEPTHS[config.model],
        num_classes=DATASET_NUM_CLASSES[config.dataset],
    )
    profile = profile_architecture(spec, granularity=config.offload_granularity)

    comdml_config = ComDMLConfig(
        max_rounds=config.max_rounds,
        target_accuracy=config.target_accuracy,
        participation_fraction=config.participation_fraction,
        batch_size=config.batch_size,
        offload_granularity=config.offload_granularity,
        churn_fraction=config.churn_fraction,
        churn_interval_rounds=config.churn_interval_rounds,
        execution_mode=config.execution_mode,
        quorum_fraction=config.quorum_fraction,
        quorum_policy=config.quorum_policy,
        quorum_deadline_factor=config.quorum_deadline_factor,
        lr_plateau_factor=0.2 if config.num_agents <= 10 else 0.5,
        seed=config.seed,
    )

    return Scenario(
        config=config,
        registry=registry,
        topology=topology,
        spec=spec,
        profile=profile,
        comdml_config=comdml_config,
        seeds=seeds,
    )
