"""Table I reproduction: 2-agent training with varying layer offloading.

Two agents train ResNet-56 on CIFAR-10-scale shards to a 90 % target, with a
fixed number of layers offloaded from the slower to the faster agent.  Two
resource settings are evaluated:

* setting 1 — fast agent 2 CPUs, slow agent 0.25 CPU, 50 Mbps link;
* setting 2 — fast agent 2 CPUs, slow agent 1 CPU, 100 Mbps link.

For every offload choice the harness reports the fast agent's training time,
the communication time, the combined idle time and the total time, all summed
over the rounds needed to reach the target — the same four columns as the
paper's Table I.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.agents.agent import Agent
from repro.experiments.campaign import (
    CampaignPreset,
    CampaignResult,
    CampaignSpec,
    execute_campaign,
)
from repro.agents.resources import ResourceProfile
from repro.core.profiling import SplitProfile, profile_architecture
from repro.core.workload import estimate_offload_time
from repro.models.resnet import resnet56_spec
from repro.network.allreduce import allreduce_time
from repro.training.curves import LearningCurveModel, curve_preset_for
from repro.utils.units import mbps_to_bytes_per_second

#: The offload options listed in the paper's Table I.
TABLE1_OFFLOAD_OPTIONS = (0, 1, 10, 19, 28, 37, 46, 55)

#: Target accuracy of the Table I experiment.
TABLE1_TARGET_ACCURACY = 0.90


@dataclass(frozen=True)
class Table1Setting:
    """One resource setting (columns group) of Table I."""

    name: str
    fast_cpu: float
    slow_cpu: float
    bandwidth_mbps: float


TABLE1_SETTINGS = (
    Table1Setting("setting1", fast_cpu=2.0, slow_cpu=0.25, bandwidth_mbps=50.0),
    Table1Setting("setting2", fast_cpu=2.0, slow_cpu=1.0, bandwidth_mbps=100.0),
)


@dataclass(frozen=True)
class Table1Row:
    """One (offload, setting) cell group of Table I."""

    setting: str
    layers_offloaded: int
    fast_train_seconds: float
    communication_seconds: float
    idle_seconds: float
    total_seconds: float
    rounds: int


def _rounds_to_target(offloaded_layers: int, seed: int) -> int:
    """Rounds to 90 % accuracy (split training pays a small efficiency cost)."""
    preset = curve_preset_for("cifar10", "resnet56")
    method = "comdml" if offloaded_layers > 0 else "allreduce"
    curve = LearningCurveModel(preset=preset, method=method, iid=True, noise_scale=0.0)
    return curve.rounds_to_accuracy(TABLE1_TARGET_ACCURACY)


def run_setting(
    setting: Table1Setting,
    offload_options: tuple[int, ...] = TABLE1_OFFLOAD_OPTIONS,
    samples_per_agent: int = 25_000,
    batch_size: int = 100,
    seed: int = 0,
    profile: SplitProfile | None = None,
) -> list[Table1Row]:
    """Run one resource setting of Table I and return its rows."""
    spec = resnet56_spec()
    if profile is None:
        profile = profile_architecture(spec, offload_options=offload_options)
    bandwidth = mbps_to_bytes_per_second(setting.bandwidth_mbps)

    slow_agent = Agent(
        agent_id=0,
        profile=ResourceProfile(cpu_share=setting.slow_cpu, bandwidth_mbps=setting.bandwidth_mbps),
        num_samples=samples_per_agent,
        batch_size=batch_size,
    )
    fast_agent = Agent(
        agent_id=1,
        profile=ResourceProfile(cpu_share=setting.fast_cpu, bandwidth_mbps=setting.bandwidth_mbps),
        num_samples=samples_per_agent,
        batch_size=batch_size,
    )

    aggregation_per_round = allreduce_time(
        model_bytes=profile.full_model_bytes,
        num_agents=2,
        bottleneck_bandwidth_bytes_per_second=bandwidth,
        algorithm="halving_doubling",
    )

    rows: list[Table1Row] = []
    for offloaded in offload_options:
        estimate = estimate_offload_time(
            slow_agent=slow_agent,
            fast_agent=fast_agent,
            offloaded_layers=offloaded,
            profile=profile,
            bandwidth_bytes_per_second=bandwidth,
        )
        rounds = _rounds_to_target(offloaded, seed)
        fast_train = (estimate.fast_own_time + estimate.fast_offload_time) * rounds
        communication = (estimate.communication_time + aggregation_per_round) * rounds
        idle = estimate.idle_time * rounds
        total = (estimate.pair_time + aggregation_per_round) * rounds
        rows.append(
            Table1Row(
                setting=setting.name,
                layers_offloaded=offloaded,
                fast_train_seconds=fast_train,
                communication_seconds=communication,
                idle_seconds=idle,
                total_seconds=total,
                rounds=rounds,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Campaign integration: spec builder, cell runner, post-processor
# ----------------------------------------------------------------------

def campaign_spec(
    settings: Optional[Sequence[str]] = None,
    samples_per_agent: int = 25_000,
    seed: int = 0,
) -> CampaignSpec:
    """Declare the Table I grid: one cell per resource setting."""
    names = (
        tuple(settings)
        if settings is not None
        else tuple(setting.name for setting in TABLE1_SETTINGS)
    )
    return CampaignSpec.create(
        name="table1",
        runner="table1-setting",
        axes={"setting": names},
        base={"samples_per_agent": samples_per_agent, "seed": seed},
    )


def run_campaign_cell(
    setting: str,
    samples_per_agent: int = 25_000,
    seed: int = 0,
) -> dict[str, Any]:
    """One resource setting's full offload sweep as a JSON payload."""
    by_name = {entry.name: entry for entry in TABLE1_SETTINGS}
    try:
        resolved = by_name[setting]
    except KeyError:
        raise KeyError(
            f"unknown Table I setting {setting!r}; expected one of {sorted(by_name)}"
        ) from None
    rows = run_setting(resolved, samples_per_agent=samples_per_agent, seed=seed)
    return {"setting": setting, "rows": [row.__dict__ for row in rows]}


def results_from_campaign(result: CampaignResult) -> dict[str, list[Table1Row]]:
    """Post-process a finished Table I campaign into ``{setting: rows}``."""
    return {
        payload["setting"]: [Table1Row(**row) for row in payload["rows"]]
        for payload in result.payloads()
    }


CAMPAIGN_PRESET = CampaignPreset(
    build_spec=campaign_spec,
    format_result=lambda result: format_table1(results_from_campaign(result)),
)


def run_table1(
    samples_per_agent: int = 25_000,
    seed: int = 0,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    backend=None,
    on_event=None,
) -> dict[str, list[Table1Row]]:
    """Run both settings of Table I; returns ``{setting name: rows}``."""
    spec = campaign_spec(samples_per_agent=samples_per_agent, seed=seed)
    result = execute_campaign(
        spec, jobs=jobs, cache_dir=cache_dir, backend=backend, on_event=on_event
    )
    return results_from_campaign(result)


def format_table1(results: dict[str, list[Table1Row]]) -> str:
    """Render Table I in the paper's layout (one row per offload option)."""
    lines = [
        "Layers   | Setting 1: Train    Comm    Idle   Total | "
        "Setting 2: Train    Comm    Idle   Total"
    ]
    settings = list(results.keys())
    by_offload: dict[int, dict[str, Table1Row]] = {}
    for setting_name, rows in results.items():
        for row in rows:
            by_offload.setdefault(row.layers_offloaded, {})[setting_name] = row
    for offloaded in sorted(by_offload):
        cells = [f"{offloaded:>6}   |"]
        for setting_name in settings:
            row = by_offload[offloaded][setting_name]
            cells.append(
                f" {row.fast_train_seconds:>15.0f} {row.communication_seconds:>7.0f} "
                f"{row.idle_seconds:>7.0f} {row.total_seconds:>7.0f} |"
            )
        lines.append("".join(cells))
    return "\n".join(lines)
