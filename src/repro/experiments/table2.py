"""Table II reproduction: 10-agent time-to-accuracy on six dataset settings.

ComDML against Gossip Learning, BrainTorrent, decentralized AllReduce and
FedAvg, with 10 heterogeneous agents (20 % of agents per CPU profile), on
CIFAR-10 / CIFAR-100 / CINIC-10 and their non-I.I.D. (Dirichlet 0.5)
variants.  20 % of agents change their resource profile every 100 rounds.
The reported number is the simulated time (seconds) to reach the paper's
per-dataset target accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.experiments.campaign import (
    CampaignPreset,
    CampaignResult,
    CampaignSpec,
    execute_campaign,
)
from repro.experiments.runner import ExperimentRunner, PAPER_COMPARISON_METHODS
from repro.experiments.scenarios import ScenarioConfig
from repro.training.metrics import RunHistory

#: Target accuracies per (dataset, iid) cell — identical to the paper.
TABLE2_TARGETS: dict[tuple[str, bool], float] = {
    ("cifar10", True): 0.90,
    ("cifar10", False): 0.85,
    ("cifar100", True): 0.65,
    ("cifar100", False): 0.60,
    ("cinic10", True): 0.75,
    ("cinic10", False): 0.65,
}


@dataclass(frozen=True)
class Table2Cell:
    """Result of one (method, dataset, distribution) cell of Table II."""

    method: str
    dataset: str
    iid: bool
    target_accuracy: float
    time_to_target_seconds: Optional[float]
    rounds_to_target: Optional[int]
    total_time_seconds: float
    final_accuracy: float


def _cell_from_history(
    history: RunHistory, dataset: str, iid: bool, target: float
) -> Table2Cell:
    return Table2Cell(
        method=history.method,
        dataset=dataset,
        iid=iid,
        target_accuracy=target,
        time_to_target_seconds=history.time_to_accuracy(target),
        rounds_to_target=history.rounds_to_accuracy(target),
        total_time_seconds=history.total_time,
        final_accuracy=history.final_accuracy,
    )


def run_table2_cell(
    dataset: str,
    iid: bool,
    methods: Sequence[str] = PAPER_COMPARISON_METHODS,
    num_agents: int = 10,
    max_rounds: int = 600,
    seed: int = 0,
) -> list[Table2Cell]:
    """Run every method on one dataset setting of Table II."""
    target = TABLE2_TARGETS[(dataset, iid)]
    config = ScenarioConfig(
        num_agents=num_agents,
        dataset=dataset,
        model="resnet56",
        iid=iid,
        target_accuracy=target,
        max_rounds=max_rounds,
        churn_fraction=0.2,
        churn_interval_rounds=100,
        offload_granularity=6,
        seed=seed,
    )
    runner = ExperimentRunner(config)
    results = runner.compare(list(methods))
    return [
        _cell_from_history(history, dataset, iid, target)
        for history in results.values()
    ]


# ----------------------------------------------------------------------
# Campaign integration: spec builder, cell runner, post-processor
# ----------------------------------------------------------------------

def campaign_spec(
    datasets: Sequence[str] = ("cifar10", "cifar100", "cinic10"),
    distributions: Sequence[bool] = (True, False),
    methods: Sequence[str] = PAPER_COMPARISON_METHODS,
    num_agents: int = 10,
    max_rounds: int = 600,
    seed: int = 0,
) -> CampaignSpec:
    """Declare the Table II grid: dataset × distribution × method."""
    return CampaignSpec.create(
        name="table2",
        runner="table2-cell",
        axes={
            "dataset": tuple(datasets),
            "iid": tuple(distributions),
            "method": tuple(methods),
        },
        base={"num_agents": num_agents, "max_rounds": max_rounds, "seed": seed},
    )


def run_campaign_cell(
    dataset: str,
    iid: bool,
    method: str,
    num_agents: int = 10,
    max_rounds: int = 600,
    seed: int = 0,
) -> dict[str, Any]:
    """One (dataset, distribution, method) cell as a JSON payload.

    Method runs are independent (each builds its own registry and curve
    tracker from the scenario's seed factory), so a single-method cell is
    identical to the same method inside a multi-method sweep.
    """
    [cell] = run_table2_cell(
        dataset=dataset,
        iid=iid,
        methods=(method,),
        num_agents=num_agents,
        max_rounds=max_rounds,
        seed=seed,
    )
    return cell.__dict__


def cell_from_payload(payload: dict[str, Any]) -> Table2Cell:
    """Rebuild a :class:`Table2Cell` from a campaign payload."""
    return Table2Cell(**payload)


def cells_from_campaign(result: CampaignResult) -> list[Table2Cell]:
    """Post-process a finished Table II campaign into its cells."""
    return [cell_from_payload(payload) for payload in result.payloads()]


CAMPAIGN_PRESET = CampaignPreset(
    build_spec=campaign_spec,
    format_result=lambda result: format_table2(cells_from_campaign(result)),
)


def run_table2(
    datasets: Sequence[str] = ("cifar10", "cifar100", "cinic10"),
    distributions: Sequence[bool] = (True, False),
    methods: Sequence[str] = PAPER_COMPARISON_METHODS,
    num_agents: int = 10,
    max_rounds: int = 600,
    seed: int = 0,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    backend=None,
    on_event=None,
) -> list[Table2Cell]:
    """Run the full Table II grid; returns one cell per (method, dataset, iid)."""
    spec = campaign_spec(
        datasets=datasets,
        distributions=distributions,
        methods=methods,
        num_agents=num_agents,
        max_rounds=max_rounds,
        seed=seed,
    )
    result = execute_campaign(
        spec, jobs=jobs, cache_dir=cache_dir, backend=backend, on_event=on_event
    )
    return cells_from_campaign(result)


def format_table2(cells: Sequence[Table2Cell]) -> str:
    """Render the Table II grid: methods as rows, dataset settings as columns."""
    settings = sorted(
        {(cell.dataset, cell.iid) for cell in cells},
        key=lambda item: (item[0], not item[1]),
    )
    methods = list(dict.fromkeys(cell.method for cell in cells))
    lookup = {
        (cell.method, cell.dataset, cell.iid): cell for cell in cells
    }
    header = "Method".ljust(18) + "".join(
        f"{dataset} {'IID' if iid else 'non-IID'}".rjust(20) for dataset, iid in settings
    )
    lines = [header, "-" * len(header)]
    for method in methods:
        row = method.ljust(18)
        for dataset, iid in settings:
            cell = lookup.get((method, dataset, iid))
            if cell is None or cell.time_to_target_seconds is None:
                row += "n/a".rjust(20)
            else:
                row += f"{cell.time_to_target_seconds:.0f}".rjust(20)
        lines.append(row)
    return "\n".join(lines)
