"""Table III reproduction: scalability with 20 / 50 / 100 agents.

Time to 80 % accuracy on I.I.D. CIFAR-10 for ResNet-56 and ResNet-110, with
a 20 % per-round participation sampling rate, comparing ComDML against the
four baselines.  The paper's headline: increasing the number of agents does
not erode ComDML's advantage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.experiments.campaign import (
    CampaignPreset,
    CampaignResult,
    CampaignSpec,
    execute_campaign,
)
from repro.experiments.runner import ExperimentRunner, PAPER_COMPARISON_METHODS
from repro.experiments.scenarios import ScenarioConfig
from repro.training.metrics import RunHistory

#: Target accuracy used throughout Table III.
TABLE3_TARGET_ACCURACY = 0.80

#: Agent counts evaluated in the paper.
TABLE3_AGENT_COUNTS = (20, 50, 100)

#: Models evaluated in the paper.
TABLE3_MODELS = ("resnet56", "resnet110")


@dataclass(frozen=True)
class Table3Cell:
    """Result of one (model, agent count, method) cell of Table III."""

    model: str
    num_agents: int
    method: str
    time_to_target_seconds: Optional[float]
    rounds_to_target: Optional[int]
    total_time_seconds: float
    final_accuracy: float


def run_table3_cell(
    model: str,
    num_agents: int,
    methods: Sequence[str] = PAPER_COMPARISON_METHODS,
    max_rounds: int = 900,
    participation_fraction: float = 0.2,
    offload_granularity: int = 9,
    samples_per_agent: int = 500,
    seed: int = 0,
) -> list[Table3Cell]:
    """Run every method for one (model, agent count) combination.

    Each agent holds a fixed-size local shard (``samples_per_agent``), so the
    population grows the total workload — the scalability question the paper
    asks is whether ComDML's advantage survives as more (and therefore more
    often slow) agents join each sampled round.
    """
    config = ScenarioConfig(
        num_agents=num_agents,
        dataset="cifar10",
        model=model,
        iid=True,
        target_accuracy=TABLE3_TARGET_ACCURACY,
        max_rounds=max_rounds,
        participation_fraction=participation_fraction,
        offload_granularity=offload_granularity,
        samples_per_agent=samples_per_agent,
        seed=seed,
    )
    runner = ExperimentRunner(config)
    results = runner.compare(list(methods))
    cells: list[Table3Cell] = []
    for method, history in results.items():
        cells.append(
            Table3Cell(
                model=model,
                num_agents=num_agents,
                method=method,
                time_to_target_seconds=history.time_to_accuracy(TABLE3_TARGET_ACCURACY),
                rounds_to_target=history.rounds_to_accuracy(TABLE3_TARGET_ACCURACY),
                total_time_seconds=history.total_time,
                final_accuracy=history.final_accuracy,
            )
        )
    return cells


# ----------------------------------------------------------------------
# Campaign integration: spec builder, cell runner, post-processor
# ----------------------------------------------------------------------

def campaign_spec(
    models: Sequence[str] = TABLE3_MODELS,
    agent_counts: Sequence[int] = TABLE3_AGENT_COUNTS,
    methods: Sequence[str] = PAPER_COMPARISON_METHODS,
    max_rounds: int = 900,
    seed: int = 0,
) -> CampaignSpec:
    """Declare the Table III grid: model × agent count × method."""
    return CampaignSpec.create(
        name="table3",
        runner="table3-cell",
        axes={
            "model": tuple(models),
            "num_agents": tuple(agent_counts),
            "method": tuple(methods),
        },
        base={"max_rounds": max_rounds, "seed": seed},
    )


def run_campaign_cell(
    model: str,
    num_agents: int,
    method: str,
    max_rounds: int = 900,
    seed: int = 0,
) -> dict[str, Any]:
    """One (model, agent count, method) cell as a JSON payload."""
    [cell] = run_table3_cell(
        model=model,
        num_agents=num_agents,
        methods=(method,),
        max_rounds=max_rounds,
        seed=seed,
    )
    return cell.__dict__


def cells_from_campaign(result: CampaignResult) -> list[Table3Cell]:
    """Post-process a finished Table III campaign into its cells."""
    return [Table3Cell(**payload) for payload in result.payloads()]


CAMPAIGN_PRESET = CampaignPreset(
    build_spec=campaign_spec,
    format_result=lambda result: format_table3(cells_from_campaign(result)),
)


def run_table3(
    models: Sequence[str] = TABLE3_MODELS,
    agent_counts: Sequence[int] = TABLE3_AGENT_COUNTS,
    methods: Sequence[str] = PAPER_COMPARISON_METHODS,
    max_rounds: int = 900,
    seed: int = 0,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    backend=None,
    on_event=None,
) -> list[Table3Cell]:
    """Run the full Table III grid."""
    spec = campaign_spec(
        models=models,
        agent_counts=agent_counts,
        methods=methods,
        max_rounds=max_rounds,
        seed=seed,
    )
    result = execute_campaign(
        spec, jobs=jobs, cache_dir=cache_dir, backend=backend, on_event=on_event
    )
    return cells_from_campaign(result)


def format_table3(cells: Sequence[Table3Cell]) -> str:
    """Render Table III: (model, agents) rows, method columns."""
    methods = list(dict.fromkeys(cell.method for cell in cells))
    keys = sorted({(cell.model, cell.num_agents) for cell in cells})
    lookup = {(cell.model, cell.num_agents, cell.method): cell for cell in cells}
    header = "Model      Agents" + "".join(method.rjust(18) for method in methods)
    lines = [header, "-" * len(header)]
    for model, num_agents in keys:
        row = f"{model:<10} {num_agents:>6}"
        for method in methods:
            cell = lookup.get((model, num_agents, method))
            if cell is None or cell.time_to_target_seconds is None:
                row += "n/a".rjust(18)
            else:
                row += f"{cell.time_to_target_seconds:.0f}".rjust(18)
        lines.append(row)
    return "\n".join(lines)
