"""Model layer: architecture cost specs, ResNets, proxy models, split models."""

from repro.models.spec import LayerCost, ArchitectureSpec
from repro.models.resnet import resnet56_spec, resnet110_spec, cifar_resnet_spec
from repro.models.proxy import ProxyModelFactory, build_proxy_classifier
from repro.models.split import SplitModel, AuxiliaryHead, split_sequential

__all__ = [
    "LayerCost",
    "ArchitectureSpec",
    "resnet56_spec",
    "resnet110_spec",
    "cifar_resnet_spec",
    "ProxyModelFactory",
    "build_proxy_classifier",
    "SplitModel",
    "AuxiliaryHead",
    "split_sequential",
]
