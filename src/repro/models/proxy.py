"""Trainable proxy models.

Training a 56-layer convolutional network in pure numpy is computationally
out of reach, so the learning plane uses *proxy* residual classifiers: a
stack of dense residual blocks whose depth plays the role of the ResNet's
offloadable layers.  The proxy preserves everything the paper's algorithm
interacts with — a splittable backbone, a classifier head, an auxiliary
local-loss head at any boundary, shared parameters between the split views
and the full model — while staying small enough to genuinely train.

:class:`ProxyModelFactory` maps an :class:`~repro.models.spec.ArchitectureSpec`
to a proxy of configurable width/depth and converts architecture-level
offload indices (0..55 for ResNet-56) to proxy block indices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.models.spec import ArchitectureSpec
from repro.models.split import SplitModel, split_sequential
from repro.nn.layers import Dense, ReLU, dense_residual_block
from repro.nn.module import Sequential
from repro.utils.validation import check_positive


def build_proxy_classifier(
    input_features: int,
    num_classes: int,
    num_blocks: int = 6,
    width: int = 64,
    rng: Optional[np.random.Generator] = None,
) -> Sequential:
    """Build a residual MLP classifier.

    Structure: input projection (Dense + ReLU), ``num_blocks`` residual
    blocks of constant ``width``, and a Dense classifier head.  Split points
    fall between residual blocks (and before the head), so a backbone with
    ``num_blocks`` blocks exposes ``num_blocks + 1`` offloadable units —
    including the head itself as the smallest possible offload.
    """
    check_positive(input_features, "input_features")
    check_positive(num_classes, "num_classes")
    check_positive(num_blocks, "num_blocks")
    check_positive(width, "width")
    rng = rng if rng is not None else np.random.default_rng(0)
    modules = [
        Dense(input_features, width, rng=rng, name="stem"),
        ReLU(),
    ]
    for index in range(num_blocks):
        modules.append(dense_residual_block(width, rng=rng, name=f"block{index + 1}"))
    modules.append(Dense(width, num_classes, rng=rng, name="head"))
    return Sequential(*modules)


@dataclass
class ProxyModelFactory:
    """Builds proxy backbones aligned with an architecture spec.

    Attributes
    ----------
    spec:
        The architecture whose offload indices the factory must understand.
    input_features:
        Feature dimension of the (synthetic) dataset the proxy trains on.
    num_blocks:
        Residual blocks in the proxy backbone.
    width:
        Hidden width of the proxy backbone.
    """

    spec: ArchitectureSpec
    input_features: int
    num_blocks: int = 6
    width: int = 64

    def __post_init__(self) -> None:
        check_positive(self.input_features, "input_features")
        check_positive(self.num_blocks, "num_blocks")
        check_positive(self.width, "width")

    @property
    def num_classes(self) -> int:
        """Classes of the classification task (from the spec)."""
        return self.spec.num_classes

    def build(self, rng: Optional[np.random.Generator] = None) -> Sequential:
        """Create a freshly initialised proxy backbone."""
        return build_proxy_classifier(
            input_features=self.input_features,
            num_classes=self.num_classes,
            num_blocks=self.num_blocks,
            width=self.width,
            rng=rng,
        )

    # ------------------------------------------------------------------
    # Offload-index mapping
    # ------------------------------------------------------------------
    @property
    def max_proxy_offload(self) -> int:
        """Largest number of proxy modules that can be offloaded.

        The slow agent always keeps at least the stem projection and its
        activation, so at most ``num_blocks + 1`` trailing modules (all
        residual blocks plus the head) may move to the fast agent.
        """
        return self.num_blocks + 1

    def proxy_offload_for(self, spec_offloaded_layers: int) -> int:
        """Map an architecture-level offload index to proxy modules to offload.

        The mapping preserves the *fraction* of the backbone offloaded:
        offloading 28 of ResNet-56's 55 layers (~51 %) maps to offloading
        about half of the proxy's blocks.  Zero maps to zero.
        """
        self.spec.validate_offload(spec_offloaded_layers)
        if spec_offloaded_layers == 0:
            return 0
        fraction = spec_offloaded_layers / self.spec.num_layers
        proxy = int(round(fraction * self.max_proxy_offload))
        return int(np.clip(proxy, 1, self.max_proxy_offload))

    def build_split(
        self,
        spec_offloaded_layers: int,
        rng: Optional[np.random.Generator] = None,
        backbone: Optional[Sequential] = None,
    ) -> SplitModel:
        """Build (or reuse) a backbone and split it for the given offload index."""
        backbone = backbone if backbone is not None else self.build(rng)
        proxy_offload = self.proxy_offload_for(spec_offloaded_layers)
        return split_sequential(
            backbone,
            offloaded_layers=proxy_offload,
            num_classes=self.num_classes,
            rng=rng,
        )
