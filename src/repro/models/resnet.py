"""CIFAR ResNet architecture descriptors (ResNet-56 and ResNet-110).

The paper trains ResNet-56 and ResNet-110 (He et al., 2016, CIFAR variant):
an initial 3×3 convolution, three stages of ``n`` basic blocks with 16, 32
and 64 channels at 32×32, 16×16 and 8×8 resolution, then global average
pooling and a fully connected classifier.  ``depth = 6 n + 2`` so ResNet-56
has ``n = 9`` and ResNet-110 has ``n = 18``.

The descriptors enumerate **convolutional layers** as the offloadable units
(55 of them for ResNet-56 after the stem, matching the paper's Table I whose
offload options go up to 55 layers), with exact per-layer FLOPs, parameter
counts and activation sizes computed from the architecture.
"""

from __future__ import annotations

from repro.models.spec import ArchitectureSpec, LayerCost
from repro.utils.validation import check_positive

#: CIFAR input geometry.
CIFAR_INPUT_CHANNELS = 3
CIFAR_INPUT_SIZE = 32


def _conv_cost(
    name: str,
    in_channels: int,
    out_channels: int,
    spatial: int,
    kernel: int = 3,
) -> LayerCost:
    """Cost of one 3×3 convolution producing a ``spatial × spatial`` map."""
    output_elements = out_channels * spatial * spatial
    flops = 2.0 * kernel * kernel * in_channels * out_channels * spatial * spatial
    params = kernel * kernel * in_channels * out_channels + out_channels
    return LayerCost(
        name=name,
        forward_flops=flops,
        parameter_count=params,
        output_elements=output_elements,
    )


def cifar_resnet_spec(depth: int, num_classes: int = 10) -> ArchitectureSpec:
    """Build the cost descriptor for a CIFAR ResNet of the given depth.

    Parameters
    ----------
    depth:
        Total depth ``6 n + 2`` (e.g. 56 or 110).
    num_classes:
        Number of output classes (10 for CIFAR-10/CINIC-10, 100 for CIFAR-100).
    """
    check_positive(depth, "depth")
    if (depth - 2) % 6 != 0:
        raise ValueError(
            f"CIFAR ResNet depth must satisfy depth = 6n + 2, got {depth}"
        )
    blocks_per_stage = (depth - 2) // 6
    stage_channels = (16, 32, 64)
    stage_spatial = (32, 16, 8)

    layers: list[LayerCost] = []
    # Stem convolution: 3 -> 16 channels at 32x32.
    layers.append(
        _conv_cost("stem.conv", CIFAR_INPUT_CHANNELS, stage_channels[0], stage_spatial[0])
    )
    in_channels = stage_channels[0]
    for stage_index, (channels, spatial) in enumerate(zip(stage_channels, stage_spatial)):
        for block_index in range(blocks_per_stage):
            prefix = f"stage{stage_index + 1}.block{block_index + 1}"
            layers.append(_conv_cost(f"{prefix}.conv1", in_channels, channels, spatial))
            layers.append(_conv_cost(f"{prefix}.conv2", channels, channels, spatial))
            in_channels = channels

    final_channels = stage_channels[-1]
    head_flops = 2.0 * final_channels * num_classes + final_channels * stage_spatial[-1] ** 2
    head_parameters = final_channels * num_classes + num_classes

    return ArchitectureSpec(
        name=f"resnet{depth}",
        layers=tuple(layers),
        input_elements=CIFAR_INPUT_CHANNELS * CIFAR_INPUT_SIZE * CIFAR_INPUT_SIZE,
        num_classes=num_classes,
        head_flops=head_flops,
        head_parameter_count=head_parameters,
    )


def resnet56_spec(num_classes: int = 10) -> ArchitectureSpec:
    """Cost descriptor for ResNet-56 (55 offloadable conv layers + head)."""
    return cifar_resnet_spec(56, num_classes=num_classes)


def resnet110_spec(num_classes: int = 10) -> ArchitectureSpec:
    """Cost descriptor for ResNet-110 (109 offloadable conv layers + head)."""
    return cifar_resnet_spec(110, num_classes=num_classes)
