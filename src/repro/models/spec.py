"""Architecture cost descriptors.

The timing plane does not need trainable weights — it needs, for every
*offloadable layer* of the architecture, how much compute it costs, how many
parameter bytes it carries, and how large its output activation is.  That is
exactly the information the paper's split-model profiling step produces
("relative training time ... and intermediate data size for each split
model m").

:class:`LayerCost` describes one offloadable layer; :class:`ArchitectureSpec`
is the ordered list of layers plus bookkeeping, and provides the split
queries used by :mod:`repro.core.profiling`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.utils.validation import check_non_negative, check_positive

#: Bytes used to encode one parameter or activation scalar on the wire.
BYTES_PER_SCALAR = 4

#: Backward pass costs roughly twice the forward pass, so training one
#: sample costs ~3x the forward FLOPs.  This standard factor is used to turn
#: inference FLOPs into training FLOPs throughout the timing plane.
TRAIN_FLOPS_MULTIPLIER = 3.0

#: Flop-equivalents charged per output activation element to model memory
#: traffic.  Early CIFAR-ResNet layers produce large spatial maps and are
#: memory-bandwidth bound in practice, so their wall-clock cost per layer is
#: substantially higher than their FLOP count alone suggests.  This weight is
#: calibrated so that retaining the first ~18 of ResNet-56's 55 layers costs
#: ~45 % of the full model's time, matching the split profile implied by the
#: paper's Table I measurements.
MEMORY_TRAFFIC_WEIGHT = 500.0


@dataclass(frozen=True)
class LayerCost:
    """Per-layer cost record.

    Attributes
    ----------
    name:
        Human-readable layer name (e.g. ``"stage2.block3.conv1"``).
    forward_flops:
        Forward-pass floating point operations for **one sample**.
    parameter_count:
        Number of scalar parameters in the layer.
    output_elements:
        Number of scalars in the layer's output activation for one sample
        (this is what would be shipped to the fast agent if the model were
        split right after this layer).
    """

    name: str
    forward_flops: float
    parameter_count: int
    output_elements: int

    def __post_init__(self) -> None:
        check_non_negative(self.forward_flops, "forward_flops")
        check_non_negative(self.parameter_count, "parameter_count")
        check_non_negative(self.output_elements, "output_elements")

    @property
    def parameter_bytes(self) -> float:
        """Bytes occupied by this layer's parameters."""
        return self.parameter_count * BYTES_PER_SCALAR

    @property
    def output_bytes(self) -> float:
        """Bytes of the output activation for one sample."""
        return self.output_elements * BYTES_PER_SCALAR

    @property
    def forward_cost(self) -> float:
        """Wall-clock cost proxy: FLOPs plus a memory-traffic term."""
        return self.forward_flops + MEMORY_TRAFFIC_WEIGHT * self.output_elements

    @property
    def train_flops(self) -> float:
        """Training FLOPs (forward + backward) for one sample."""
        return self.forward_flops * TRAIN_FLOPS_MULTIPLIER

    @property
    def train_cost(self) -> float:
        """Training cost proxy (forward + backward, incl. memory traffic)."""
        return self.forward_cost * TRAIN_FLOPS_MULTIPLIER


@dataclass(frozen=True)
class ArchitectureSpec:
    """Ordered cost description of a model architecture.

    The *offload index* ``m`` used throughout the library follows the
    paper's Table I convention: ``m`` is the number of layers offloaded
    from the **end** of the network to the fast agent.  ``m = 0`` means no
    offloading; ``m = num_layers`` would offload everything (never chosen in
    practice because the slow agent must keep at least its input layer).

    Attributes
    ----------
    name:
        Architecture name (``"resnet56"`` etc.).
    layers:
        Offloadable layers in forward order.
    input_elements:
        Scalars per input sample (e.g. ``3*32*32`` for CIFAR).
    num_classes:
        Output classes.
    head_flops:
        Forward FLOPs of the non-offloadable classifier head (final pooling
        + fully connected layer); always executed by whoever holds the last
        offloaded layer.
    head_parameter_count:
        Parameters of the classifier head.
    """

    name: str
    layers: tuple[LayerCost, ...]
    input_elements: int
    num_classes: int
    head_flops: float = 0.0
    head_parameter_count: int = 0

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError("an architecture needs at least one layer")
        check_positive(self.input_elements, "input_elements")
        check_positive(self.num_classes, "num_classes")
        check_non_negative(self.head_flops, "head_flops")
        check_non_negative(self.head_parameter_count, "head_parameter_count")

    # ------------------------------------------------------------------
    # Whole-model quantities
    # ------------------------------------------------------------------
    @property
    def num_layers(self) -> int:
        """Number of offloadable layers."""
        return len(self.layers)

    @property
    def total_forward_flops(self) -> float:
        """Forward cost per sample for the full model (layers + head).

        All *flops-named quantities on this class are wall-clock cost
        proxies (FLOPs + memory-traffic term); see ``MEMORY_TRAFFIC_WEIGHT``.
        """
        return sum(layer.forward_cost for layer in self.layers) + self.head_flops

    @property
    def total_train_flops(self) -> float:
        """Training cost per sample for the full model."""
        return self.total_forward_flops * TRAIN_FLOPS_MULTIPLIER

    @property
    def total_parameter_count(self) -> int:
        """Total parameters (layers + head)."""
        return (
            sum(layer.parameter_count for layer in self.layers)
            + self.head_parameter_count
        )

    @property
    def model_bytes(self) -> float:
        """Serialized model size in bytes (what AllReduce moves)."""
        return self.total_parameter_count * BYTES_PER_SCALAR

    # ------------------------------------------------------------------
    # Split queries (offload index m = layers offloaded from the end)
    # ------------------------------------------------------------------
    def validate_offload(self, offloaded_layers: int) -> int:
        """Check an offload index and return it."""
        if not 0 <= offloaded_layers <= self.num_layers:
            raise ValueError(
                f"offloaded_layers must lie in [0, {self.num_layers}], "
                f"got {offloaded_layers}"
            )
        return offloaded_layers

    def split_boundary(self, offloaded_layers: int) -> int:
        """Index of the first offloaded layer (slow agent keeps ``[0, boundary)``)."""
        self.validate_offload(offloaded_layers)
        return self.num_layers - offloaded_layers

    def slow_side_forward_flops(self, offloaded_layers: int) -> float:
        """Forward cost per sample retained by the slow agent.

        When nothing is offloaded the slow agent also runs the classifier
        head; otherwise the head belongs to the fast side.
        """
        boundary = self.split_boundary(offloaded_layers)
        flops = sum(layer.forward_cost for layer in self.layers[:boundary])
        if offloaded_layers == 0:
            flops += self.head_flops
        return flops

    def fast_side_forward_flops(self, offloaded_layers: int) -> float:
        """Forward cost per sample handled by the fast agent for the offload."""
        boundary = self.split_boundary(offloaded_layers)
        if offloaded_layers == 0:
            return 0.0
        return sum(layer.forward_cost for layer in self.layers[boundary:]) + self.head_flops

    def intermediate_elements(self, offloaded_layers: int) -> int:
        """Scalars of the activation crossing the split, per sample (the paper's ν_m basis)."""
        boundary = self.split_boundary(offloaded_layers)
        if offloaded_layers == 0:
            return 0
        if boundary == 0:
            return self.input_elements
        return self.layers[boundary - 1].output_elements

    def intermediate_bytes(self, offloaded_layers: int) -> float:
        """Bytes of the activation crossing the split, per sample."""
        return self.intermediate_elements(offloaded_layers) * BYTES_PER_SCALAR

    def slow_side_parameter_count(self, offloaded_layers: int) -> int:
        """Parameters retained by the slow agent (excluding the auxiliary head)."""
        boundary = self.split_boundary(offloaded_layers)
        count = sum(layer.parameter_count for layer in self.layers[:boundary])
        if offloaded_layers == 0:
            count += self.head_parameter_count
        return count

    def fast_side_parameter_count(self, offloaded_layers: int) -> int:
        """Parameters of the offloaded portion (including the classifier head)."""
        boundary = self.split_boundary(offloaded_layers)
        if offloaded_layers == 0:
            return 0
        return (
            sum(layer.parameter_count for layer in self.layers[boundary:])
            + self.head_parameter_count
        )

    def fast_side_parameter_bytes(self, offloaded_layers: int) -> float:
        """Bytes of the offloaded sub-model (shipped once when the pair forms)."""
        return self.fast_side_parameter_count(offloaded_layers) * BYTES_PER_SCALAR

    def auxiliary_head_parameter_count(self, offloaded_layers: int) -> int:
        """Parameters of the slow agent's auxiliary network for this split.

        The paper attaches an average-pooling layer plus one fully connected
        layer to the split boundary; we model the fully connected layer over
        the (pooled) boundary activation.  Pooling reduces the spatial extent
        so the auxiliary head is intentionally small.
        """
        if offloaded_layers == 0:
            return 0
        elements = self.intermediate_elements(offloaded_layers)
        # Average pooling compresses the activation by ~16x (4x4 spatial pool)
        # before the fully connected layer, mirroring the paper's aux design.
        pooled = max(self.num_classes, elements // 16)
        return pooled * self.num_classes + self.num_classes

    def auxiliary_head_forward_flops(self, offloaded_layers: int) -> float:
        """Forward FLOPs per sample of the auxiliary head for this split."""
        if offloaded_layers == 0:
            return 0.0
        return 2.0 * self.auxiliary_head_parameter_count(offloaded_layers)

    def offload_options(self, granularity: int = 1) -> list[int]:
        """Candidate offload indices ``{0, granularity, 2·granularity, ...}``.

        The paper evaluates M candidate split models; a granularity of ``9``
        on ResNet-56, for example, yields the Table I style options.
        """
        check_positive(granularity, "granularity")
        options = list(range(0, self.num_layers, granularity))
        if (self.num_layers - 1) not in options:
            options.append(self.num_layers - 1)
        return options
