"""Split models for local-loss split training.

A :class:`SplitModel` partitions a ``Sequential`` backbone into a *slow
agent-side* prefix and a *fast agent-side* suffix, and attaches an
:class:`AuxiliaryHead` to the split boundary.  The slow agent trains its
prefix with the auxiliary head's local loss; the fast agent trains the
suffix on the (detached) intermediate activations it receives.  Because the
two halves are views over the *same* parameter objects as the full backbone,
re-assembling the globally averaged model after AllReduce needs no extra
bookkeeping.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers import Dense
from repro.nn.module import Module, Parameter, Sequential
from repro.utils.validation import check_positive


class AuxiliaryHead(Module):
    """Small local-loss head: average pooling over feature groups + one Dense layer.

    Mirrors the paper's auxiliary network ("a fully connected layer and an
    average pooling layer") adapted to flat feature vectors: the input is
    average-pooled in groups of ``pool_factor`` before the classifier, which
    keeps the head small relative to the backbone.
    """

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        pool_factor: int = 4,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        check_positive(in_features, "in_features")
        check_positive(num_classes, "num_classes")
        check_positive(pool_factor, "pool_factor")
        self.in_features = in_features
        self.pool_factor = min(pool_factor, in_features)
        # Truncate to a multiple of the pool factor so pooling is exact.
        self.pooled_features = max(1, in_features // self.pool_factor)
        self._used_features = self.pooled_features * self.pool_factor
        self.classifier = Dense(
            self.pooled_features, num_classes, rng=rng, name="aux.classifier"
        )
        self._input_shape: Optional[tuple[int, ...]] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 2 or inputs.shape[1] != self.in_features:
            raise ValueError(
                f"expected input of shape (N, {self.in_features}), got {inputs.shape}"
            )
        self._input_shape = inputs.shape
        pooled = inputs[:, : self._used_features].reshape(
            inputs.shape[0], self.pooled_features, self.pool_factor
        ).mean(axis=2)
        return self.classifier.forward(pooled)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        grad_pooled = self.classifier.backward(grad_output)
        grad_input = np.zeros(self._input_shape, dtype=np.float64)
        expanded = np.repeat(grad_pooled / self.pool_factor, self.pool_factor, axis=1)
        grad_input[:, : self._used_features] = expanded
        return grad_input

    def parameters(self) -> list[Parameter]:
        return self.classifier.parameters()

    def children(self):
        return [self.classifier]


class SplitModel:
    """A backbone split into slow/fast halves with an auxiliary local-loss head.

    Attributes
    ----------
    slow_side:
        ``Sequential`` prefix trained by the slow agent.
    fast_side:
        ``Sequential`` suffix trained by the fast agent (empty when nothing
        is offloaded).
    auxiliary:
        The slow agent's local-loss head (``None`` when nothing is offloaded,
        because the slow agent then trains the full model with its real head).
    offloaded_layers:
        Number of backbone blocks offloaded to the fast agent.
    """

    def __init__(
        self,
        slow_side: Sequential,
        fast_side: Sequential,
        auxiliary: Optional[AuxiliaryHead],
        offloaded_layers: int,
    ) -> None:
        self.slow_side = slow_side
        self.fast_side = fast_side
        self.auxiliary = auxiliary
        self.offloaded_layers = int(offloaded_layers)

    @property
    def is_split(self) -> bool:
        """Whether any work is actually offloaded."""
        return self.offloaded_layers > 0 and len(self.fast_side) > 0

    def forward_slow(self, inputs: np.ndarray) -> np.ndarray:
        """Slow-side forward pass, returning the boundary activation."""
        return self.slow_side.forward(inputs)

    def forward_auxiliary(self, boundary_activation: np.ndarray) -> np.ndarray:
        """Auxiliary-head logits computed from the boundary activation."""
        if self.auxiliary is None:
            raise RuntimeError("model is not split; no auxiliary head exists")
        return self.auxiliary.forward(boundary_activation)

    def forward_fast(self, boundary_activation: np.ndarray) -> np.ndarray:
        """Fast-side forward pass from the boundary activation to final logits."""
        return self.fast_side.forward(boundary_activation)

    def forward_full(self, inputs: np.ndarray) -> np.ndarray:
        """Full-model forward (slow then fast side), used for evaluation."""
        activation = self.slow_side.forward(inputs)
        if self.is_split:
            return self.fast_side.forward(activation)
        return activation

    def slow_parameters(self) -> list[Parameter]:
        """Parameters updated on the slow agent (prefix + auxiliary head)."""
        params = list(self.slow_side.parameters())
        if self.auxiliary is not None:
            params.extend(self.auxiliary.parameters())
        return params

    def fast_parameters(self) -> list[Parameter]:
        """Parameters updated on the fast agent (the offloaded suffix)."""
        return list(self.fast_side.parameters())


def split_sequential(
    backbone: Sequential,
    offloaded_layers: int,
    num_classes: int,
    aux_pool_factor: int = 4,
    rng: Optional[np.random.Generator] = None,
) -> SplitModel:
    """Split a ``Sequential`` backbone ``offloaded_layers`` blocks from the end.

    The auxiliary head's input width is inferred from the first Dense layer
    found at or after the boundary (walking backwards from the boundary when
    the suffix starts with an activation), falling back to probing is not
    required because the proxy backbones used in this library keep a constant
    feature width.
    """
    total = len(backbone)
    if not 0 <= offloaded_layers <= total:
        raise ValueError(
            f"offloaded_layers must lie in [0, {total}], got {offloaded_layers}"
        )
    boundary = total - offloaded_layers
    slow_side = backbone.slice(0, boundary)
    fast_side = backbone.slice(boundary, total)
    auxiliary: Optional[AuxiliaryHead] = None
    if offloaded_layers > 0:
        boundary_width = _infer_boundary_width(backbone, boundary)
        auxiliary = AuxiliaryHead(
            in_features=boundary_width,
            num_classes=num_classes,
            pool_factor=aux_pool_factor,
            rng=rng,
        )
    return SplitModel(
        slow_side=slow_side,
        fast_side=fast_side,
        auxiliary=auxiliary,
        offloaded_layers=offloaded_layers,
    )


def _infer_boundary_width(backbone: Sequential, boundary: int) -> int:
    """Feature width of the activation flowing across the split boundary."""
    # Walk backwards over the slow side looking for the last layer that
    # declares an output width.
    for module in reversed(backbone.modules[:boundary]):
        width = _output_width(module)
        if width is not None:
            return width
    # Nothing before the boundary declares a width (e.g. boundary == 0, or
    # only activations); use the first declared *input* width after it.
    for module in backbone.modules[boundary:]:
        width = _input_width(module)
        if width is not None:
            return width
    raise ValueError("could not infer the feature width at the split boundary")


def _output_width(module) -> Optional[int]:
    if isinstance(module, Dense):
        return module.out_features
    children = list(module.children()) if hasattr(module, "children") else []
    for child in reversed(children):
        width = _output_width(child)
        if width is not None:
            return width
    return None


def _input_width(module) -> Optional[int]:
    if isinstance(module, Dense):
        return module.in_features
    children = list(module.children()) if hasattr(module, "children") else []
    for child in children:
        width = _input_width(child)
        if width is not None:
            return width
    return None
