"""Network substrate: topologies, links, and collective aggregation."""

from repro.network.topology import Topology, full_topology, random_topology, ring_topology
from repro.network.link import LinkModel, pairwise_bandwidth
from repro.network.allreduce import (
    AllReduceResult,
    ring_allreduce,
    halving_doubling_allreduce,
    allreduce_average,
)
from repro.network.compression import GradientCompressor, QuantizationCompressor, NoCompression

__all__ = [
    "Topology",
    "full_topology",
    "random_topology",
    "ring_topology",
    "LinkModel",
    "pairwise_bandwidth",
    "AllReduceResult",
    "ring_allreduce",
    "halving_doubling_allreduce",
    "allreduce_average",
    "GradientCompressor",
    "QuantizationCompressor",
    "NoCompression",
]
