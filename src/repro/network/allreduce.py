"""Decentralized AllReduce aggregation.

ComDML aggregates models at the end of each round with AllReduce rather
than a central server.  The paper considers the two classic
bandwidth-efficient algorithms:

* **ring AllReduce** — ``2 (K - 1)`` communication steps, each agent sends
  and receives ``2 (K - 1) / K × b`` bytes in total;
* **recursive halving-doubling** — ``2 log2(K)`` communication steps with the
  same total per-agent volume; chosen by the paper because the number of
  steps grows logarithmically with the number of agents.

This module provides both the *timing* cost model (used in the timing
plane) and the *numerical* averaging of actual model parameters (used in the
learning plane).  Both operate on flat numpy parameter vectors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.network.compression import GradientCompressor, NoCompression
from repro.sim.costs import DEFAULT_LINK_LATENCY_SECONDS
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class AllReduceResult:
    """Outcome of an AllReduce timing computation.

    Attributes
    ----------
    algorithm:
        ``"ring"`` or ``"halving_doubling"``.
    num_agents:
        Number of participants ``K``.
    steps:
        Number of synchronous communication steps.
    per_agent_bytes:
        Bytes sent (== received) by each agent over the whole operation.
    time_seconds:
        Simulated completion time of the collective.
    """

    algorithm: str
    num_agents: int
    steps: int
    per_agent_bytes: float
    time_seconds: float


def _per_agent_volume_bytes(model_bytes: float, num_agents: int) -> float:
    """Per-agent send volume ``2 (K-1)/K × b`` common to both algorithms."""
    if num_agents <= 1:
        return 0.0
    return 2.0 * (num_agents - 1) / num_agents * model_bytes


def ring_allreduce(
    model_bytes: float,
    num_agents: int,
    bottleneck_bandwidth_bytes_per_second: float,
    latency_seconds: float = DEFAULT_LINK_LATENCY_SECONDS,
    compressor: Optional[GradientCompressor] = None,
) -> AllReduceResult:
    """Timing of a ring AllReduce over ``num_agents`` participants.

    The completion time is governed by the slowest link in the ring
    (``bottleneck_bandwidth_bytes_per_second``); each of the ``2 (K - 1)``
    steps moves ``b / K`` bytes and pays one latency.
    """
    check_non_negative(model_bytes, "model_bytes")
    check_positive(num_agents, "num_agents")
    compressor = compressor or NoCompression()
    effective_bytes = compressor.compressed_bytes(model_bytes)
    if num_agents == 1:
        return AllReduceResult("ring", 1, 0, 0.0, 0.0)
    check_positive(
        bottleneck_bandwidth_bytes_per_second, "bottleneck_bandwidth_bytes_per_second"
    )
    steps = 2 * (num_agents - 1)
    chunk = effective_bytes / num_agents
    time = steps * (latency_seconds + chunk / bottleneck_bandwidth_bytes_per_second)
    return AllReduceResult(
        algorithm="ring",
        num_agents=num_agents,
        steps=steps,
        per_agent_bytes=_per_agent_volume_bytes(effective_bytes, num_agents),
        time_seconds=time,
    )


def halving_doubling_allreduce(
    model_bytes: float,
    num_agents: int,
    bottleneck_bandwidth_bytes_per_second: float,
    latency_seconds: float = DEFAULT_LINK_LATENCY_SECONDS,
    compressor: Optional[GradientCompressor] = None,
) -> AllReduceResult:
    """Timing of a recursive halving-doubling AllReduce.

    ``2 ceil(log2 K)`` steps; the reduce-scatter phase halves the payload at
    every step and the all-gather phase doubles it back, so the total bytes
    moved per agent equal ``2 (K - 1)/K × b`` as in the ring algorithm, but
    far fewer latency terms are paid — which is why the paper prefers it for
    large agent counts.
    """
    check_non_negative(model_bytes, "model_bytes")
    check_positive(num_agents, "num_agents")
    compressor = compressor or NoCompression()
    effective_bytes = compressor.compressed_bytes(model_bytes)
    if num_agents == 1:
        return AllReduceResult("halving_doubling", 1, 0, 0.0, 0.0)
    check_positive(
        bottleneck_bandwidth_bytes_per_second, "bottleneck_bandwidth_bytes_per_second"
    )
    log_steps = max(1, math.ceil(math.log2(num_agents)))
    steps = 2 * log_steps
    volume = _per_agent_volume_bytes(effective_bytes, num_agents)
    time = steps * latency_seconds + volume / bottleneck_bandwidth_bytes_per_second
    return AllReduceResult(
        algorithm="halving_doubling",
        num_agents=num_agents,
        steps=steps,
        per_agent_bytes=volume,
        time_seconds=time,
    )


def allreduce_time(
    model_bytes: float,
    num_agents: int,
    bottleneck_bandwidth_bytes_per_second: float,
    algorithm: str = "halving_doubling",
    latency_seconds: float = DEFAULT_LINK_LATENCY_SECONDS,
    compressor: Optional[GradientCompressor] = None,
) -> float:
    """Convenience wrapper returning only the completion time in seconds."""
    if algorithm == "ring":
        result = ring_allreduce(
            model_bytes,
            num_agents,
            bottleneck_bandwidth_bytes_per_second,
            latency_seconds,
            compressor,
        )
    elif algorithm == "halving_doubling":
        result = halving_doubling_allreduce(
            model_bytes,
            num_agents,
            bottleneck_bandwidth_bytes_per_second,
            latency_seconds,
            compressor,
        )
    else:
        raise ValueError(
            f"unknown AllReduce algorithm {algorithm!r}; "
            "expected 'ring' or 'halving_doubling'"
        )
    return result.time_seconds


def allreduce_average(
    parameter_vectors: Sequence[np.ndarray],
    weights: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """Numerical result of the AllReduce: the (weighted) average of parameters.

    The learning plane calls this after the timing plane has accounted for
    the collective's cost.  When ``weights`` are supplied (e.g. local dataset
    sizes ``N_i / N``), a weighted average is returned, matching the global
    objective of Eq. (1) in the paper.
    """
    if not parameter_vectors:
        raise ValueError("need at least one parameter vector to average")
    shapes = {vector.shape for vector in parameter_vectors}
    if len(shapes) != 1:
        raise ValueError(f"parameter vectors have mismatched shapes: {shapes}")
    stacked = np.stack([np.asarray(vector, dtype=np.float64) for vector in parameter_vectors])
    if weights is None:
        return stacked.mean(axis=0)
    weights_array = np.asarray(weights, dtype=np.float64)
    if weights_array.shape[0] != stacked.shape[0]:
        raise ValueError(
            f"got {weights_array.shape[0]} weights for {stacked.shape[0]} vectors"
        )
    if np.any(weights_array < 0):
        raise ValueError("weights must be non-negative")
    total = weights_array.sum()
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    normalized = weights_array / total
    return np.tensordot(normalized, stacked, axes=(0, 0))
