"""Optional aggregation compression.

The paper notes that "other existing aggregation techniques (e.g. quantized
gradients) can also be integrated into the proposed training process to
further reduce communication overhead".  This module provides that hook: a
compressor both shrinks the simulated byte volume (timing plane) and applies
the corresponding lossy transform to parameter vectors (learning plane).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.utils.validation import check_positive


class GradientCompressor(ABC):
    """Interface for (de)compressing parameter/gradient vectors."""

    @abstractmethod
    def compressed_bytes(self, original_bytes: float) -> float:
        """Bytes on the wire after compression."""

    @abstractmethod
    def compress(self, values: np.ndarray) -> np.ndarray:
        """Lossy round-trip of the values (what the receiver reconstructs)."""


class NoCompression(GradientCompressor):
    """Identity compressor (the default)."""

    def compressed_bytes(self, original_bytes: float) -> float:
        return original_bytes

    def compress(self, values: np.ndarray) -> np.ndarray:
        return np.asarray(values)


class QuantizationCompressor(GradientCompressor):
    """Uniform scalar quantization to ``bits`` bits per value.

    Bytes shrink by ``bits / 32`` (parameters are float32 on the wire in the
    uncompressed case); values are reconstructed by de-quantizing, which
    introduces bounded error of half a quantization step.
    """

    def __init__(self, bits: int = 8) -> None:
        check_positive(bits, "bits")
        if bits > 32:
            raise ValueError(f"bits must be <= 32, got {bits}")
        self.bits = int(bits)

    def compressed_bytes(self, original_bytes: float) -> float:
        return original_bytes * self.bits / 32.0

    def compress(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return values.copy()
        low = float(values.min())
        high = float(values.max())
        if high == low:
            return values.copy()
        levels = (1 << self.bits) - 1
        scale = (high - low) / levels
        quantized = np.round((values - low) / scale)
        return quantized * scale + low


class TopKSparsifier(GradientCompressor):
    """Keep only the ``fraction`` largest-magnitude entries (rest are zeroed).

    This mirrors the sparsification used by GossipFL-style baselines; the
    wire size shrinks by roughly the kept fraction (index overhead ignored).
    """

    def __init__(self, fraction: float = 0.1) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must lie in (0, 1], got {fraction}")
        self.fraction = float(fraction)

    def compressed_bytes(self, original_bytes: float) -> float:
        return original_bytes * self.fraction

    def compress(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return values.copy()
        keep = max(1, int(round(self.fraction * values.size)))
        flat = values.ravel()
        threshold_index = np.argsort(np.abs(flat))[-keep]
        threshold = np.abs(flat[threshold_index])
        mask = np.abs(flat) >= threshold
        result = np.where(mask, flat, 0.0)
        return result.reshape(values.shape)
