"""Pairwise link model.

The effective bandwidth between two agents is limited by the slower of the
two endpoints' access links (a standard access-limited model that matches
the paper's per-agent Mbps profiles), and only exists if the topology has an
edge between them and both agents are connected.
"""

from __future__ import annotations

from typing import Optional

from repro.agents.agent import Agent
from repro.network.topology import Topology
from repro.sim.costs import DEFAULT_LINK_LATENCY_SECONDS, transfer_time_seconds


def pairwise_bandwidth(agent_a: Agent, agent_b: Agent) -> float:
    """Effective bandwidth (bytes/s) between two agents: min of their access links."""
    return min(
        agent_a.profile.bandwidth_bytes_per_second,
        agent_b.profile.bandwidth_bytes_per_second,
    )


class LinkModel:
    """Answers "can i talk to j, and how fast?" for a given topology."""

    def __init__(
        self,
        topology: Topology,
        latency_seconds: float = DEFAULT_LINK_LATENCY_SECONDS,
    ) -> None:
        if latency_seconds < 0:
            raise ValueError(f"latency must be non-negative, got {latency_seconds}")
        self.topology = topology
        self.latency_seconds = latency_seconds

    def can_communicate(self, agent_a: Agent, agent_b: Agent) -> bool:
        """Whether a usable link exists between the two agents."""
        if agent_a.agent_id == agent_b.agent_id:
            return False
        if not (agent_a.is_connected and agent_b.is_connected):
            return False
        return self.topology.are_connected(agent_a.agent_id, agent_b.agent_id)

    def bandwidth(self, agent_a: Agent, agent_b: Agent) -> float:
        """Effective bandwidth in bytes/s (0.0 if no usable link)."""
        if not self.can_communicate(agent_a, agent_b):
            return 0.0
        return pairwise_bandwidth(agent_a, agent_b)

    def transfer_time(self, agent_a: Agent, agent_b: Agent, num_bytes: float) -> float:
        """Seconds to move ``num_bytes`` between the two agents.

        Raises
        ------
        ValueError
            If no usable link exists.
        """
        bandwidth = self.bandwidth(agent_a, agent_b)
        if bandwidth <= 0:
            raise ValueError(
                f"no usable link between agents {agent_a.agent_id} and {agent_b.agent_id}"
            )
        return transfer_time_seconds(num_bytes, bandwidth, self.latency_seconds)

    def neighbors_of(self, agent: Agent, registry) -> list[Agent]:
        """Connected neighbours of ``agent`` drawn from an agent registry."""
        result = []
        for neighbor_id in self.topology.neighbors(agent.agent_id):
            if neighbor_id in registry:
                neighbor = registry.get(neighbor_id)
                if self.can_communicate(agent, neighbor):
                    result.append(neighbor)
        return result
