"""Peer-to-peer network topologies.

ComDML is evaluated on full graphs, ring graphs, and random graphs that
retain only a fraction of the full graph's links (Figure 3 uses 20 %
connectivity).  ``Topology`` wraps a :class:`networkx.Graph` whose nodes are
agent ids, and exposes the neighbour queries the pairing scheduler needs.

Every mutation made through the :class:`Topology` API is additionally
recorded in a bounded **edge-delta journal**: a monotonically versioned
event list consumers (the planner's incremental CSR engine,
:mod:`repro.core.csr`) drain with :meth:`Topology.events_since` to apply
O(Δ) edits instead of rebuilding their structures from the full graph.
Mutating ``topology.graph`` directly bypasses the journal — callers doing
so must fall back to ``planner.invalidate_all()`` exactly as before.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import networkx as nx
import numpy as np

from repro.utils.validation import check_positive, check_probability

#: Journal length at which the oldest events are discarded.  A consumer
#: whose cursor falls behind the discarded range receives ``None`` from
#: :meth:`Topology.events_since` and must rebuild from the graph — bounded
#: memory, never silent staleness.
MAX_JOURNAL_EVENTS = 65_536


class Topology:
    """Undirected communication topology over agent ids."""

    def __init__(self, graph: nx.Graph) -> None:
        self._graph = graph
        #: Edge-delta journal: ``_events[i]`` is the transition from
        #: version ``_events_base + i`` to ``_events_base + i + 1``.
        self._events: list[tuple] = []
        self._events_base = 0

    # ------------------------------------------------------------------
    # Edge-delta journal
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotonic mutation counter (one increment per recorded event)."""
        return self._events_base + len(self._events)

    def events_since(self, cursor: int) -> Optional[list[tuple]]:
        """Events recorded after ``cursor`` (a prior :attr:`version` value).

        Returns ``None`` when the requested range was already discarded
        from the bounded journal — the caller must rebuild from the graph.
        Event tuples are ``("add_node", id)``, ``("add_edge", u, v)``,
        ``("remove_edge", u, v)`` and ``("remove_node", id, neighbors)``
        where ``neighbors`` is the tuple of ids the node was linked to at
        removal time.
        """
        if cursor < self._events_base:
            return None
        return self._events[cursor - self._events_base :]

    def _record(self, event: tuple) -> None:
        self._events.append(event)
        overflow = len(self._events) - MAX_JOURNAL_EVENTS
        if overflow > 0:
            del self._events[:overflow]
            self._events_base += overflow

    def _journal_add_node(self, node: int) -> bool:
        if node in self._graph:
            return False
        self._graph.add_node(node)
        self._record(("add_node", node))
        return True

    def _journal_add_edge(self, u: int, v: int) -> bool:
        if u == v or self._graph.has_edge(u, v):
            return False
        self._graph.add_edge(u, v)
        self._record(("add_edge", u, v))
        return True

    def _journal_remove_edge(self, u: int, v: int) -> bool:
        if not self._graph.has_edge(u, v):
            return False
        self._graph.remove_edge(u, v)
        self._record(("remove_edge", u, v))
        return True

    @property
    def graph(self) -> nx.Graph:
        """The underlying :class:`networkx.Graph`."""
        return self._graph

    @property
    def num_nodes(self) -> int:
        """Number of agents in the topology."""
        return self._graph.number_of_nodes()

    @property
    def num_edges(self) -> int:
        """Number of communication links."""
        return self._graph.number_of_edges()

    @property
    def nodes(self) -> list[int]:
        """Agent ids in sorted order."""
        return sorted(self._graph.nodes)

    def neighbors(self, agent_id: int) -> list[int]:
        """Agents directly connected to ``agent_id`` (sorted for determinism)."""
        if agent_id not in self._graph:
            raise KeyError(f"agent {agent_id} not in topology")
        return sorted(self._graph.neighbors(agent_id))

    def are_connected(self, a: int, b: int) -> bool:
        """Whether agents ``a`` and ``b`` share a direct link."""
        return self._graph.has_edge(a, b)

    def degree(self, agent_id: int) -> int:
        """Number of direct neighbours of an agent."""
        if agent_id not in self._graph:
            raise KeyError(f"agent {agent_id} not in topology")
        return self._graph.degree[agent_id]

    @property
    def is_connected_graph(self) -> bool:
        """Whether the topology forms a single connected component."""
        if self.num_nodes == 0:
            return True
        return nx.is_connected(self._graph)

    def connectivity_fraction(self) -> float:
        """Fraction of full-graph links present (1.0 for a complete graph)."""
        n = self.num_nodes
        if n < 2:
            return 1.0
        full_edges = n * (n - 1) / 2
        return self.num_edges / full_edges

    def subgraph(self, agent_ids: Iterable[int]) -> "Topology":
        """Topology restricted to the given agents (e.g. round participants)."""
        return Topology(self._graph.subgraph(list(agent_ids)).copy())

    def copy(self) -> "Topology":
        """Independent deep copy (runs that mutate the topology get their own)."""
        return Topology(self._graph.copy())

    def add_agent(
        self, agent_id: int, neighbors: Optional[Iterable[int]] = None
    ) -> None:
        """Wire a newly arrived agent into the topology.

        Parameters
        ----------
        agent_id:
            Id of the arriving agent (adding an existing id only adds edges).
        neighbors:
            Ids to connect the agent to; ``None`` connects it to every
            existing node (the full-graph arrival used by flash-crowd
            scenarios).  Unknown neighbour ids are ignored.
        """
        existing = set(self._graph.nodes)
        self._journal_add_node(agent_id)
        if neighbors is None:
            targets = existing - {agent_id}
        else:
            targets = {n for n in neighbors if n in existing and n != agent_id}
        for target in targets:
            self._journal_add_edge(agent_id, target)

    def attach_agent(
        self,
        agent_id: int,
        policy: str = "full",
        k: int = 2,
        rng: Optional[np.random.Generator] = None,
        neighbors: Optional[Iterable[int]] = None,
    ) -> list[int]:
        """Wire an arriving agent in via a named attachment policy.

        Explicit ``neighbors`` always win.  Otherwise:

        * ``"full"`` — connect to every existing node (same as
          :meth:`add_agent` with no neighbours);
        * ``"ring"`` — splice the newcomer into the ring's wrap-around
          position: the edge between the smallest and largest existing id
          (the wrap edge) is removed if present and the newcomer links to
          both endpoints, keeping a ring a ring;
        * ``"random-k"`` — connect to ``min(k, n)`` existing nodes sampled
          uniformly without replacement from ``rng`` (required).

        Returns the newcomer's neighbour list after wiring (sorted).
        """
        if neighbors is not None:
            self.add_agent(agent_id, neighbors)
            return self.neighbors(agent_id)
        existing = sorted(node for node in self._graph.nodes if node != agent_id)
        if policy == "full" or len(existing) <= 1:
            self.add_agent(agent_id, None)
        elif policy == "ring":
            lo, hi = existing[0], existing[-1]
            self._journal_remove_edge(lo, hi)
            self.add_agent(agent_id, (lo, hi))
        elif policy == "random-k":
            if rng is None:
                raise ValueError("random-k attachment needs an rng")
            count = min(max(1, k), len(existing))
            chosen = rng.choice(len(existing), size=count, replace=False)
            self.add_agent(agent_id, [existing[int(index)] for index in chosen])
        else:
            raise ValueError(
                f"unknown attachment policy {policy!r}; expected "
                "'full', 'ring' or 'random-k'"
            )
        return self.neighbors(agent_id)

    def remove_agent(self, agent_id: int) -> None:
        """Drop a departed agent and all its links (no-op if absent)."""
        if agent_id in self._graph:
            neighbors = tuple(self._graph.neighbors(agent_id))
            self._graph.remove_node(agent_id)
            self._record(("remove_node", agent_id, neighbors))

    def __repr__(self) -> str:
        return (
            f"Topology(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"connectivity={self.connectivity_fraction():.2f})"
        )


def full_topology(agent_ids: Sequence[int]) -> Topology:
    """Complete graph: every agent can talk to every other agent."""
    graph = nx.complete_graph(list(agent_ids))
    return Topology(graph)


def ring_topology(agent_ids: Sequence[int]) -> Topology:
    """Ring graph: each agent has exactly two neighbours."""
    ids = list(agent_ids)
    graph = nx.Graph()
    graph.add_nodes_from(ids)
    if len(ids) >= 2:
        for index, agent_id in enumerate(ids):
            graph.add_edge(agent_id, ids[(index + 1) % len(ids)])
    return Topology(graph)


def random_topology(
    agent_ids: Sequence[int],
    link_fraction: float,
    rng: np.random.Generator,
    ensure_connected: bool = True,
) -> Topology:
    """Random graph keeping ``link_fraction`` of the full graph's links.

    This matches the Figure 3 setting ("agents are randomly connected through
    only 20 % of the links present in a full graph").  When
    ``ensure_connected`` is true, a random spanning chain is added first so
    that no agent is isolated; the remaining link budget is filled with
    uniformly sampled extra edges.
    """
    check_probability(link_fraction, "link_fraction")
    ids = list(agent_ids)
    graph = nx.Graph()
    graph.add_nodes_from(ids)
    n = len(ids)
    if n < 2:
        return Topology(graph)

    full_edges = [(ids[i], ids[j]) for i in range(n) for j in range(i + 1, n)]
    target_edges = max(1, int(round(link_fraction * len(full_edges))))

    chosen: set[tuple[int, int]] = set()
    if ensure_connected:
        order = list(rng.permutation(ids))
        for a, b in zip(order, order[1:]):
            chosen.add((min(a, b), max(a, b)))

    remaining = [edge for edge in full_edges if edge not in chosen]
    extra_needed = max(0, target_edges - len(chosen))
    if extra_needed > 0 and remaining:
        extra_indices = rng.choice(
            len(remaining), size=min(extra_needed, len(remaining)), replace=False
        )
        for index in extra_indices:
            chosen.add(remaining[int(index)])

    graph.add_edges_from(chosen)
    return Topology(graph)


def random_k_topology(
    agent_ids: Sequence[int],
    k: int,
    rng: np.random.Generator,
    ensure_connected: bool = True,
) -> Topology:
    """Sparse random graph with ~``k`` links per agent, built in O(n·k).

    :func:`random_topology` enumerates all n·(n−1)/2 candidate links, which
    is what the Figure 3 setting (a *fraction* of the full graph) asks for
    but becomes unusable at the 10k+ populations the scalable planner
    targets.  Here each agent draws ``k`` peers uniformly at random
    (duplicates and self-links discarded), optionally on top of a random
    spanning chain, so construction cost follows the edge count rather
    than the population squared.
    """
    check_positive(k, "k")
    ids = list(agent_ids)
    graph = nx.Graph()
    graph.add_nodes_from(ids)
    n = len(ids)
    if n < 2:
        return Topology(graph)

    if ensure_connected:
        order = rng.permutation(n)
        graph.add_edges_from(
            (ids[int(a)], ids[int(b)]) for a, b in zip(order, order[1:])
        )
    sources = np.repeat(np.arange(n), k)
    targets = rng.integers(0, n, size=n * k)
    keep = sources != targets
    graph.add_edges_from(
        (ids[int(a)], ids[int(b)])
        for a, b in zip(sources[keep], targets[keep])
    )
    return Topology(graph)
