"""Minimal numpy neural-network substrate.

Replaces PyTorch in this reproduction: layers with explicit
forward/backward passes, parameter containers, losses, SGD with momentum,
and learning-rate schedules.  The split-training machinery in
``repro.models`` and ``repro.training`` is built exclusively on this
package, so the local-loss split-training code path of the paper is
exercised end to end with real gradient updates.
"""

from repro.nn.module import Module, Parameter, Sequential
from repro.nn.layers import (
    Dense,
    ReLU,
    Tanh,
    Sigmoid,
    LayerNorm,
    Flatten,
    Dropout,
    Identity,
    ResidualBlock,
)
from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.nn.optim import SGD
from repro.nn.schedule import StepDecay, ReduceOnPlateau, ConstantSchedule
from repro.nn.functional import softmax, one_hot, relu
from repro.nn.serialization import get_flat_parameters, set_flat_parameters, parameter_count

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "Dense",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "LayerNorm",
    "Flatten",
    "Dropout",
    "Identity",
    "ResidualBlock",
    "CrossEntropyLoss",
    "MSELoss",
    "SGD",
    "StepDecay",
    "ReduceOnPlateau",
    "ConstantSchedule",
    "softmax",
    "one_hot",
    "relu",
    "get_flat_parameters",
    "set_flat_parameters",
    "parameter_count",
]
