"""Stateless numerical helpers shared by layers and losses."""

from __future__ import annotations

import numpy as np


def relu(values: np.ndarray) -> np.ndarray:
    """Elementwise rectified linear unit."""
    return np.maximum(values, 0.0)


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    logits = np.asarray(logits, dtype=np.float64)
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis``."""
    logits = np.asarray(logits, dtype=np.float64)
    shifted = logits - logits.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode integer class labels into shape ``(N, num_classes)``."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(
            f"labels must lie in [0, {num_classes}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    encoded = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded
