"""Weight initialisation schemes."""

from __future__ import annotations

import numpy as np


def he_normal(
    fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """He (Kaiming) normal initialisation, suited to ReLU networks."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError(f"fan_in and fan_out must be positive, got {fan_in}, {fan_out}")
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=(fan_in, fan_out))


def xavier_uniform(
    fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Glorot uniform initialisation, suited to tanh networks."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError(f"fan_in and fan_out must be positive, got {fan_in}, {fan_out}")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))
