"""Layers: dense, activations, dropout, flatten, and residual blocks.

Every layer caches whatever it needs during ``forward`` to compute exact
gradients in ``backward``.  The residual block mirrors the structure of the
CIFAR ResNets used by the paper (two transform layers plus an identity
skip), which is what makes the proxy model's split points analogous to
offloading ResNet layers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.init import he_normal
from repro.nn.module import Module, Parameter, Sequential


class Dense(Module):
    """Fully connected layer: ``y = x W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: Optional[np.random.Generator] = None,
        name: str = "dense",
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError(
                f"feature sizes must be positive, got {in_features}, {out_features}"
            )
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(he_normal(in_features, out_features, rng), f"{name}.weight")
        self.bias = Parameter(np.zeros(out_features), f"{name}.bias")
        self._input_cache: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 2 or inputs.shape[1] != self.in_features:
            raise ValueError(
                f"expected input of shape (N, {self.in_features}), got {inputs.shape}"
            )
        self._input_cache = inputs
        return inputs @ self.weight.value + self.bias.value

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_cache is None:
            raise RuntimeError("backward called before forward")
        inputs = self._input_cache
        self.weight.grad += inputs.T @ grad_output
        self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.value.T

    def parameters(self) -> list[Parameter]:
        return [self.weight, self.bias]


class ReLU(Module):
    """Rectified linear unit activation."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._mask = inputs > 0
        return np.where(self._mask, inputs, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._mask


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def __init__(self) -> None:
        super().__init__()
        self._output: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._output = np.tanh(inputs)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return grad_output * (1.0 - self._output**2)


class Identity(Module):
    """Pass-through layer (useful as a placeholder in split points)."""

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        return inputs

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output


class Flatten(Module):
    """Flatten all trailing dimensions into features: ``(N, ...) -> (N, D)``."""

    def __init__(self) -> None:
        super().__init__()
        self._input_shape: Optional[tuple[int, ...]] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._input_shape = inputs.shape
        return inputs.reshape(inputs.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        return grad_output.reshape(self._input_shape)


class Dropout(Module):
    """Inverted dropout; identity in evaluation mode."""

    def __init__(self, rate: float = 0.1, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must lie in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._mask: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        if not self.training or self.rate == 0.0:
            self._mask = None
            return inputs
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(inputs.shape) < keep) / keep
        return inputs * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask


class Sigmoid(Module):
    """Logistic sigmoid activation."""

    def __init__(self) -> None:
        super().__init__()
        self._output: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._output = 1.0 / (1.0 + np.exp(-np.asarray(inputs, dtype=np.float64)))
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._output * (1.0 - self._output)


class LayerNorm(Module):
    """Layer normalisation over the feature dimension with learnable scale/shift."""

    def __init__(self, features: int, epsilon: float = 1e-5, name: str = "layernorm") -> None:
        super().__init__()
        if features <= 0:
            raise ValueError(f"features must be positive, got {features}")
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.features = features
        self.epsilon = epsilon
        self.gamma = Parameter(np.ones(features), f"{name}.gamma")
        self.beta = Parameter(np.zeros(features), f"{name}.beta")
        self._cache: Optional[tuple[np.ndarray, np.ndarray]] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 2 or inputs.shape[1] != self.features:
            raise ValueError(
                f"expected input of shape (N, {self.features}), got {inputs.shape}"
            )
        mean = inputs.mean(axis=1, keepdims=True)
        variance = inputs.var(axis=1, keepdims=True)
        inv_std = 1.0 / np.sqrt(variance + self.epsilon)
        normalized = (inputs - mean) * inv_std
        self._cache = (normalized, inv_std)
        return normalized * self.gamma.value + self.beta.value

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        normalized, inv_std = self._cache
        self.gamma.grad += (grad_output * normalized).sum(axis=0)
        self.beta.grad += grad_output.sum(axis=0)
        grad_normalized = grad_output * self.gamma.value
        # Standard layer-norm backward: remove the mean and the projection on
        # the normalized activations.
        return inv_std * (
            grad_normalized
            - grad_normalized.mean(axis=1, keepdims=True)
            - normalized * (grad_normalized * normalized).mean(axis=1, keepdims=True)
        )

    def parameters(self) -> list[Parameter]:
        return [self.gamma, self.beta]


class ResidualBlock(Module):
    """``y = x + body(x)`` with an exact gradient through both branches.

    ``body`` must preserve the feature dimension.  This is the proxy-model
    analogue of the ResNet basic block; stacking ``ResidualBlock`` instances
    gives the proxy model the same "split anywhere between blocks" structure
    the paper exploits for workload offloading.
    """

    def __init__(self, body: Module) -> None:
        super().__init__()
        self.body = body

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        return inputs + self.body.forward(inputs)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output + self.body.backward(grad_output)

    def parameters(self) -> list[Parameter]:
        return self.body.parameters()

    def children(self):
        return [self.body]


def dense_residual_block(
    features: int,
    hidden: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    name: str = "block",
) -> ResidualBlock:
    """Standard two-layer residual block: Dense → ReLU → Dense with a skip."""
    hidden = hidden if hidden is not None else features
    rng = rng if rng is not None else np.random.default_rng(0)
    body = Sequential(
        Dense(features, hidden, rng=rng, name=f"{name}.fc1"),
        ReLU(),
        Dense(hidden, features, rng=rng, name=f"{name}.fc2"),
    )
    return ResidualBlock(body)
