"""Loss functions with explicit gradients."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.functional import log_softmax, one_hot, softmax


class CrossEntropyLoss:
    """Softmax cross-entropy over integer class labels.

    ``forward`` returns the mean loss; ``backward`` returns the gradient of
    that mean loss with respect to the logits (shape ``(N, C)``).
    """

    def __init__(self) -> None:
        self._probs: Optional[np.ndarray] = None
        self._targets: Optional[np.ndarray] = None

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        logits = np.asarray(logits, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.int64)
        if logits.ndim != 2:
            raise ValueError(f"logits must be 2-D (N, C), got shape {logits.shape}")
        if targets.shape[0] != logits.shape[0]:
            raise ValueError(
                f"batch mismatch: {logits.shape[0]} logits vs {targets.shape[0]} targets"
            )
        self._probs = softmax(logits)
        self._targets = targets
        log_probs = log_softmax(logits)
        picked = log_probs[np.arange(targets.shape[0]), targets]
        return float(-picked.mean())

    def backward(self) -> np.ndarray:
        if self._probs is None or self._targets is None:
            raise RuntimeError("backward called before forward")
        batch = self._targets.shape[0]
        grad = self._probs.copy()
        grad[np.arange(batch), self._targets] -= 1.0
        return grad / batch

    def __call__(self, logits: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(logits, targets)


class MSELoss:
    """Mean squared error between predictions and continuous targets."""

    def __init__(self) -> None:
        self._diff: Optional[np.ndarray] = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        predictions = np.asarray(predictions, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if predictions.shape != targets.shape:
            raise ValueError(
                f"shape mismatch: {predictions.shape} vs {targets.shape}"
            )
        self._diff = predictions - targets
        return float(np.mean(self._diff**2))

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise RuntimeError("backward called before forward")
        return 2.0 * self._diff / self._diff.size

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(predictions, targets)
