"""Module and parameter primitives.

A :class:`Module` owns :class:`Parameter` objects and implements an explicit
``forward`` / ``backward`` pair.  ``backward`` receives the gradient of the
loss with respect to the module's output and must (a) accumulate gradients
into its parameters and (b) return the gradient with respect to its input so
that upstream modules can continue the chain.  This is all the autodiff the
reproduction needs.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

import numpy as np


class Parameter:
    """A trainable tensor with an accumulated gradient."""

    def __init__(self, value: np.ndarray, name: str = "param") -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the parameter tensor."""
        return self.value.shape

    @property
    def size(self) -> int:
        """Number of scalar entries."""
        return int(self.value.size)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero."""
        self.grad[...] = 0.0

    def __repr__(self) -> str:
        return f"Parameter(name={self.name!r}, shape={self.shape})"


class Module:
    """Base class for all layers and models."""

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Compute the module output for a batch of inputs."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate: accumulate parameter grads, return grad w.r.t. input."""
        raise NotImplementedError

    def parameters(self) -> list[Parameter]:
        """All trainable parameters of this module (and submodules)."""
        return []

    # ------------------------------------------------------------------
    # Conveniences
    # ------------------------------------------------------------------
    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.forward(inputs)

    def zero_grad(self) -> None:
        """Reset gradients of every parameter."""
        for parameter in self.parameters():
            parameter.zero_grad()

    def train(self) -> "Module":
        """Switch to training mode (affects e.g. dropout)."""
        self.training = True
        for child in self.children():
            child.train()
        return self

    def eval(self) -> "Module":
        """Switch to evaluation mode."""
        self.training = False
        for child in self.children():
            child.eval()
        return self

    def children(self) -> Iterable["Module"]:
        """Direct submodules; overridden by containers."""
        return []

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return sum(parameter.size for parameter in self.parameters())


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.modules: list[Module] = list(modules)

    def append(self, module: Module) -> "Sequential":
        """Add a module to the end of the chain."""
        self.modules.append(module)
        return self

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        output = inputs
        for module in self.modules:
            output = module.forward(output)
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for module in reversed(self.modules):
            grad = module.backward(grad)
        return grad

    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        for module in self.modules:
            params.extend(module.parameters())
        return params

    def children(self) -> Iterable[Module]:
        return list(self.modules)

    def __len__(self) -> int:
        return len(self.modules)

    def __getitem__(self, index: int) -> Module:
        return self.modules[index]

    def __iter__(self) -> Iterator[Module]:
        return iter(self.modules)

    def slice(self, start: int, stop: Optional[int] = None) -> "Sequential":
        """A new ``Sequential`` sharing the modules in ``[start, stop)``.

        Parameters are *shared*, not copied — this is exactly what split
        training needs: the slow-side and fast-side views reference the same
        underlying parameters as the full model.
        """
        return Sequential(*self.modules[start:stop])
