"""Optimizers.

The paper trains with SGD with momentum 0.9; that is the only optimizer the
reproduction needs, but it is implemented against the generic
:class:`~repro.nn.module.Parameter` interface so adding others is trivial.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.utils.validation import check_non_negative, check_positive


class SGD:
    """Stochastic gradient descent with (heavy-ball) momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        learning_rate: float = 0.001,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer needs at least one parameter")
        check_positive(learning_rate, "learning_rate")
        check_non_negative(momentum, "momentum")
        if momentum >= 1.0:
            raise ValueError(f"momentum must be < 1, got {momentum}")
        check_non_negative(weight_decay, "weight_decay")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.value) for p in self.parameters]

    def zero_grad(self) -> None:
        """Reset gradients of all managed parameters."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        """Apply one update using the currently accumulated gradients."""
        for parameter, velocity in zip(self.parameters, self._velocity):
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.value
            velocity *= self.momentum
            velocity -= self.learning_rate * grad
            parameter.value += velocity

    def set_learning_rate(self, learning_rate: float) -> None:
        """Update the learning rate (used by schedules)."""
        check_positive(learning_rate, "learning_rate")
        self.learning_rate = learning_rate
