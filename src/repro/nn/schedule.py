"""Learning-rate schedules.

The paper starts at 0.001 and multiplies the learning rate by 0.2 (10
agents) or 0.5 (20/50/100 agents) whenever accuracy plateaus; that is
:class:`ReduceOnPlateau` here.  :class:`StepDecay` and
:class:`ConstantSchedule` are provided for the examples and ablations.
"""

from __future__ import annotations

from repro.utils.validation import check_positive, check_probability


class ConstantSchedule:
    """Learning rate that never changes."""

    def __init__(self, learning_rate: float) -> None:
        check_positive(learning_rate, "learning_rate")
        self.learning_rate = learning_rate

    def step(self, metric: float | None = None) -> float:
        """Return the (unchanged) learning rate."""
        return self.learning_rate


class StepDecay:
    """Multiply the learning rate by ``factor`` every ``step_size`` calls."""

    def __init__(self, learning_rate: float, step_size: int, factor: float = 0.5) -> None:
        check_positive(learning_rate, "learning_rate")
        check_positive(step_size, "step_size")
        check_probability(factor, "factor")
        self.learning_rate = learning_rate
        self.step_size = int(step_size)
        self.factor = factor
        self._calls = 0

    def step(self, metric: float | None = None) -> float:
        """Advance one round and return the current learning rate."""
        self._calls += 1
        if self._calls % self.step_size == 0:
            self.learning_rate *= self.factor
        return self.learning_rate


class ReduceOnPlateau:
    """Reduce the learning rate by ``factor`` when a metric stops improving.

    ``step`` is called once per round with the monitored metric (accuracy by
    default, i.e. higher is better).  If no improvement larger than
    ``min_delta`` is seen for ``patience`` consecutive rounds, the learning
    rate is multiplied by ``factor`` (never dropping below ``min_lr``).
    """

    def __init__(
        self,
        learning_rate: float,
        factor: float = 0.2,
        patience: int = 10,
        min_delta: float = 1e-4,
        min_lr: float = 1e-6,
        mode: str = "max",
    ) -> None:
        check_positive(learning_rate, "learning_rate")
        check_probability(factor, "factor")
        check_positive(patience, "patience")
        if mode not in ("max", "min"):
            raise ValueError(f"mode must be 'max' or 'min', got {mode!r}")
        self.learning_rate = learning_rate
        self.factor = factor
        self.patience = int(patience)
        self.min_delta = min_delta
        self.min_lr = min_lr
        self.mode = mode
        self._best: float | None = None
        self._bad_rounds = 0

    def _improved(self, metric: float) -> bool:
        if self._best is None:
            return True
        if self.mode == "max":
            return metric > self._best + self.min_delta
        return metric < self._best - self.min_delta

    def step(self, metric: float | None = None) -> float:
        """Record one round's metric and return the current learning rate."""
        if metric is None:
            return self.learning_rate
        if self._improved(metric):
            self._best = metric
            self._bad_rounds = 0
        else:
            self._bad_rounds += 1
            if self._bad_rounds >= self.patience:
                self.learning_rate = max(self.min_lr, self.learning_rate * self.factor)
                self._bad_rounds = 0
        return self.learning_rate
