"""Flattening model parameters to vectors and back.

AllReduce (and the privacy mechanisms that perturb whole models) operate on
flat float vectors; these helpers convert between a module's parameter list
and a single contiguous vector without copying structure information
anywhere else.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


def parameter_count(module: Module) -> int:
    """Total number of scalar parameters in a module."""
    return sum(parameter.size for parameter in module.parameters())


def get_flat_parameters(module: Module) -> np.ndarray:
    """Concatenate all parameters of ``module`` into one float64 vector."""
    parameters = module.parameters()
    if not parameters:
        return np.zeros(0, dtype=np.float64)
    return np.concatenate([parameter.value.ravel() for parameter in parameters])


def set_flat_parameters(module: Module, flat: np.ndarray) -> None:
    """Write a flat vector back into the module's parameters in place."""
    flat = np.asarray(flat, dtype=np.float64)
    expected = parameter_count(module)
    if flat.size != expected:
        raise ValueError(
            f"flat vector has {flat.size} entries but module has {expected} parameters"
        )
    offset = 0
    for parameter in module.parameters():
        size = parameter.size
        parameter.value[...] = flat[offset : offset + size].reshape(parameter.shape)
        offset += size


def get_flat_gradients(module: Module) -> np.ndarray:
    """Concatenate all parameter gradients into one float64 vector."""
    parameters = module.parameters()
    if not parameters:
        return np.zeros(0, dtype=np.float64)
    return np.concatenate([parameter.grad.ravel() for parameter in parameters])
