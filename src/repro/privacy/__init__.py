"""Privacy toolkit (Section IV-C / V-B-4 of the paper).

Three mechanisms the paper integrates with ComDML:

* :class:`~repro.privacy.distance_correlation.DistanceCorrelationDefense` —
  reduces the distance correlation between raw inputs and the intermediate
  activations shipped across the split;
* :class:`~repro.privacy.patch_shuffle.PatchShuffle` — permutes feature
  patches of the intermediate activations;
* :class:`~repro.privacy.differential_privacy.DifferentialPrivacy` —
  clips and perturbs model parameters with Laplace noise before aggregation.
"""

from repro.privacy.distance_correlation import (
    distance_correlation,
    DistanceCorrelationDefense,
)
from repro.privacy.patch_shuffle import PatchShuffle
from repro.privacy.differential_privacy import DifferentialPrivacy

__all__ = [
    "distance_correlation",
    "DistanceCorrelationDefense",
    "PatchShuffle",
    "DifferentialPrivacy",
]
