"""Differential privacy for model aggregation.

Before an agent's model update enters the aggregation, its parameter vector
is clipped to an L2 norm bound and perturbed with Laplace noise calibrated
to the (ε, δ) budget — the mechanism the paper evaluates with Laplace noise
at ε = 0.5, δ = 1e-5.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.validation import check_positive, check_probability


class DifferentialPrivacy:
    """Clip-and-perturb mechanism applied to flat parameter vectors."""

    def __init__(
        self,
        epsilon: float = 0.5,
        delta: float = 1e-5,
        clip_norm: float = 1.0,
        mechanism: str = "laplace",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        check_positive(epsilon, "epsilon")
        check_probability(delta, "delta")
        check_positive(clip_norm, "clip_norm")
        if mechanism not in ("laplace", "gaussian"):
            raise ValueError(
                f"mechanism must be 'laplace' or 'gaussian', got {mechanism!r}"
            )
        self.epsilon = epsilon
        self.delta = delta
        self.clip_norm = clip_norm
        self.mechanism = mechanism
        self._rng = rng if rng is not None else np.random.default_rng(0)

    # ------------------------------------------------------------------
    def clip(self, parameters: np.ndarray) -> np.ndarray:
        """Scale the vector so its L2 norm does not exceed ``clip_norm``."""
        parameters = np.asarray(parameters, dtype=np.float64)
        norm = float(np.linalg.norm(parameters))
        if norm <= self.clip_norm or norm == 0.0:
            return parameters.copy()
        return parameters * (self.clip_norm / norm)

    @property
    def noise_scale(self) -> float:
        """Scale of the additive noise implied by the privacy budget.

        For the Laplace mechanism the scale is ``sensitivity / ε`` with L1
        sensitivity approximated by ``2 × clip_norm``; for the Gaussian
        mechanism the standard ``sqrt(2 ln(1.25/δ)) × sensitivity / ε`` is
        used with L2 sensitivity ``2 × clip_norm``.
        """
        sensitivity = 2.0 * self.clip_norm
        if self.mechanism == "laplace":
            return sensitivity / self.epsilon
        return float(np.sqrt(2.0 * np.log(1.25 / self.delta)) * sensitivity / self.epsilon)

    def add_noise(self, parameters: np.ndarray) -> np.ndarray:
        """Add mechanism noise (per-coordinate, scaled by vector size)."""
        parameters = np.asarray(parameters, dtype=np.float64)
        if parameters.size == 0:
            return parameters.copy()
        # Spread the total noise budget across coordinates so the expected
        # perturbation norm matches the scalar mechanism's scale.
        per_coordinate = self.noise_scale / np.sqrt(parameters.size)
        if self.mechanism == "laplace":
            noise = self._rng.laplace(0.0, per_coordinate, size=parameters.shape)
        else:
            noise = self._rng.normal(0.0, per_coordinate, size=parameters.shape)
        return parameters + noise

    def privatize(self, parameters: np.ndarray) -> np.ndarray:
        """Clip then perturb a parameter vector."""
        return self.add_noise(self.clip(parameters))

    def __call__(self, parameters: np.ndarray) -> np.ndarray:
        return self.privatize(parameters)
