"""Distance-correlation based leakage reduction (NoPeek-style).

The paper cites Vepakomma et al.'s NoPeek, which adds a distance-correlation
term between raw inputs and intermediate activations to the training loss.
Our numpy substrate has no automatic differentiation through the
distance-correlation statistic, so the defense is realised as a *calibrated
noising of the shipped activations*: Gaussian noise is scaled (by bisection
on the measured statistic) until the empirical distance correlation between
inputs and shipped activations drops to ``alpha`` times its undefended
value.  The measurable outcome the paper reports — reduced input/activation
distance correlation at a small accuracy cost — is preserved; the
substitution is documented in DESIGN.md.

:func:`distance_correlation` itself is the exact sample statistic
(Székely et al., 2007) and is used both by the defense's calibration loop
and by the tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.validation import check_probability


def _centered_distance_matrix(values: np.ndarray) -> np.ndarray:
    """Double-centered pairwise Euclidean distance matrix."""
    values = np.asarray(values, dtype=np.float64)
    if values.ndim == 1:
        values = values[:, None]
    squared = np.sum(values**2, axis=1)
    distances = np.sqrt(
        np.maximum(squared[:, None] + squared[None, :] - 2.0 * values @ values.T, 0.0)
    )
    row_means = distances.mean(axis=1, keepdims=True)
    col_means = distances.mean(axis=0, keepdims=True)
    grand_mean = distances.mean()
    return distances - row_means - col_means + grand_mean


def distance_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Sample distance correlation between two batches of vectors.

    Both arguments must have the same number of rows (samples).  Returns a
    value in ``[0, 1]``; 0 indicates independence in the large-sample limit.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape[0] != y.shape[0]:
        raise ValueError(
            f"x and y must have the same number of samples, got {x.shape[0]} and {y.shape[0]}"
        )
    if x.shape[0] < 2:
        raise ValueError("distance correlation needs at least 2 samples")
    a = _centered_distance_matrix(x)
    b = _centered_distance_matrix(y)
    dcov_xy = np.sqrt(max((a * b).mean(), 0.0))
    dcov_xx = np.sqrt(max((a * a).mean(), 0.0))
    dcov_yy = np.sqrt(max((b * b).mean(), 0.0))
    denominator = np.sqrt(dcov_xx * dcov_yy)
    if denominator == 0.0:
        return 0.0
    return float(dcov_xy / denominator)


class DistanceCorrelationDefense:
    """Noise the shipped activation until its distance correlation to the input drops.

    Parameters
    ----------
    alpha:
        Target fraction of the undefended distance correlation to retain
        (the paper evaluates ``alpha = 0.5``).  Smaller alpha → more noise →
        stronger privacy, lower utility.
    rng:
        Noise generator.
    max_iterations:
        Bisection steps used to calibrate the noise scale per batch.
    """

    def __init__(
        self,
        alpha: float = 0.5,
        rng: Optional[np.random.Generator] = None,
        max_iterations: int = 12,
    ) -> None:
        check_probability(alpha, "alpha")
        self.alpha = alpha
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.max_iterations = int(max_iterations)
        #: Measured distance correlations (before, after) per transformed batch.
        self.last_measurement: Optional[tuple[float, float]] = None

    def protect(self, inputs: np.ndarray, activations: np.ndarray) -> np.ndarray:
        """Return a privacy-protected copy of ``activations``."""
        activations = np.asarray(activations, dtype=np.float64)
        if activations.shape[0] < 2:
            return activations.copy()
        baseline = distance_correlation(inputs, activations)
        if baseline == 0.0:
            self.last_measurement = (0.0, 0.0)
            return activations.copy()
        target = self.alpha * baseline
        signal_scale = float(np.std(activations)) or 1.0
        noise = self._rng.normal(size=activations.shape)

        low, high = 0.0, 8.0 * signal_scale
        protected = activations.copy()
        achieved = baseline
        for _ in range(self.max_iterations):
            mid = 0.5 * (low + high)
            candidate = activations + mid * noise
            achieved = distance_correlation(inputs, candidate)
            protected = candidate
            if achieved > target:
                low = mid
            else:
                high = mid
        # Distance correlation is invariant to a global rescaling of the
        # protected signal, so restore the original magnitude: the receiving
        # (fast) model then trains on inputs of familiar scale and the
        # defense costs accuracy through information loss, not through
        # numerically exploding activations.
        protected_scale = float(np.std(protected))
        if protected_scale > 0:
            protected = protected * (signal_scale / protected_scale)
        self.last_measurement = (baseline, achieved)
        return protected

    def make_transform(self, inputs_provider=None):
        """Build an activation transform ``z -> protect(x, z)``.

        When ``inputs_provider`` is omitted the activations themselves are
        used as the reference signal, which still yields a monotone noise
        calibration and is what the split trainer uses when raw inputs are
        not plumbed through.
        """
        def _transform(activations: np.ndarray) -> np.ndarray:
            reference = (
                inputs_provider() if inputs_provider is not None else activations
            )
            return self.protect(reference, activations)

        return _transform
