"""Patch shuffling defense (Yao et al., 2022).

Splits each intermediate-activation vector into contiguous patches and
permutes the patches with a fresh random permutation per batch.  The fast
agent still receives all the information needed for classification in
aggregate, but the spatial arrangement that an inversion attack would
exploit is destroyed.  Applied to the activations crossing the split.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.validation import check_positive


class PatchShuffle:
    """Permute contiguous feature patches of each batch of activations."""

    def __init__(
        self,
        num_patches: int = 8,
        rng: Optional[np.random.Generator] = None,
        per_sample: bool = False,
    ) -> None:
        check_positive(num_patches, "num_patches")
        self.num_patches = int(num_patches)
        self.per_sample = bool(per_sample)
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def __call__(self, activations: np.ndarray) -> np.ndarray:
        return self.shuffle(activations)

    def shuffle(self, activations: np.ndarray) -> np.ndarray:
        """Return a patch-shuffled copy of ``activations`` (shape ``(N, D)``)."""
        activations = np.asarray(activations, dtype=np.float64)
        if activations.ndim != 2:
            raise ValueError(
                f"activations must be 2-D (N, D), got shape {activations.shape}"
            )
        n, d = activations.shape
        patches = min(self.num_patches, d)
        boundaries = np.linspace(0, d, patches + 1, dtype=int)
        segments = [
            activations[:, boundaries[i] : boundaries[i + 1]] for i in range(patches)
        ]
        if self.per_sample:
            result = np.empty_like(activations)
            for row in range(n):
                order = self._rng.permutation(patches)
                result[row] = np.concatenate([segments[j][row] for j in order])
            return result
        order = self._rng.permutation(patches)
        return np.concatenate([segments[j] for j in order], axis=1)
