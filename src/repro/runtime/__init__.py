"""Event-driven training runtime shared by all methods.

``TrainingRuntime`` owns the round machinery every method shares and drives
execution as events on the simulation engine; each method plugs in a
``RoundStrategy``.  See :mod:`repro.runtime.runtime` for the execution
modes (``sync`` / ``semi-sync`` / ``async``),
:mod:`repro.runtime.dynamics` for mid-round scenario dynamics (staggered
arrivals, in-flight churn, departures), and :mod:`repro.runtime.quorum`
for the pluggable semi-sync quorum policies.

Tracing is a streaming pipeline: events pass through composable filter
stages (:mod:`repro.runtime.filters`) into pluggable sinks
(:mod:`repro.runtime.sinks`) with explicit per-stage drop accounting, and
sealed file traces carry the hash-chained audit records of
:mod:`repro.runtime.audit` (verifiable via ``comdml trace verify``).
"""

from repro.core.config import EXECUTION_MODES, QUORUM_POLICIES
from repro.runtime.audit import (
    ChainState,
    VerificationResult,
    canonical_json,
    history_audit_record,
    verify_campaign_summary,
    verify_history_record,
    verify_sealed_jsonl,
)
from repro.runtime.dynamics import DynamicsEvent, DynamicsSchedule
from repro.runtime.filters import (
    AdaptiveSamplingFilter,
    KindFilter,
    LevelFilter,
    TokenBucketFilter,
    TraceFilter,
    event_level,
)
from repro.runtime.quorum import (
    AdaptiveQuorum,
    DeadlineQuorum,
    FixedFractionQuorum,
    QuorumDecision,
    QuorumPolicy,
    make_quorum_policy,
    resolve_quorum,
)
from repro.runtime.runtime import TrainingRuntime
from repro.runtime.strategy import (
    RoundPlan,
    RoundStrategy,
    StrategyDefaults,
    WorkUnit,
    participation_fraction,
    solo_decisions,
)
from repro.runtime.sinks import (
    CallbackSink,
    JSONLSink,
    MemorySink,
    SQLiteSink,
    TraceSink,
    load_sqlite_trace,
    make_sink,
)
from repro.runtime.trace import (
    EventTrace,
    PipelineStats,
    TraceEvent,
    build_event_trace,
)

__all__ = [
    "EXECUTION_MODES",
    "QUORUM_POLICIES",
    "TrainingRuntime",
    "DynamicsEvent",
    "DynamicsSchedule",
    "QuorumDecision",
    "QuorumPolicy",
    "FixedFractionQuorum",
    "DeadlineQuorum",
    "AdaptiveQuorum",
    "make_quorum_policy",
    "resolve_quorum",
    "RoundPlan",
    "RoundStrategy",
    "StrategyDefaults",
    "WorkUnit",
    "participation_fraction",
    "solo_decisions",
    "EventTrace",
    "TraceEvent",
    "PipelineStats",
    "build_event_trace",
    "TraceFilter",
    "LevelFilter",
    "KindFilter",
    "TokenBucketFilter",
    "AdaptiveSamplingFilter",
    "event_level",
    "TraceSink",
    "MemorySink",
    "CallbackSink",
    "JSONLSink",
    "SQLiteSink",
    "load_sqlite_trace",
    "make_sink",
    "ChainState",
    "VerificationResult",
    "canonical_json",
    "history_audit_record",
    "verify_history_record",
    "verify_campaign_summary",
    "verify_sealed_jsonl",
]
