"""Event-driven training runtime shared by all methods.

``TrainingRuntime`` owns the round machinery every method shares and drives
execution as events on the simulation engine; each method plugs in a
``RoundStrategy``.  See :mod:`repro.runtime.runtime` for the execution
modes (``sync`` / ``semi-sync`` / ``async``),
:mod:`repro.runtime.dynamics` for mid-round scenario dynamics (staggered
arrivals, in-flight churn, departures), and :mod:`repro.runtime.quorum`
for the pluggable semi-sync quorum policies.
"""

from repro.core.config import EXECUTION_MODES, QUORUM_POLICIES
from repro.runtime.dynamics import DynamicsEvent, DynamicsSchedule
from repro.runtime.quorum import (
    AdaptiveQuorum,
    DeadlineQuorum,
    FixedFractionQuorum,
    QuorumDecision,
    QuorumPolicy,
    make_quorum_policy,
    resolve_quorum,
)
from repro.runtime.runtime import TrainingRuntime
from repro.runtime.strategy import (
    RoundPlan,
    RoundStrategy,
    StrategyDefaults,
    WorkUnit,
    participation_fraction,
    solo_decisions,
)
from repro.runtime.trace import EventTrace, TraceEvent

__all__ = [
    "EXECUTION_MODES",
    "QUORUM_POLICIES",
    "TrainingRuntime",
    "DynamicsEvent",
    "DynamicsSchedule",
    "QuorumDecision",
    "QuorumPolicy",
    "FixedFractionQuorum",
    "DeadlineQuorum",
    "AdaptiveQuorum",
    "make_quorum_policy",
    "resolve_quorum",
    "RoundPlan",
    "RoundStrategy",
    "StrategyDefaults",
    "WorkUnit",
    "participation_fraction",
    "solo_decisions",
    "EventTrace",
    "TraceEvent",
]
