"""Event-driven training runtime shared by all methods.

``TrainingRuntime`` owns the round machinery every method shares and drives
execution as events on the simulation engine; each method plugs in a
``RoundStrategy``.  See :mod:`repro.runtime.runtime` for the execution
modes (``sync`` / ``semi-sync`` / ``async``).
"""

from repro.core.config import EXECUTION_MODES
from repro.runtime.runtime import TrainingRuntime
from repro.runtime.strategy import (
    RoundPlan,
    RoundStrategy,
    StrategyDefaults,
    WorkUnit,
    participation_fraction,
    solo_decisions,
)
from repro.runtime.trace import EventTrace, TraceEvent

__all__ = [
    "EXECUTION_MODES",
    "TrainingRuntime",
    "RoundPlan",
    "RoundStrategy",
    "StrategyDefaults",
    "WorkUnit",
    "participation_fraction",
    "solo_decisions",
    "EventTrace",
    "TraceEvent",
]
