"""Tamper-evident audit records for traces, run histories, and summaries.

Every published artifact of this reproduction — event traces, run
histories, campaign summaries — is ultimately a sequence of JSON records.
This module makes those sequences *verifiable end-to-end* by folding each
record into a SHA-256 hash chain over its canonical serialisation:

``head₀ = sha256(GENESIS_LABEL)`` and
``headᵢ₊₁ = sha256(headᵢ ‖ sha256(canonical(recordᵢ)))``.

Because each link commits to the entire prefix, *any* mutation — a flipped
byte, a dropped record, two records swapped — changes every subsequent
head, so verification pinpoints the exact first divergent index.  Three
chained artifact families are supported:

* **Sealed JSONL traces** — written by
  :class:`~repro.runtime.sinks.JSONLSink`: one line per event carrying its
  chain head, periodic segment seals, and a final seal.  Verified by
  :func:`verify_sealed_jsonl` (surfaced as ``comdml trace verify``).
* **Run-history audit records** — :func:`history_audit_record` extends
  :meth:`~repro.training.metrics.RunHistory.digest` from a flat hash into
  a per-round chain; :func:`verify_history_record` re-derives it.
* **Campaign summaries** — :func:`repro.experiments.reporting.campaign_summary`
  folds per-cell payload digests through :class:`ChainState`;
  :func:`verify_campaign_summary` re-derives the fold.

All serialisation goes through :func:`canonical_json` (sorted keys, no
whitespace, ``allow_nan=False``), so a digest is a pure function of the
data — never of dict ordering or float quirks.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.training.metrics import RunHistory

#: Version label of the chain construction; hashed into the genesis head so
#: records from incompatible constructions can never cross-verify.
ALGORITHM = "sha256-chain-v1"

#: Label whose hash is the chain's genesis head.
GENESIS_LABEL = "comdml-audit-genesis-v1"


def canonical_json(payload: Any) -> str:
    """Canonical JSON form: sorted keys, compact separators, NaN rejected."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def canonical_digest(payload: Any) -> str:
    """sha256 hex digest of a payload's canonical JSON form."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def genesis_head() -> str:
    """The chain head before any record has been folded in."""
    return hashlib.sha256(
        f"{ALGORITHM}:{GENESIS_LABEL}".encode("utf-8")
    ).hexdigest()


@dataclass
class ChainState:
    """Running state of one audit chain: records folded so far + head."""

    index: int = 0
    head: str = field(default_factory=genesis_head)

    def update(self, record: Any) -> str:
        """Fold one record into the chain; returns the new head."""
        record_digest = canonical_digest(record)
        self.head = hashlib.sha256(
            (self.head + record_digest).encode("utf-8")
        ).hexdigest()
        self.index += 1
        return self.head


# ----------------------------------------------------------------------
# Sealed JSONL traces
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class VerificationResult:
    """Outcome of verifying a sealed artifact.

    ``first_divergent_index`` is the 0-based position of the first record
    whose stored index, body, or chain head diverges from the re-derived
    chain (``None`` when the artifact verifies clean or fails before any
    record, e.g. an empty file).
    """

    ok: bool
    events: int = 0
    head: str = ""
    error: Optional[str] = None
    first_divergent_index: Optional[int] = None

    def __bool__(self) -> bool:
        return self.ok


def event_line(index: int, event_dict: Mapping[str, Any], chain: str) -> str:
    """Serialise one sealed-trace event line (canonical JSON)."""
    return canonical_json({"i": index, "event": dict(event_dict), "chain": chain})


def segment_seal_line(
    segment: int, first_index: int, count: int, head: str
) -> str:
    """Serialise one segment-seal line."""
    return canonical_json(
        {
            "seal": {
                "segment": segment,
                "first_index": first_index,
                "count": count,
                "head": head,
            }
        }
    )


def final_seal_line(events: int, head: str, extra: Optional[Mapping[str, Any]] = None) -> str:
    """Serialise the final seal line closing a trace."""
    seal: dict[str, Any] = {
        "final": True,
        "algorithm": ALGORITHM,
        "genesis": genesis_head(),
        "events": events,
        "head": head,
    }
    if extra:
        seal.update(extra)
    return canonical_json({"seal": seal})


def verify_sealed_jsonl(path: str | Path) -> VerificationResult:
    """Re-derive the hash chain of a sealed JSONL trace.

    Walks the file line by line, re-deriving the chain from the event
    *bodies* and comparing against each line's stored index and chain
    head, every segment seal, and the final seal.  The first divergence —
    a flipped byte, a missing event, a swapped pair — is reported with its
    exact 0-based event index.
    """
    path = Path(path)
    chain = ChainState()
    expected_index = 0
    sealed = False
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError as error:
        return VerificationResult(ok=False, error=f"unreadable trace: {error}")
    with handle:
        for line_number, raw in enumerate(handle, start=1):
            raw = raw.strip()
            if not raw:
                continue
            if sealed:
                return VerificationResult(
                    ok=False,
                    events=expected_index,
                    head=chain.head,
                    error=f"line {line_number}: content after the final seal",
                    first_divergent_index=expected_index,
                )
            try:
                record = json.loads(raw)
            except json.JSONDecodeError:
                return VerificationResult(
                    ok=False,
                    events=expected_index,
                    head=chain.head,
                    error=f"line {line_number}: not valid JSON",
                    first_divergent_index=expected_index,
                )
            if "seal" in record:
                seal = record["seal"]
                if seal.get("final"):
                    if seal.get("algorithm") != ALGORITHM:
                        return VerificationResult(
                            ok=False,
                            events=expected_index,
                            head=chain.head,
                            error=(
                                f"final seal algorithm {seal.get('algorithm')!r} "
                                f"!= {ALGORITHM!r}"
                            ),
                        )
                    if seal.get("events") != expected_index:
                        return VerificationResult(
                            ok=False,
                            events=expected_index,
                            head=chain.head,
                            error=(
                                f"final seal covers {seal.get('events')} events "
                                f"but the trace holds {expected_index}"
                            ),
                            first_divergent_index=min(
                                int(seal.get("events", 0)), expected_index
                            ),
                        )
                    if seal.get("head") != chain.head:
                        return VerificationResult(
                            ok=False,
                            events=expected_index,
                            head=chain.head,
                            error="final seal head does not match the re-derived chain",
                            first_divergent_index=expected_index - 1
                            if expected_index
                            else None,
                        )
                    sealed = True
                    continue
                if seal.get("head") != chain.head:
                    return VerificationResult(
                        ok=False,
                        events=expected_index,
                        head=chain.head,
                        error=(
                            f"segment {seal.get('segment')} seal head does not "
                            "match the re-derived chain"
                        ),
                        first_divergent_index=expected_index - 1
                        if expected_index
                        else None,
                    )
                continue
            stored_index = record.get("i")
            if stored_index != expected_index:
                return VerificationResult(
                    ok=False,
                    events=expected_index,
                    head=chain.head,
                    error=(
                        f"line {line_number}: event index {stored_index} where "
                        f"{expected_index} was expected (missing or reordered event)"
                    ),
                    first_divergent_index=expected_index,
                )
            derived = chain.update(record.get("event"))
            if record.get("chain") != derived:
                return VerificationResult(
                    ok=False,
                    events=expected_index,
                    head=chain.head,
                    error=(
                        f"line {line_number}: chain head mismatch — event "
                        f"{expected_index} or an earlier record was tampered with"
                    ),
                    first_divergent_index=expected_index,
                )
            expected_index += 1
    if not sealed:
        return VerificationResult(
            ok=False,
            events=expected_index,
            head=chain.head,
            error="trace is not sealed (no final seal line — truncated?)",
            first_divergent_index=expected_index - 1 if expected_index else None,
        )
    return VerificationResult(ok=True, events=expected_index, head=chain.head)


def read_sealed_events(path: str | Path) -> list[dict[str, Any]]:
    """Event bodies of a sealed JSONL trace, in order (seals skipped).

    Purely structural — run :func:`verify_sealed_jsonl` first when the
    chain must be trusted.
    """
    events: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for raw in handle:
            raw = raw.strip()
            if not raw:
                continue
            record = json.loads(raw)
            if "seal" not in record:
                events.append(record["event"])
    return events


# ----------------------------------------------------------------------
# Run-history audit records
# ----------------------------------------------------------------------

def history_audit_record(history: "RunHistory") -> dict[str, Any]:
    """Hash-chained audit record of a run history.

    Extends :meth:`~repro.training.metrics.RunHistory.digest` (one flat
    hash over everything) into a per-round chain: each round record is
    folded into a :class:`ChainState`, and the record carries every round
    body alongside its chain head, so verification localises tampering to
    the exact first divergent round.
    """
    chain = ChainState()
    rounds = []
    for record in history.records:
        body = dict(record.__dict__)
        rounds.append({"record": body, "chain": chain.update(body)})
    return {
        "algorithm": ALGORITHM,
        "method": history.method,
        "genesis": genesis_head(),
        "rounds": rounds,
        "head": chain.head,
        "digest": history.digest(),
    }


def verify_history_record(record: Mapping[str, Any]) -> VerificationResult:
    """Re-derive a :func:`history_audit_record` chain from its round bodies."""
    if record.get("algorithm") != ALGORITHM:
        return VerificationResult(
            ok=False, error=f"unknown algorithm {record.get('algorithm')!r}"
        )
    chain = ChainState()
    for index, entry in enumerate(record.get("rounds", ())):
        derived = chain.update(entry.get("record"))
        if entry.get("chain") != derived:
            return VerificationResult(
                ok=False,
                events=index,
                head=chain.head,
                error=f"round {index} diverges from the re-derived chain",
                first_divergent_index=index,
            )
    if record.get("head") != chain.head:
        return VerificationResult(
            ok=False,
            events=chain.index,
            head=chain.head,
            error="record head does not match the re-derived chain",
            first_divergent_index=chain.index - 1 if chain.index else None,
        )
    return VerificationResult(ok=True, events=chain.index, head=chain.head)


# ----------------------------------------------------------------------
# Campaign summaries
# ----------------------------------------------------------------------

def fold_digests(digests: Iterable[str]) -> tuple[list[str], str]:
    """Fold a digest sequence through a chain; returns (per-item heads, head)."""
    chain = ChainState()
    heads = [chain.update(digest) for digest in digests]
    return heads, chain.head


def verify_campaign_summary(summary: Mapping[str, Any]) -> VerificationResult:
    """Re-derive the digest chain of a ``campaign_summary`` payload."""
    chain = ChainState()
    for position, row in enumerate(summary.get("per_cell", ())):
        derived = chain.update(row.get("payload_digest"))
        if row.get("chain") != derived:
            return VerificationResult(
                ok=False,
                events=position,
                head=chain.head,
                error=f"cell {position} diverges from the re-derived chain",
                first_divergent_index=position,
            )
    if summary.get("digest") != chain.head:
        return VerificationResult(
            ok=False,
            events=chain.index,
            head=chain.head,
            error="summary digest does not match the re-derived chain",
            first_divergent_index=chain.index - 1 if chain.index else None,
        )
    return VerificationResult(ok=True, events=chain.index, head=chain.head)
