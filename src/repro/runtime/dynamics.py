"""Mid-round scenario dynamics: staggered arrivals, in-flight churn, departures.

The paper's Table II setup changes agent profiles *during* training and its
motivation names stragglers that join late.  Round-boundary churn
(``ComDMLConfig.churn_fraction``) only approximates that: every
perturbation lands between rounds.  A :class:`DynamicsSchedule` instead
pins perturbations to *simulated timestamps* and registers them as events
on the :class:`~repro.sim.engine.SimulationEngine`, so they fire wherever
the clock happens to be — including in the middle of a round while work is
in flight.

Three event kinds are supported (see :class:`DynamicsEvent`):

``arrival``
    A new :class:`~repro.agents.agent.Agent` joins the
    :class:`~repro.agents.registry.AgentRegistry` at the given time and is
    wired into the method's topology via the strategy's
    ``on_agent_arrival`` hook.  It becomes eligible for the *next* pairing
    plan (mid-round arrivals never join a round already in flight).
``departure``
    The agent leaves the registry.  Any of its in-flight work units are
    abandoned; ``semi-sync`` and ``async`` rounds close without them.
``churn``
    A :class:`~repro.agents.dynamics.ResourceChurn`-style profile
    re-assignment fires at the timestamp.  In-flight work units of affected
    agents are *re-costed*: the completed fraction of the unit is kept and
    the remainder is re-priced under the new profiles through the
    strategy's ``reprice_unit`` hook, moving the unit's completion event.

The schedule itself is declarative and engine-agnostic; the
:class:`~repro.runtime.TrainingRuntime` applies the events (and falls back
to its bit-for-bit legacy execution paths when the schedule is empty, so a
run with ``DynamicsSchedule()`` is identical to one with ``None``).  Build
the schedule *before* constructing the trainer — events are registered on
the engine when the runtime is created.

>>> schedule = DynamicsSchedule()
>>> schedule.churn(500.0, fraction=0.2)
>>> schedule.departure(1200.0, agent_id=3)
>>> len(schedule)
2
>>> [event.kind for event in schedule]
['churn', 'departure']
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Optional, Sequence, Union

import numpy as np

from repro.agents.agent import Agent
from repro.agents.resources import (
    CONNECTED_BANDWIDTH_PROFILES_MBPS,
    CPU_PROFILES,
    ResourceProfile,
)
from repro.utils.validation import check_non_negative, check_positive, check_probability

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.sim.engine import SimulationEngine
    from repro.sim.events import Event

#: Valid dynamics event kinds.
DYNAMICS_KINDS = ("arrival", "departure", "churn")

#: Valid arrival-attachment policies (how a newcomer is wired into the graph).
ATTACHMENT_POLICIES = ("full", "ring", "random-k")

#: Schema tag written into serialized schedules.
SCHEDULE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ArrivalAttachment:
    """How an arriving agent is wired into the communication topology.

    ``full`` connects the newcomer to every existing node (the historical
    default), ``ring`` splices it into the ring's wrap-around position, and
    ``random-k`` links it to ``k`` uniformly sampled existing nodes (drawn
    from a generator seeded by ``seed`` and the arriving agent's id, so the
    wiring is reproducible regardless of when the event fires).
    """

    policy: str = "full"
    k: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.policy not in ATTACHMENT_POLICIES:
            raise ValueError(
                f"policy must be one of {ATTACHMENT_POLICIES}, got {self.policy!r}"
            )
        check_positive(self.k, "k")

    def rng_for(self, agent_id: int) -> np.random.Generator:
        """Deterministic generator for one arrival's random-k draw."""
        return np.random.default_rng([self.seed, int(agent_id)])


def _coerce_attachment(
    attachment: Optional[Union[str, ArrivalAttachment]],
) -> Optional[ArrivalAttachment]:
    if attachment is None or isinstance(attachment, ArrivalAttachment):
        return attachment
    return ArrivalAttachment(policy=attachment)


@dataclass(frozen=True)
class DynamicsEvent:
    """One timed scenario perturbation.

    Attributes
    ----------
    time:
        Absolute simulated time (seconds) at which the event fires.
    kind:
        ``"arrival"``, ``"departure"`` or ``"churn"``.
    agent:
        The arriving agent (``arrival`` only).
    agent_id:
        The departing agent's id (``departure`` only).
    fraction:
        Fraction of the current population to churn (``churn`` with random
        targets; mutually exclusive with ``agent_ids``).
    agent_ids:
        Explicit churn targets (``churn`` only).
    neighbors:
        Topology neighbours for an arriving agent; ``None`` defers to the
        event's attachment policy (default: connect to every existing node).
    attachment:
        :class:`ArrivalAttachment` policy used when ``neighbors`` is not
        given explicitly (``arrival`` only).
    """

    time: float
    kind: str
    agent: Optional[Agent] = None
    agent_id: Optional[int] = None
    fraction: Optional[float] = None
    agent_ids: Optional[tuple[int, ...]] = None
    neighbors: Optional[tuple[int, ...]] = None
    attachment: Optional[ArrivalAttachment] = None

    def __post_init__(self) -> None:
        check_non_negative(self.time, "time")
        if self.kind not in DYNAMICS_KINDS:
            raise ValueError(
                f"kind must be one of {DYNAMICS_KINDS}, got {self.kind!r}"
            )
        if self.kind == "arrival" and self.agent is None:
            raise ValueError("arrival events need an agent")
        if self.attachment is not None and self.kind != "arrival":
            raise ValueError("attachment policies only apply to arrival events")
        if self.kind == "departure" and self.agent_id is None:
            raise ValueError("departure events need an agent_id")
        if self.kind == "churn":
            if (self.fraction is None) == (self.agent_ids is None):
                raise ValueError(
                    "churn events need exactly one of fraction or agent_ids"
                )
            if self.fraction is not None:
                check_probability(self.fraction, "fraction")
                if self.fraction <= 0:
                    raise ValueError(
                        f"churn fraction must be positive, got {self.fraction}"
                    )
            if self.agent_ids is not None and not self.agent_ids:
                raise ValueError("churn agent_ids must not be empty")


class DynamicsSchedule:
    """Ordered collection of :class:`DynamicsEvent` for one training run.

    The builder methods (:meth:`arrival`, :meth:`departure`, :meth:`churn`,
    :meth:`arrival_wave`) validate and append events; :meth:`register`
    schedules them on a :class:`~repro.sim.engine.SimulationEngine`.
    Iteration yields events sorted by time (stable for equal timestamps).
    """

    def __init__(self, events: Iterable[DynamicsEvent] = ()) -> None:
        self._events: list[DynamicsEvent] = list(events)
        self._registered = False

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    def add(self, event: DynamicsEvent) -> None:
        """Append a pre-built event."""
        self._events.append(event)

    def arrival(
        self,
        time: float,
        agent: Agent,
        neighbors: Optional[Sequence[int]] = None,
        attachment: Optional[Union[str, ArrivalAttachment]] = None,
    ) -> None:
        """Schedule ``agent`` to join the population at ``time``.

        ``attachment`` selects how the newcomer is wired into the topology
        when no explicit ``neighbors`` are given: a policy name
        (``"full"``/``"ring"``/``"random-k"``) or a full
        :class:`ArrivalAttachment`.
        """
        self.add(
            DynamicsEvent(
                time=time,
                kind="arrival",
                agent=agent,
                neighbors=tuple(neighbors) if neighbors is not None else None,
                attachment=_coerce_attachment(attachment),
            )
        )

    def arrival_wave(
        self,
        start: float,
        interval: float,
        agents: Sequence[Agent],
        attachment: Optional[Union[str, ArrivalAttachment]] = None,
    ) -> None:
        """Schedule a staggered wave: one arrival every ``interval`` seconds.

        The flash-crowd building block: ``agents[i]`` arrives at
        ``start + i × interval``, wired in via ``attachment`` (default: full
        connectivity).
        """
        check_non_negative(start, "start")
        check_non_negative(interval, "interval")
        for index, agent in enumerate(agents):
            self.arrival(start + index * interval, agent, attachment=attachment)

    @classmethod
    def poisson(
        cls,
        horizon: float,
        arrival_rate: float = 0.0,
        departure_rate: float = 0.0,
        seed: int = 0,
        departure_candidates: Sequence[int] = (),
        id_start: int = 1000,
        samples_per_agent: int = 500,
        batch_size: int = 100,
        attachment: Optional[Union[str, ArrivalAttachment]] = None,
    ) -> "DynamicsSchedule":
        """Generate a seeded Poisson arrival/departure schedule.

        Long-horizon workload generator: arrivals form a Poisson process of
        rate ``arrival_rate`` (events per simulated second) over
        ``[0, horizon)``; each newcomer gets a fresh id (``id_start`` + a
        counter), a paper-grid resource profile drawn uniformly at random,
        a ``samples_per_agent`` shard, and the given ``attachment`` policy.
        Departures form an independent Poisson process of rate
        ``departure_rate``; each departure removes one agent drawn uniformly
        from the ids eligible at that timestamp — the initial
        ``departure_candidates`` plus any generated arrival already in the
        system — and every agent departs at most once.  The same
        ``(horizon, rates, seed)`` always yields the same schedule.

        >>> schedule = DynamicsSchedule.poisson(
        ...     horizon=10_000.0, arrival_rate=1 / 2_000.0,
        ...     departure_rate=1 / 5_000.0, seed=7,
        ...     departure_candidates=(0, 1, 2),
        ... )
        >>> all(event.time < 10_000.0 for event in schedule)
        True
        """
        check_positive(horizon, "horizon")
        check_non_negative(arrival_rate, "arrival_rate")
        check_non_negative(departure_rate, "departure_rate")
        rng = np.random.default_rng(seed)
        attach = _coerce_attachment(attachment)
        schedule = cls()

        arrivals: list[tuple[float, int]] = []
        if arrival_rate > 0:
            time = rng.exponential(1.0 / arrival_rate)
            while time < horizon:
                agent_id = id_start + len(arrivals)
                agent = Agent(
                    agent_id=agent_id,
                    profile=ResourceProfile(
                        cpu_share=float(rng.choice(CPU_PROFILES)),
                        bandwidth_mbps=float(
                            rng.choice(CONNECTED_BANDWIDTH_PROFILES_MBPS)
                        ),
                    ),
                    num_samples=samples_per_agent,
                    batch_size=batch_size,
                )
                schedule.arrival(time, agent, attachment=attach)
                arrivals.append((time, agent_id))
                time += rng.exponential(1.0 / arrival_rate)

        if departure_rate > 0:
            departed: set[int] = set()
            time = rng.exponential(1.0 / departure_rate)
            while time < horizon:
                eligible = [
                    agent_id
                    for agent_id in departure_candidates
                    if agent_id not in departed
                ]
                eligible.extend(
                    agent_id
                    for arrival_time, agent_id in arrivals
                    if arrival_time < time and agent_id not in departed
                )
                if eligible:
                    victim = eligible[int(rng.integers(len(eligible)))]
                    departed.add(victim)
                    schedule.departure(time, victim)
                time += rng.exponential(1.0 / departure_rate)
        return schedule

    def departure(self, time: float, agent_id: int) -> None:
        """Schedule agent ``agent_id`` to leave the population at ``time``."""
        self.add(DynamicsEvent(time=time, kind="departure", agent_id=agent_id))

    def churn(
        self,
        time: float,
        fraction: Optional[float] = None,
        agent_ids: Optional[Sequence[int]] = None,
    ) -> None:
        """Schedule a profile re-assignment at ``time``.

        Exactly one of ``fraction`` (random targets drawn at fire time) or
        ``agent_ids`` (explicit targets) must be given.
        """
        self.add(
            DynamicsEvent(
                time=time,
                kind="churn",
                fraction=fraction,
                agent_ids=tuple(agent_ids) if agent_ids is not None else None,
            )
        )

    # ------------------------------------------------------------------
    # Collection protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __bool__(self) -> bool:
        return bool(self._events)

    def __iter__(self) -> Iterator[DynamicsEvent]:
        return iter(self.events)

    @property
    def events(self) -> tuple[DynamicsEvent, ...]:
        """All events sorted by time (insertion order breaks ties)."""
        return tuple(sorted(self._events, key=lambda event: event.time))

    # ------------------------------------------------------------------
    # JSON (de)serialization
    # ------------------------------------------------------------------
    def to_json(self) -> dict[str, Any]:
        """JSON-serialisable representation (inverse of :meth:`from_json`).

        Arrival events embed the arriving agent's construction parameters
        (id, profile, shard size), so a loaded schedule builds *fresh*
        :class:`~repro.agents.agent.Agent` objects — exactly the
        one-schedule-per-run hygiene :meth:`register` demands.
        """
        return {
            "schema": SCHEDULE_SCHEMA_VERSION,
            "events": [_event_to_json(event) for event in self.events],
        }

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "DynamicsSchedule":
        """Rebuild a schedule from :meth:`to_json` output."""
        return cls(_event_from_json(entry) for entry in payload.get("events", ()))

    def save(self, path: str | Path) -> None:
        """Write the schedule to a JSON file (parent directories are created)."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=2)

    @classmethod
    def load(cls, path: str | Path) -> "DynamicsSchedule":
        """Read a schedule from a JSON file (a fresh, unregistered instance)."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(json.load(handle))

    # ------------------------------------------------------------------
    # Engine registration
    # ------------------------------------------------------------------
    def register(
        self,
        engine: "SimulationEngine",
        apply: Callable[["Event"], None],
    ) -> int:
        """Schedule every event on ``engine`` with ``apply`` as its callback.

        Events dated before the engine's current time are clamped to *now*
        (they fire as soon as the clock next moves).  Returns the number of
        events registered.  The :class:`DynamicsEvent` rides along as the
        engine event's payload.

        A schedule can be registered exactly once: its arrival events carry
        concrete :class:`~repro.agents.agent.Agent` objects that the run
        mutates (profiles churn, model state trains), so replaying the same
        schedule against a second run would silently leak first-run state
        into the comparison.  Build a fresh schedule per run instead.
        """
        if self._registered:
            raise RuntimeError(
                "this DynamicsSchedule was already registered on an engine; "
                "its Agent objects carry run-mutated state — build a fresh "
                "schedule per run"
            )
        self._registered = True
        for event in self.events:
            engine.schedule_at(
                max(event.time, engine.now),
                kind=f"dynamics_{event.kind}",
                payload=event,
                callback=apply,
            )
        return len(self._events)


# ----------------------------------------------------------------------
# JSON helpers
# ----------------------------------------------------------------------

def _event_to_json(event: DynamicsEvent) -> dict[str, Any]:
    """One event as a JSON dictionary."""
    payload: dict[str, Any] = {"time": event.time, "kind": event.kind}
    if event.kind == "arrival":
        agent = event.agent
        payload["agent"] = {
            "agent_id": agent.agent_id,
            "cpu_share": agent.profile.cpu_share,
            "bandwidth_mbps": agent.profile.bandwidth_mbps,
            "num_samples": agent.num_samples,
            "batch_size": agent.batch_size,
            "local_epochs": agent.local_epochs,
        }
        if event.neighbors is not None:
            payload["neighbors"] = list(event.neighbors)
        if event.attachment is not None:
            payload["attachment"] = {
                "policy": event.attachment.policy,
                "k": event.attachment.k,
                "seed": event.attachment.seed,
            }
    elif event.kind == "departure":
        payload["agent_id"] = event.agent_id
    else:  # churn
        if event.fraction is not None:
            payload["fraction"] = event.fraction
        if event.agent_ids is not None:
            payload["agent_ids"] = list(event.agent_ids)
    return payload


def _event_from_json(payload: dict[str, Any]) -> DynamicsEvent:
    """Rebuild one event from its JSON dictionary."""
    kind = payload["kind"]
    time = payload["time"]
    if kind == "arrival":
        spec = payload["agent"]
        agent = Agent(
            agent_id=spec["agent_id"],
            profile=ResourceProfile(
                cpu_share=spec["cpu_share"],
                bandwidth_mbps=spec["bandwidth_mbps"],
            ),
            num_samples=spec.get("num_samples", 0),
            batch_size=spec.get("batch_size", 100),
            local_epochs=spec.get("local_epochs", 1),
        )
        attachment = payload.get("attachment")
        return DynamicsEvent(
            time=time,
            kind="arrival",
            agent=agent,
            neighbors=tuple(payload["neighbors"])
            if payload.get("neighbors") is not None
            else None,
            attachment=ArrivalAttachment(**attachment)
            if attachment is not None
            else None,
        )
    if kind == "departure":
        return DynamicsEvent(time=time, kind="departure", agent_id=payload["agent_id"])
    return DynamicsEvent(
        time=time,
        kind="churn",
        fraction=payload.get("fraction"),
        agent_ids=tuple(payload["agent_ids"])
        if payload.get("agent_ids") is not None
        else None,
    )
