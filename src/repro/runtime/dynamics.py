"""Mid-round scenario dynamics: staggered arrivals, in-flight churn, departures.

The paper's Table II setup changes agent profiles *during* training and its
motivation names stragglers that join late.  Round-boundary churn
(``ComDMLConfig.churn_fraction``) only approximates that: every
perturbation lands between rounds.  A :class:`DynamicsSchedule` instead
pins perturbations to *simulated timestamps* and registers them as events
on the :class:`~repro.sim.engine.SimulationEngine`, so they fire wherever
the clock happens to be — including in the middle of a round while work is
in flight.

Three event kinds are supported (see :class:`DynamicsEvent`):

``arrival``
    A new :class:`~repro.agents.agent.Agent` joins the
    :class:`~repro.agents.registry.AgentRegistry` at the given time and is
    wired into the method's topology via the strategy's
    ``on_agent_arrival`` hook.  It becomes eligible for the *next* pairing
    plan (mid-round arrivals never join a round already in flight).
``departure``
    The agent leaves the registry.  Any of its in-flight work units are
    abandoned; ``semi-sync`` and ``async`` rounds close without them.
``churn``
    A :class:`~repro.agents.dynamics.ResourceChurn`-style profile
    re-assignment fires at the timestamp.  In-flight work units of affected
    agents are *re-costed*: the completed fraction of the unit is kept and
    the remainder is re-priced under the new profiles through the
    strategy's ``reprice_unit`` hook, moving the unit's completion event.

The schedule itself is declarative and engine-agnostic; the
:class:`~repro.runtime.TrainingRuntime` applies the events (and falls back
to its bit-for-bit legacy execution paths when the schedule is empty, so a
run with ``DynamicsSchedule()`` is identical to one with ``None``).  Build
the schedule *before* constructing the trainer — events are registered on
the engine when the runtime is created.

>>> schedule = DynamicsSchedule()
>>> schedule.churn(500.0, fraction=0.2)
>>> schedule.departure(1200.0, agent_id=3)
>>> len(schedule)
2
>>> [event.kind for event in schedule]
['churn', 'departure']
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Optional, Sequence

from repro.agents.agent import Agent
from repro.utils.validation import check_non_negative, check_probability

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.sim.engine import SimulationEngine
    from repro.sim.events import Event

#: Valid dynamics event kinds.
DYNAMICS_KINDS = ("arrival", "departure", "churn")


@dataclass(frozen=True)
class DynamicsEvent:
    """One timed scenario perturbation.

    Attributes
    ----------
    time:
        Absolute simulated time (seconds) at which the event fires.
    kind:
        ``"arrival"``, ``"departure"`` or ``"churn"``.
    agent:
        The arriving agent (``arrival`` only).
    agent_id:
        The departing agent's id (``departure`` only).
    fraction:
        Fraction of the current population to churn (``churn`` with random
        targets; mutually exclusive with ``agent_ids``).
    agent_ids:
        Explicit churn targets (``churn`` only).
    neighbors:
        Topology neighbours for an arriving agent; ``None`` connects it to
        every existing node.
    """

    time: float
    kind: str
    agent: Optional[Agent] = None
    agent_id: Optional[int] = None
    fraction: Optional[float] = None
    agent_ids: Optional[tuple[int, ...]] = None
    neighbors: Optional[tuple[int, ...]] = None

    def __post_init__(self) -> None:
        check_non_negative(self.time, "time")
        if self.kind not in DYNAMICS_KINDS:
            raise ValueError(
                f"kind must be one of {DYNAMICS_KINDS}, got {self.kind!r}"
            )
        if self.kind == "arrival" and self.agent is None:
            raise ValueError("arrival events need an agent")
        if self.kind == "departure" and self.agent_id is None:
            raise ValueError("departure events need an agent_id")
        if self.kind == "churn":
            if (self.fraction is None) == (self.agent_ids is None):
                raise ValueError(
                    "churn events need exactly one of fraction or agent_ids"
                )
            if self.fraction is not None:
                check_probability(self.fraction, "fraction")
                if self.fraction <= 0:
                    raise ValueError(
                        f"churn fraction must be positive, got {self.fraction}"
                    )
            if self.agent_ids is not None and not self.agent_ids:
                raise ValueError("churn agent_ids must not be empty")


class DynamicsSchedule:
    """Ordered collection of :class:`DynamicsEvent` for one training run.

    The builder methods (:meth:`arrival`, :meth:`departure`, :meth:`churn`,
    :meth:`arrival_wave`) validate and append events; :meth:`register`
    schedules them on a :class:`~repro.sim.engine.SimulationEngine`.
    Iteration yields events sorted by time (stable for equal timestamps).
    """

    def __init__(self, events: Iterable[DynamicsEvent] = ()) -> None:
        self._events: list[DynamicsEvent] = list(events)
        self._registered = False

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    def add(self, event: DynamicsEvent) -> None:
        """Append a pre-built event."""
        self._events.append(event)

    def arrival(
        self,
        time: float,
        agent: Agent,
        neighbors: Optional[Sequence[int]] = None,
    ) -> None:
        """Schedule ``agent`` to join the population at ``time``."""
        self.add(
            DynamicsEvent(
                time=time,
                kind="arrival",
                agent=agent,
                neighbors=tuple(neighbors) if neighbors is not None else None,
            )
        )

    def arrival_wave(
        self,
        start: float,
        interval: float,
        agents: Sequence[Agent],
    ) -> None:
        """Schedule a staggered wave: one arrival every ``interval`` seconds.

        The flash-crowd building block: ``agents[i]`` arrives at
        ``start + i × interval``.
        """
        check_non_negative(start, "start")
        check_non_negative(interval, "interval")
        for index, agent in enumerate(agents):
            self.arrival(start + index * interval, agent)

    def departure(self, time: float, agent_id: int) -> None:
        """Schedule agent ``agent_id`` to leave the population at ``time``."""
        self.add(DynamicsEvent(time=time, kind="departure", agent_id=agent_id))

    def churn(
        self,
        time: float,
        fraction: Optional[float] = None,
        agent_ids: Optional[Sequence[int]] = None,
    ) -> None:
        """Schedule a profile re-assignment at ``time``.

        Exactly one of ``fraction`` (random targets drawn at fire time) or
        ``agent_ids`` (explicit targets) must be given.
        """
        self.add(
            DynamicsEvent(
                time=time,
                kind="churn",
                fraction=fraction,
                agent_ids=tuple(agent_ids) if agent_ids is not None else None,
            )
        )

    # ------------------------------------------------------------------
    # Collection protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __bool__(self) -> bool:
        return bool(self._events)

    def __iter__(self) -> Iterator[DynamicsEvent]:
        return iter(self.events)

    @property
    def events(self) -> tuple[DynamicsEvent, ...]:
        """All events sorted by time (insertion order breaks ties)."""
        return tuple(sorted(self._events, key=lambda event: event.time))

    # ------------------------------------------------------------------
    # Engine registration
    # ------------------------------------------------------------------
    def register(
        self,
        engine: "SimulationEngine",
        apply: Callable[["Event"], None],
    ) -> int:
        """Schedule every event on ``engine`` with ``apply`` as its callback.

        Events dated before the engine's current time are clamped to *now*
        (they fire as soon as the clock next moves).  Returns the number of
        events registered.  The :class:`DynamicsEvent` rides along as the
        engine event's payload.

        A schedule can be registered exactly once: its arrival events carry
        concrete :class:`~repro.agents.agent.Agent` objects that the run
        mutates (profiles churn, model state trains), so replaying the same
        schedule against a second run would silently leak first-run state
        into the comparison.  Build a fresh schedule per run instead.
        """
        if self._registered:
            raise RuntimeError(
                "this DynamicsSchedule was already registered on an engine; "
                "its Agent objects carry run-mutated state — build a fresh "
                "schedule per run"
            )
        self._registered = True
        for event in self.events:
            engine.schedule_at(
                max(event.time, engine.now),
                kind=f"dynamics_{event.kind}",
                payload=event,
                callback=apply,
            )
        return len(self._events)
