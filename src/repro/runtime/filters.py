"""Composable filter stages of the streaming trace pipeline.

Filters sit between :meth:`~repro.runtime.trace.EventTrace.record` and the
sinks: each stage either admits an event to the next stage or rejects it.
A rejection is never silent — the pipeline counts it against the stage's
name, and every sink's drop accounting includes upstream filter rejections,
so ``emitted == delivered + dropped`` holds per sink at all times.

All stages are deterministic functions of the *simulated* event stream
(timestamps and arrival order), never of wall-clock time or randomness, so
a filtered run is exactly reproducible:

* :class:`LevelFilter` — keeps events whose kind maps to at least a
  minimum level (engine internals are ``DEBUG``, per-unit events ``INFO``,
  round boundaries and population dynamics ``IMPORTANT``);
* :class:`KindFilter` — allow/deny lists over event kinds (stateless, so
  it commutes with :class:`LevelFilter` and with other kind filters);
* :class:`TokenBucketFilter` — classic rate limiter refilled by simulated
  seconds;
* :class:`AdaptiveSamplingFilter` — stride sampler that tightens
  (doubles its stride) while the observed event rate exceeds its target
  and relaxes again when load subsides.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.runtime.trace import TraceEvent

#: Trace levels, fapilog-style: higher = more important.
DEBUG = 10
INFO = 20
IMPORTANT = 30

#: Event kinds above the default ``INFO`` level: round boundaries,
#: aggregation barriers, quorum closures, and population dynamics.
_IMPORTANT_KINDS = frozenset(
    {
        "round_start",
        "round_end",
        "aggregation",
        "quorum_reached",
        "quorum_deadline",
        "arrival",
        "departure",
        "churn",
    }
)

#: Event kinds below the default level: engine internals (opt-in via
#: ``ComDMLConfig.trace_engine_events``).
_DEBUG_KINDS = frozenset({"engine_event"})


def event_level(kind: str) -> int:
    """Trace level of an event kind (unknown kinds default to ``INFO``)."""
    if kind in _IMPORTANT_KINDS:
        return IMPORTANT
    if kind in _DEBUG_KINDS:
        return DEBUG
    return INFO


class TraceFilter:
    """One pipeline stage: admit or reject each event, deterministically."""

    #: Stage name used in per-stage drop accounting.
    name = "filter"

    def admit(self, event: "TraceEvent") -> bool:
        """Whether the event proceeds to the next stage."""
        raise NotImplementedError


class LevelFilter(TraceFilter):
    """Admit events whose kind's level is at least ``min_level``."""

    def __init__(self, min_level: int) -> None:
        self.min_level = int(min_level)
        self.name = f"level>={self.min_level}"

    def admit(self, event: "TraceEvent") -> bool:
        return event_level(event.kind) >= self.min_level


class KindFilter(TraceFilter):
    """Admit events by kind: optional allow-list minus a deny-list."""

    def __init__(
        self,
        allow: Optional[Iterable[str]] = None,
        deny: Iterable[str] = (),
    ) -> None:
        self.allow = frozenset(allow) if allow is not None else None
        self.deny = frozenset(deny)
        label = []
        if self.allow is not None:
            label.append(f"allow={','.join(sorted(self.allow))}")
        if self.deny:
            label.append(f"deny={','.join(sorted(self.deny))}")
        self.name = f"kind[{';'.join(label) or 'all'}]"

    def admit(self, event: "TraceEvent") -> bool:
        if event.kind in self.deny:
            return False
        return self.allow is None or event.kind in self.allow


class TokenBucketFilter(TraceFilter):
    """Rate-limit events to ``rate`` per simulated second with bursts.

    The bucket refills along the *event timestamps* (the trace is
    chronological), so two identical runs are limited identically.
    """

    name = "rate-limit"

    def __init__(self, rate: float, burst: float = 64.0) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last_timestamp: Optional[float] = None

    def admit(self, event: "TraceEvent") -> bool:
        if self._last_timestamp is not None:
            elapsed = max(0.0, event.timestamp - self._last_timestamp)
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._last_timestamp = event.timestamp
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


class AdaptiveSamplingFilter(TraceFilter):
    """Stride sampling that tightens under sustained load and recovers.

    Events are bucketed into fixed windows of simulated time.  At each
    window boundary the observed rate of the *previous* window is compared
    against ``target_rate``: above it the stride doubles (keep every
    2nd/4th/8th… event), at half the target or below it halves back
    towards 1 (keep everything).  Within a window, admission is the
    deterministic ``position % stride == 0`` — no randomness, so a
    replayed run samples identically.  Rejected events are accounted as
    drops by the pipeline, never skipped silently.
    """

    name = "adaptive-sampling"

    def __init__(
        self,
        target_rate: float,
        window_seconds: float = 1.0,
        max_stride: int = 1024,
    ) -> None:
        if target_rate <= 0:
            raise ValueError(f"target_rate must be positive, got {target_rate}")
        if window_seconds <= 0:
            raise ValueError(
                f"window_seconds must be positive, got {window_seconds}"
            )
        if max_stride < 1:
            raise ValueError(f"max_stride must be >= 1, got {max_stride}")
        self.target_rate = float(target_rate)
        self.window_seconds = float(window_seconds)
        self.max_stride = int(max_stride)
        self.stride = 1
        self._window: Optional[int] = None
        self._offered_in_window = 0
        self._position = 0

    def _roll_window(self, window: int) -> None:
        observed_rate = self._offered_in_window / self.window_seconds
        if observed_rate > self.target_rate:
            self.stride = min(self.max_stride, self.stride * 2)
        elif observed_rate <= self.target_rate / 2:
            self.stride = max(1, self.stride // 2)
        self._window = window
        self._offered_in_window = 0
        self._position = 0

    def admit(self, event: "TraceEvent") -> bool:
        window = int(event.timestamp // self.window_seconds)
        if self._window is None:
            self._window = window
        elif window != self._window:
            self._roll_window(window)
        self._offered_in_window += 1
        admitted = self._position % self.stride == 0
        self._position += 1
        return admitted
