"""Pluggable semi-sync quorum policies.

A ``semi-sync`` round (``ComDMLConfig.execution_mode = "semi-sync"``) does
not wait for the full barrier: it closes once "enough" of the round's
:class:`~repro.runtime.strategy.WorkUnit` have finished and drops the rest
as stragglers.  What counts as *enough* is a :class:`QuorumPolicy`, selected
through ``ComDMLConfig.quorum_policy`` (CLI: ``compare --quorum-policy``):

``"fixed"`` — :class:`FixedFractionQuorum`
    The original behaviour: keep ``ceil(quorum_fraction × n)`` units.
``"deadline"`` — :class:`DeadlineQuorum`
    Close the round at ``quorum_deadline_factor ×`` the running mean of
    observed local-phase makespans
    (:attr:`~repro.core.scheduler.SchedulerStats.average_makespan`).  Units
    still in flight at the deadline are dropped; if even the fastest unit
    misses it, that one unit is kept so a round always aggregates
    something.  Rounds with no makespan history yet (or a degenerate zero
    mean) fall back to the fixed-fraction decision.
``"adaptive"`` — :class:`AdaptiveQuorum`
    Starts as a full barrier and tightens towards ``quorum_fraction`` as
    the coefficient of variation of observed makespans
    (:attr:`~repro.core.scheduler.SchedulerStats.makespan_cv`) stabilises:
    noisy early rounds keep everyone, steady-state rounds shed stragglers.

A policy returns a declarative :class:`QuorumDecision` — *how many* units
to wait for and/or an *absolute latest* closing offset — which both
execution paths of the runtime interpret with identical semantics: the
round closes as soon as the target count of completions is reached, or at
the deadline (with at least one completion), whichever comes first.
:func:`resolve_quorum` is the closed-form of those semantics over a sorted
duration list, used by the plan-ahead path and by tests.

>>> policy = FixedFractionQuorum(0.5)
>>> decision = policy.decide([10.0, 20.0, 30.0, 40.0], SchedulerStats())
>>> decision.target_count
2
>>> resolve_quorum(decision, [10.0, 20.0, 30.0, 40.0])
(2, 20.0)
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.core.scheduler import SchedulerStats
from repro.utils.validation import check_positive, check_probability

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.config import ComDMLConfig


@dataclass(frozen=True)
class QuorumDecision:
    """What a policy decided for one round, before execution.

    Attributes
    ----------
    target_count:
        Number of completed units that closes the round (clamped to
        ``[1, n]`` by the executor).
    deadline_seconds:
        Optional latest closing time as an offset from the round start.
        ``None`` means the round closes purely by count.
    """

    target_count: int
    deadline_seconds: Optional[float] = None


class QuorumPolicy:
    """Decides when a semi-sync round has seen enough completed units."""

    #: Short name used in configs and reports.
    name: str = "abstract"

    def decide(
        self, unit_durations: Sequence[float], stats: SchedulerStats
    ) -> QuorumDecision:
        """Produce the round's quorum decision.

        Parameters
        ----------
        unit_durations:
            Projected unit durations of the round, sorted ascending.
        stats:
            The runtime's observed-makespan statistics over *previous*
            rounds (the current round is not yet recorded).
        """
        raise NotImplementedError


class FixedFractionQuorum(QuorumPolicy):
    """Keep a fixed fraction of the round's units (the original behaviour)."""

    name = "fixed"

    def __init__(self, fraction: float) -> None:
        check_probability(fraction, "fraction")
        if fraction <= 0:
            raise ValueError(f"fraction must be positive, got {fraction}")
        self.fraction = fraction

    def decide(
        self, unit_durations: Sequence[float], stats: SchedulerStats
    ) -> QuorumDecision:
        target = max(1, math.ceil(self.fraction * len(unit_durations)))
        return QuorumDecision(target_count=target)


class DeadlineQuorum(QuorumPolicy):
    """Close the round at a multiple of the running makespan mean.

    Parameters
    ----------
    factor:
        The deadline is ``factor × stats.average_makespan`` (the paper-style
        "wait a bit longer than a typical round" rule).
    fallback:
        Policy used while there is no makespan history (first round, or a
        degenerate all-zero history) — by default a fixed-fraction quorum.
    """

    name = "deadline"

    def __init__(
        self, factor: float, fallback: Optional[QuorumPolicy] = None
    ) -> None:
        check_positive(factor, "factor")
        self.factor = factor
        self.fallback = fallback if fallback is not None else FixedFractionQuorum(0.8)

    def decide(
        self, unit_durations: Sequence[float], stats: SchedulerStats
    ) -> QuorumDecision:
        if stats.makespan_count == 0 or stats.average_makespan <= 0:
            return self.fallback.decide(unit_durations, stats)
        return QuorumDecision(
            target_count=len(unit_durations),
            deadline_seconds=self.factor * stats.average_makespan,
        )


class AdaptiveQuorum(QuorumPolicy):
    """Tighten the quorum as observed makespans stabilise.

    The kept fraction interpolates between ``start_fraction`` (used while
    makespans are noisy or there is no history) and ``floor_fraction`` (the
    tightest quorum, reached once the makespan coefficient of variation
    drops to zero):

    ``fraction = floor + (start − floor) × min(1, cv / stability_cv)``

    Early rounds therefore behave like a full barrier — nothing is dropped
    while the system is still learning what a normal round looks like — and
    steady-state rounds shed the slowest ``1 − floor_fraction`` of units.

    Parameters
    ----------
    floor_fraction:
        Tightest fraction of units ever kept (``ComDMLConfig.quorum_fraction``).
    start_fraction:
        Fraction kept with no or unstable history (default 1.0, full barrier).
    stability_cv:
        Coefficient of variation at (or above) which the policy still uses
        ``start_fraction``.
    """

    name = "adaptive"

    def __init__(
        self,
        floor_fraction: float,
        start_fraction: float = 1.0,
        stability_cv: float = 0.5,
    ) -> None:
        check_probability(floor_fraction, "floor_fraction")
        check_probability(start_fraction, "start_fraction")
        if floor_fraction <= 0:
            raise ValueError(f"floor_fraction must be positive, got {floor_fraction}")
        if start_fraction < floor_fraction:
            raise ValueError(
                "start_fraction must be >= floor_fraction, got "
                f"{start_fraction} < {floor_fraction}"
            )
        check_positive(stability_cv, "stability_cv")
        self.floor_fraction = floor_fraction
        self.start_fraction = start_fraction
        self.stability_cv = stability_cv

    def current_fraction(self, stats: SchedulerStats) -> float:
        """The fraction of units the policy keeps given the history so far."""
        if stats.makespan_count < 2:
            return self.start_fraction
        instability = min(1.0, stats.makespan_cv / self.stability_cv)
        return self.floor_fraction + (
            self.start_fraction - self.floor_fraction
        ) * instability

    def decide(
        self, unit_durations: Sequence[float], stats: SchedulerStats
    ) -> QuorumDecision:
        fraction = self.current_fraction(stats)
        target = max(1, math.ceil(fraction * len(unit_durations)))
        return QuorumDecision(target_count=target)


def resolve_quorum(
    decision: QuorumDecision, sorted_durations: Sequence[float]
) -> tuple[int, float]:
    """Closed-form quorum outcome over known unit durations.

    Interprets a :class:`QuorumDecision` the way the event-driven executor
    does — close at the ``target_count``-th completion or at the deadline,
    whichever comes first, always keeping at least one unit — and returns
    ``(kept_count, close_offset_seconds)``.

    Parameters
    ----------
    decision:
        The policy's decision for the round.
    sorted_durations:
        The round's unit durations sorted ascending (offsets from the round
        start).
    """
    n = len(sorted_durations)
    if n == 0:
        return 0, 0.0
    target = max(1, min(decision.target_count, n))
    deadline = decision.deadline_seconds
    if deadline is None or sorted_durations[target - 1] <= deadline:
        # Count-based closure (or quorum met before the deadline).
        return target, sorted_durations[target - 1]
    within = bisect_right(sorted_durations, deadline)
    if within == 0:
        # All-stragglers round: even the fastest unit misses the deadline;
        # keep it anyway so the round aggregates something.
        return 1, sorted_durations[0]
    return within, deadline


def make_quorum_policy(config: "ComDMLConfig") -> QuorumPolicy:
    """Build the policy selected by ``config.quorum_policy``."""
    if config.quorum_policy == "fixed":
        return FixedFractionQuorum(config.quorum_fraction)
    if config.quorum_policy == "deadline":
        return DeadlineQuorum(
            config.quorum_deadline_factor,
            fallback=FixedFractionQuorum(config.quorum_fraction),
        )
    if config.quorum_policy == "adaptive":
        return AdaptiveQuorum(floor_fraction=config.quorum_fraction)
    raise ValueError(f"unknown quorum policy {config.quorum_policy!r}")
