"""Event-driven training runtime shared by ComDML and every baseline.

The runtime owns the round machinery that Algorithm 1 prescribes and that
every method shares — dynamic resource churn, participation sampling, the
learning-rate schedule, accuracy tracking, the
:class:`~repro.training.metrics.RunHistory`, and the per-agent
:class:`~repro.runtime.trace.EventTrace` — and drives execution as events on
a :class:`~repro.sim.engine.SimulationEngine`.  A method contributes only a
:class:`~repro.runtime.strategy.RoundStrategy` that decomposes and prices
each round into :class:`~repro.runtime.strategy.WorkUnit`.

Three execution modes are supported (``ComDMLConfig.execution_mode``):

``sync``
    The classic full barrier: the round closes when the slowest unit and
    the aggregation finish.  Bit-for-bit identical histories to the
    pre-runtime per-method loops (verified by regression tests).
``semi-sync``
    The round closes when a quorum of units has finished; stragglers are
    dropped from the aggregation and recorded in the trace.  What counts as
    a quorum is a pluggable :class:`~repro.runtime.quorum.QuorumPolicy`
    (``ComDMLConfig.quorum_policy``): a fixed fraction
    (``ComDMLConfig.quorum_fraction``), a deadline derived from the running
    makespan mean, or an adaptive fraction that tightens as observed
    makespans stabilise.
``async``
    No barrier: each unit's completion event triggers its own gossip-style
    aggregation on the event queue; the round record summarises the epoch.

Every mode additionally supports *mid-round dynamics* through an optional
:class:`~repro.runtime.dynamics.DynamicsSchedule`: staggered agent
arrivals, timestamped departures, and churn events that land while work is
in flight and re-cost the affected units (see
:mod:`repro.runtime.dynamics`).  With no schedule — or an empty one — the
runtime executes the original closed-form round paths, so ``sync`` histories
remain bit-for-bit identical to the seed loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.agents.dynamics import ResourceChurn, churn_agent_profiles
from repro.agents.registry import AgentRegistry
from repro.core.config import ComDMLConfig
from repro.core.pairing import PairingDecision
from repro.core.scheduler import SchedulerStats
from repro.nn.schedule import ReduceOnPlateau
from repro.runtime.dynamics import DynamicsEvent, DynamicsSchedule
from repro.runtime.quorum import QuorumPolicy, make_quorum_policy, resolve_quorum
from repro.runtime.strategy import (
    RoundPlan,
    RoundStrategy,
    WorkUnit,
    participation_fraction,
)
from repro.runtime.trace import EventTrace, build_event_trace
from repro.sim.engine import SimulationEngine
from repro.sim.events import Event
from repro.training.accuracy import AccuracyTracker
from repro.training.metrics import RoundRecord, RunHistory
from repro.utils.logging import get_logger

logger = get_logger("runtime")


@dataclass
class _FlightEntry:
    """Book-keeping for one work unit while its round is in flight.

    A unit is modelled as one abstract unit of work: ``progress`` is the
    completed fraction, ``full_duration`` the current price of the whole
    unit under present agent profiles, and ``updated_at`` the simulated
    time at which ``progress`` was last brought up to date.  Mid-round
    churn re-costs a unit by folding elapsed time into ``progress``,
    re-pricing ``full_duration`` via the strategy's ``reprice_unit`` hook,
    and rescheduling the completion event under a bumped ``version`` (stale
    events are recognised and ignored when they fire).
    """

    unit: WorkUnit
    progress: float
    full_duration: float
    updated_at: float
    version: int = 0
    done: bool = False
    abandoned: bool = False

    @property
    def completion(self) -> float:
        """Projected completion time under the current price."""
        return self.updated_at + max(0.0, 1.0 - self.progress) * self.full_duration


class RuntimeDelegate:
    """Convenience surface for classes that wrap a :class:`TrainingRuntime`.

    ComDML and the baseline trainers are both a :class:`RoundStrategy` and
    the user-facing handle of their run; this mixin forwards the run-state
    accessors to ``self.runtime`` (which the subclass's constructor must
    set) so the delegation exists in exactly one place.
    """

    runtime: "TrainingRuntime"

    @property
    def history(self) -> RunHistory:
        """The runtime's accumulated round records."""
        return self.runtime.history

    @property
    def clock(self):
        """The runtime engine's virtual clock."""
        return self.runtime.clock

    @property
    def trace(self) -> EventTrace:
        """The runtime's per-agent event trace."""
        return self.runtime.trace

    @property
    def accuracy_tracker(self) -> AccuracyTracker:
        """The learning-plane tracker driven by the runtime."""
        return self.runtime.accuracy_tracker

    def run_round(self, round_index: int) -> RoundRecord:
        """Execute one global round and return its record."""
        return self.runtime.run_round(round_index)

    def run(self) -> RunHistory:
        """Run until the target accuracy is reached or ``max_rounds`` expire."""
        return self.runtime.run()


class TrainingRuntime:
    """Runs a :class:`RoundStrategy` on the discrete-event engine."""

    def __init__(
        self,
        strategy: RoundStrategy,
        registry: AgentRegistry,
        config: ComDMLConfig,
        accuracy_tracker: AccuracyTracker,
        churn_rng: Optional[np.random.Generator] = None,
        engine: Optional[SimulationEngine] = None,
        trace: Optional[EventTrace] = None,
        dynamics: Optional[DynamicsSchedule] = None,
        quorum_policy: Optional[QuorumPolicy] = None,
    ) -> None:
        self.strategy = strategy
        self.registry = registry
        self.config = config
        self.accuracy_tracker = accuracy_tracker
        self.engine = engine if engine is not None else SimulationEngine()
        self.trace = trace if trace is not None else build_event_trace(config)
        if config.trace_engine_events:
            self.engine.subscribe(self._observe_engine_event)
        self.history = RunHistory(method=strategy.method_name)
        self.churn = (
            ResourceChurn(
                fraction=config.churn_fraction,
                interval_rounds=config.churn_interval_rounds,
            )
            if config.churn_fraction > 0
            else None
        )
        self._churn_rng = (
            churn_rng if churn_rng is not None else np.random.default_rng(config.seed)
        )
        self._lr_schedule = ReduceOnPlateau(
            learning_rate=config.learning_rate,
            factor=config.lr_plateau_factor,
            patience=config.lr_plateau_patience,
        )
        self._last_accuracy = 0.0
        #: Observed local-phase makespans, fed to deadline/adaptive quorums.
        self.stats = SchedulerStats()
        self.quorum_policy = (
            quorum_policy if quorum_policy is not None else make_quorum_policy(config)
        )
        self.dynamics = dynamics
        # Mid-round execution state (only set while a dynamics-aware round
        # is in flight).
        self._flight: Optional[dict[int, _FlightEntry]] = None
        self._current_plan: Optional[RoundPlan] = None
        self._current_round = 0
        self._round_start = 0.0
        self._on_done_hook: Optional[Callable[[_FlightEntry, Event], None]] = None
        self._on_abandon_hook: Optional[Callable[[_FlightEntry], None]] = None
        if self.dynamics:
            self.dynamics.register(self.engine, self._apply_dynamics_event)

    # ------------------------------------------------------------------
    @property
    def clock(self):
        """The engine's virtual clock (shared with every scheduled event)."""
        return self.engine.clock

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.engine.now

    @property
    def learning_rate(self) -> float:
        """Current learning rate of the shared plateau schedule."""
        return self._lr_schedule.learning_rate

    # ------------------------------------------------------------------
    def _observe_engine_event(self, event: Event) -> None:
        """Mirror one processed engine event into the trace (DEBUG level).

        Opt-in via ``ComDMLConfig.trace_engine_events``; with a level
        filter at ``INFO`` or above these are counted as filter drops, so
        the raw engine feed never inflates the in-memory view silently.
        """
        self.trace.record(
            event.timestamp,
            self._current_round,
            "engine_event",
            detail={"engine_kind": event.kind},
        )

    # ------------------------------------------------------------------
    def _plan(self, round_index: int) -> RoundPlan:
        """Shared round prologue: churn, participation sampling, planning."""
        if self.churn is not None:
            changed = self.churn.maybe_apply(
                round_index, self.registry, self._churn_rng
            )
            if changed:
                logger.debug(
                    "round %d: churned profiles of agents %s", round_index, changed
                )
                self.trace.record(
                    self.engine.now, round_index, "churn", tuple(changed)
                )
        participants = self.strategy.select_participants()
        return self.strategy.plan_round(round_index, participants)

    def _finish_round(
        self,
        plan: RoundPlan,
        accuracy: float,
        duration: float,
        compute_seconds: float,
        aggregation_seconds: float,
        num_pairs: int,
        communication_seconds: Optional[float] = None,
        observed_makespan: Optional[float] = None,
    ) -> RoundRecord:
        """Append the round record at the engine's current (end) time.

        ``observed_makespan`` is what feeds the deadline/adaptive quorum
        statistics.  It defaults to ``compute_seconds``, but quorum-closed
        rounds must pass the *untruncated* local-phase makespan (the time
        the slowest unit would have needed) — recording the truncated
        close offset would let a deadline policy ratchet itself down on its
        own drops instead of reacting to genuine slowdowns.
        """
        record = RoundRecord(
            round_index=plan.round_index,
            duration_seconds=duration,
            cumulative_seconds=self.engine.now,
            accuracy=accuracy,
            compute_seconds=compute_seconds,
            communication_seconds=communication_seconds
            if communication_seconds is not None
            else plan.communication_seconds,
            aggregation_seconds=aggregation_seconds,
            num_pairs=num_pairs,
        )
        self.history.append(record)
        self.trace.record(
            self.engine.now,
            plan.round_index,
            "round_end",
            detail={"accuracy": accuracy, "duration": duration},
        )
        self.stats.rounds += 1
        makespan = (
            observed_makespan if observed_makespan is not None else compute_seconds
        )
        # Degenerate rounds (every unit abandoned, or an empty plan) carry no
        # makespan signal; recording their 0.0 would deflate the running mean
        # and collapse later deadline/adaptive quorum decisions.
        if makespan > 0:
            self.stats.record_makespan(makespan)
        self._last_accuracy = accuracy
        return record

    def _communication_for(
        self, plan: RoundPlan, kept_decisions: Sequence[PairingDecision]
    ) -> float:
        """Communication accounting for a round that kept only some decisions.

        When the plan's decisions carry per-decision traffic (ComDML's
        offload streams), sum the kept ones — even a truthful zero for an
        all-solo quorum.  Baselines price communication at round level only,
        so their plan figure is used as-is; it is an upper bound when the
        round dropped the communication-heaviest agent.
        """
        plan_has_decision_comm = any(
            decision.estimate.communication_time > 0 for decision in plan.decisions
        )
        if plan_has_decision_comm:
            return sum(
                decision.estimate.communication_time for decision in kept_decisions
            )
        return plan.communication_seconds

    def _advance_learning_plane(self, plan: RoundPlan, decisions) -> float:
        """One accuracy-tracker step over the given decisions."""
        participation = participation_fraction(self.registry, decisions)
        accuracy = self.accuracy_tracker.after_round(
            decisions, participation, self._lr_schedule.learning_rate
        )
        self._lr_schedule.step(accuracy)
        return accuracy

    # ------------------------------------------------------------------
    # Execution modes
    # ------------------------------------------------------------------
    def _run_round_sync(self, round_index: int) -> RoundRecord:
        start = self.engine.now
        plan = self._plan(round_index)
        self.trace.record(start, round_index, "round_start")

        accuracy = self._advance_learning_plane(plan, plan.decisions)

        end = start + plan.duration_seconds
        # Clamp to the barrier so the trace stays chronological even when a
        # unit's standalone duration exceeds the round (e.g. a disconnected
        # FedAvg agent the server skips); the raw duration stays in `detail`.
        for unit in sorted(plan.units, key=lambda u: (u.duration, u.index)):
            self.trace.record(
                min(start + unit.duration, end),
                round_index,
                "unit_complete",
                unit.agent_ids,
                detail={"duration": unit.duration},
            )
        if plan.aggregation_seconds > 0:
            # Stamped at its completion (= the barrier) so it never precedes
            # unit completions whose chains overlap the aggregation window.
            self.trace.record(end, round_index, "aggregation")
        self.engine.schedule_at(end, kind="round_end", payload=round_index)
        self.engine.run_until(end)
        return self._finish_round(
            plan,
            accuracy,
            duration=plan.duration_seconds,
            compute_seconds=plan.compute_seconds,
            aggregation_seconds=plan.aggregation_seconds,
            num_pairs=plan.num_pairs,
        )

    def _run_round_semi_sync(self, round_index: int) -> RoundRecord:
        start = self.engine.now
        plan = self._plan(round_index)
        self.trace.record(start, round_index, "round_start")

        units = sorted(plan.units, key=lambda unit: (unit.duration, unit.index))
        if units:
            decision = self.quorum_policy.decide(
                [unit.duration for unit in units], self.stats
            )
            quorum, local = resolve_quorum(
                decision, [unit.duration for unit in units]
            )
        else:
            quorum, local = 0, 0.0
        kept, dropped = units[:quorum], units[quorum:]
        quorum_time = start + local

        for unit in kept:
            self.engine.schedule_at(
                start + unit.duration,
                kind="unit_complete",
                payload=unit,
                callback=lambda event, u=unit: self.trace.record(
                    event.timestamp,
                    round_index,
                    "unit_complete",
                    u.agent_ids,
                    detail={"duration": u.duration},
                ),
            )
        aggregation = self.strategy.semi_sync_aggregation_seconds(plan, kept)
        end = quorum_time + aggregation

        def _on_quorum(event) -> None:
            self.trace.record(
                event.timestamp,
                round_index,
                "quorum_reached",
                detail={
                    "kept": len(kept),
                    "dropped": len(dropped),
                    "policy": self.quorum_policy.name,
                },
            )
            # Recording the drops here (not before run_until) keeps the
            # trace chronological: completions precede the quorum closure.
            for unit in dropped:
                self.trace.record(
                    event.timestamp,
                    round_index,
                    "straggler_dropped",
                    unit.agent_ids,
                    detail={"projected_completion": start + unit.duration},
                )

        self.engine.schedule_at(
            quorum_time, kind="quorum_reached", priority=1, callback=_on_quorum
        )
        self.engine.schedule_at(end, kind="round_end", priority=2, payload=round_index)
        self.engine.run_until(end)

        kept_decisions = tuple(
            decision for unit in kept for decision in unit.decisions
        )
        accuracy = self._advance_learning_plane(plan, kept_decisions)
        num_pairs = sum(1 for d in kept_decisions if d.fast_id is not None)
        kept_communication = self._communication_for(plan, kept_decisions)
        return self._finish_round(
            plan,
            accuracy,
            duration=end - start,
            compute_seconds=local,
            aggregation_seconds=aggregation,
            num_pairs=num_pairs,
            communication_seconds=kept_communication,
            observed_makespan=units[-1].duration if units else 0.0,
        )

    def _run_round_async(self, round_index: int) -> RoundRecord:
        start = self.engine.now
        plan = self._plan(round_index)
        self.trace.record(start, round_index, "round_start")

        learning_rate = self._lr_schedule.learning_rate
        state = {"accuracy": self._last_accuracy}

        def _aggregate(event) -> None:
            unit: WorkUnit = event.payload
            participation = participation_fraction(self.registry, unit.decisions)
            state["accuracy"] = self.accuracy_tracker.after_round(
                unit.decisions, participation, learning_rate
            )
            self.trace.record(
                event.timestamp,
                round_index,
                "aggregation",
                unit.agent_ids,
                detail={"accuracy": state["accuracy"]},
            )

        # Price each unit's gossip exchange once: the round-end bound and the
        # scheduled aggregation must agree, or a state-dependent price could
        # leak an event past run_until into the next round.
        gossip_costs = {
            unit.index: self.strategy.async_unit_aggregation_seconds(plan, unit)
            for unit in plan.units
        }

        def _complete(event) -> None:
            unit: WorkUnit = event.payload
            self.trace.record(
                event.timestamp,
                round_index,
                "unit_complete",
                unit.agent_ids,
                detail={"duration": unit.duration},
            )
            self.engine.schedule_after(
                gossip_costs[unit.index],
                kind="aggregation",
                payload=unit,
                callback=_aggregate,
            )

        end = start
        for unit in plan.units:
            completion = start + unit.duration
            end = max(end, completion + gossip_costs[unit.index])
            self.engine.schedule_at(
                completion, kind="unit_complete", payload=unit, callback=_complete
            )
        self.engine.schedule_at(end, kind="round_end", priority=1, payload=round_index)
        self.engine.run_until(end)

        accuracy = state["accuracy"]
        self._lr_schedule.step(accuracy)
        compute = max((unit.duration for unit in plan.units), default=0.0)
        return self._finish_round(
            plan,
            accuracy,
            duration=end - start,
            compute_seconds=compute,
            aggregation_seconds=max(0.0, (end - start) - compute),
            num_pairs=plan.num_pairs,
        )

    # ------------------------------------------------------------------
    # Mid-round dynamics (DynamicsSchedule-aware execution)
    # ------------------------------------------------------------------
    def _apply_dynamics_event(self, event: Event) -> None:
        """Apply one scheduled arrival/departure/churn at its timestamp.

        Registered as the engine callback for every
        :class:`~repro.runtime.dynamics.DynamicsEvent`; fires wherever the
        clock happens to be — between rounds (the registry change simply
        shapes the next plan) or mid-round (in-flight work is re-costed or
        abandoned).
        """
        dyn: DynamicsEvent = event.payload
        now = self.engine.now
        round_index = self._current_round
        if dyn.kind == "arrival":
            agent = dyn.agent
            if agent is None or agent.agent_id in self.registry:
                return
            self.registry.add(agent)
            self.strategy.on_agent_arrival(agent, dyn.neighbors, dyn.attachment)
            self.trace.record(
                now,
                round_index,
                "arrival",
                (agent.agent_id,),
                detail={"num_samples": agent.num_samples},
            )
        elif dyn.kind == "departure":
            if dyn.agent_id not in self.registry:
                return
            agent = self.registry.remove(dyn.agent_id)
            self.strategy.on_agent_departure(agent)
            self.trace.record(now, round_index, "departure", (dyn.agent_id,))
            self._abandon_in_flight(dyn.agent_id)
        else:  # churn
            if dyn.agent_ids is not None:
                changed = churn_agent_profiles(
                    self.registry, list(dyn.agent_ids), self._churn_rng
                )
            else:
                changed = ResourceChurn(fraction=dyn.fraction).apply(
                    self.registry, self._churn_rng
                )
            if not changed:
                return
            self.trace.record(
                now,
                round_index,
                "churn",
                tuple(changed),
                detail={"source": "schedule"},
            )
            self._reprice_in_flight(set(changed))

    def _abandon_in_flight(self, agent_id: int) -> None:
        """Abandon in-flight units of a departed agent (their work is lost)."""
        flight = self._flight
        if flight is None:
            return
        for entry in flight.values():
            if entry.done or entry.abandoned:
                continue
            if agent_id in entry.unit.agent_ids:
                entry.abandoned = True
                entry.version += 1  # invalidate the pending completion event
                self.trace.record(
                    self.engine.now,
                    self._current_round,
                    "unit_abandoned",
                    entry.unit.agent_ids,
                    detail={"departed": agent_id},
                )
                if self._on_abandon_hook is not None:
                    self._on_abandon_hook(entry)

    def _reprice_in_flight(self, affected_ids: set[int]) -> None:
        """Re-cost in-flight units whose agents were just churned.

        The completed fraction of each affected unit is kept; the remainder
        is re-priced at the strategy's fresh ``reprice_unit`` estimate and
        the unit's completion event is rescheduled.
        """
        flight = self._flight
        if flight is None or self._current_plan is None:
            return
        now = self.engine.now
        for entry in flight.values():
            if entry.done or entry.abandoned:
                continue
            if not affected_ids.intersection(entry.unit.agent_ids):
                continue
            if entry.full_duration > 0:
                entry.progress = min(
                    1.0,
                    entry.progress + (now - entry.updated_at) / entry.full_duration,
                )
            else:
                entry.progress = 1.0
            entry.updated_at = now
            old_completion = entry.completion
            entry.full_duration = max(
                0.0, self.strategy.reprice_unit(self._current_plan, entry.unit)
            )
            self._schedule_completion(entry)
            self.trace.record(
                now,
                self._current_round,
                "unit_repriced",
                entry.unit.agent_ids,
                detail={
                    "old_completion": old_completion,
                    "new_completion": entry.completion,
                },
            )

    def _schedule_completion(self, entry: _FlightEntry) -> None:
        """(Re-)schedule a unit's completion under a fresh event version."""
        entry.version += 1
        self.engine.schedule_at(
            entry.completion,
            kind="unit_complete",
            payload=(self._current_round, entry.unit.index, entry.version),
            callback=self._on_unit_complete_event,
        )

    def _on_unit_complete_event(self, event: Event) -> None:
        """Handle a (possibly stale) unit-completion event."""
        round_index, unit_index, version = event.payload
        flight = self._flight
        if flight is None or round_index != self._current_round:
            return  # a dropped straggler from an earlier round
        entry = flight.get(unit_index)
        if (
            entry is None
            or entry.done
            or entry.abandoned
            or version != entry.version
        ):
            return  # superseded by a re-cost or an abandonment
        entry.done = True
        entry.progress = 1.0
        entry.updated_at = event.timestamp
        self.trace.record(
            event.timestamp,
            round_index,
            "unit_complete",
            entry.unit.agent_ids,
            detail={"duration": event.timestamp - self._round_start},
        )
        if self._on_done_hook is not None:
            self._on_done_hook(entry, event)

    def _start_dynamic_round(
        self, round_index: int
    ) -> tuple[float, RoundPlan, dict[int, _FlightEntry]]:
        """Shared prologue of the dynamics-aware execution paths.

        Fires boundary dynamics due at the current time (so arrivals with
        ``time <= now`` join this round's plan), applies legacy
        round-interval churn, plans the round, and puts every unit in
        flight with a scheduled completion event.
        """
        self._current_round = round_index
        start = self.engine.now
        self._round_start = start
        self._flight = None
        self._on_done_hook = None
        self._on_abandon_hook = None
        self.engine.run_until(start)
        plan = self._plan(round_index)
        self._current_plan = plan
        self.trace.record(start, round_index, "round_start")
        flight: dict[int, _FlightEntry] = {
            unit.index: _FlightEntry(
                unit=unit,
                progress=0.0,
                full_duration=unit.duration,
                updated_at=start,
            )
            for unit in plan.units
        }
        self._flight = flight
        for entry in flight.values():
            self._schedule_completion(entry)
        return start, plan, flight

    def _drive_until_closed(self, closure: dict) -> None:
        """Step the engine until the round's closure condition fires."""
        while not closure["closed"]:
            if self.engine.step() is None:
                # Nothing left to process (e.g. every unit was abandoned
                # and no hook closed the round) — close at the current time.
                closure["closed"] = True
                closure["time"] = self.engine.now
                break

    def _run_round_sync_dynamic(self, round_index: int) -> RoundRecord:
        """Full barrier over whatever survives arrivals/churn/departures."""
        start, plan, flight = self._start_dynamic_round(round_index)
        closure = {"closed": not flight, "time": start}

        def _check_all_done(at: float) -> None:
            if closure["closed"]:
                return
            live = [entry for entry in flight.values() if not entry.abandoned]
            if all(entry.done for entry in live):
                closure["closed"] = True
                closure["time"] = at

        self._on_done_hook = lambda entry, event: _check_all_done(event.timestamp)
        self._on_abandon_hook = lambda entry: _check_all_done(self.engine.now)
        self._drive_until_closed(closure)
        return self._finish_dynamic_round(
            plan,
            round_index,
            start,
            closure["time"],
            flight,
            trace_aggregation=True,
        )

    def _finish_dynamic_round(
        self,
        plan: RoundPlan,
        round_index: int,
        start: float,
        close_time: float,
        flight: dict[int, _FlightEntry],
        observed_makespan: Optional[float] = None,
        trace_aggregation: bool = False,
    ) -> RoundRecord:
        """Shared epilogue of the barrier/quorum dynamic paths.

        Prices the aggregation over the units that actually completed,
        drains the aggregation window, advances the learning plane on the
        surviving decisions, and appends the round record.
        """
        close_time = max(close_time, start)
        kept_units = sorted(
            (entry.unit for entry in flight.values() if entry.done),
            key=lambda unit: unit.index,
        )
        self._flight = None
        # Price aggregation over the surviving set through the strategy's
        # kept-units hook: methods that bill communication inside their unit
        # chains (FedAvg) return 0 here, and ComDML re-prices its AllReduce
        # over whoever actually made the barrier/quorum.  With every unit
        # surviving this equals the plan's full-barrier figure.
        aggregation = (
            self.strategy.semi_sync_aggregation_seconds(plan, kept_units)
            if kept_units
            else 0.0
        )
        end = close_time + aggregation
        self.engine.schedule_at(end, kind="round_end", priority=2, payload=round_index)
        self.engine.run_until(end)
        # Recorded after the window is drained so dynamics events landing
        # inside (close_time, end) keep the trace chronological.
        if trace_aggregation and aggregation > 0:
            self.trace.record(end, round_index, "aggregation")
        kept_decisions = tuple(
            decision for unit in kept_units for decision in unit.decisions
        )
        accuracy = (
            self._advance_learning_plane(plan, kept_decisions)
            if kept_decisions
            else self._last_accuracy
        )
        num_pairs = sum(1 for d in kept_decisions if d.fast_id is not None)
        return self._finish_round(
            plan,
            accuracy,
            duration=end - start,
            compute_seconds=close_time - start,
            aggregation_seconds=aggregation,
            num_pairs=num_pairs,
            communication_seconds=self._communication_for(plan, kept_decisions),
            observed_makespan=observed_makespan,
        )

    def _run_round_semi_sync_dynamic(self, round_index: int) -> RoundRecord:
        """Event-driven quorum closure with in-flight dynamics.

        The quorum policy's decision is interpreted live: the round closes
        at the target-count-th completion or at the policy's deadline
        (whichever comes first, always with at least one completion unless
        every unit was abandoned), so churn-induced re-costs and departures
        genuinely reorder who makes the quorum.
        """
        start, plan, flight = self._start_dynamic_round(round_index)
        durations = sorted(entry.full_duration for entry in flight.values())
        decision = (
            self.quorum_policy.decide(durations, self.stats)
            if durations
            else None
        )
        target = (
            max(1, min(decision.target_count, len(durations)))
            if decision is not None
            else 0
        )
        state = {"completed": 0, "deadline_passed": False}
        closure = {"closed": not flight, "time": start}

        def _close(at: float) -> None:
            if closure["closed"]:
                return
            closure["closed"] = True
            closure["time"] = at
            kept = sum(1 for entry in flight.values() if entry.done)
            pending = [
                entry
                for entry in flight.values()
                if not entry.done and not entry.abandoned
            ]
            self.trace.record(
                at,
                round_index,
                "quorum_reached",
                detail={
                    "kept": kept,
                    "dropped": len(pending),
                    "policy": self.quorum_policy.name,
                },
            )
            for entry in sorted(
                pending, key=lambda e: (e.completion, e.unit.index)
            ):
                self.trace.record(
                    at,
                    round_index,
                    "straggler_dropped",
                    entry.unit.agent_ids,
                    detail={"projected_completion": entry.completion},
                )

        def _maybe_close(at: float) -> None:
            if closure["closed"]:
                return
            live = [entry for entry in flight.values() if not entry.abandoned]
            if not live:
                _close(at)
                return
            effective_target = max(1, min(target, len(live)))
            if state["completed"] >= effective_target:
                _close(at)
            elif state["deadline_passed"] and state["completed"] >= 1:
                _close(at)
            elif all(entry.done for entry in live):
                _close(at)

        def _on_done(entry: _FlightEntry, event: Event) -> None:
            state["completed"] += 1
            _maybe_close(event.timestamp)

        self._on_done_hook = _on_done
        self._on_abandon_hook = lambda entry: _maybe_close(self.engine.now)

        if decision is not None and decision.deadline_seconds is not None:

            def _on_deadline(event: Event) -> None:
                if closure["closed"]:
                    return
                state["deadline_passed"] = True
                self.trace.record(
                    event.timestamp,
                    round_index,
                    "quorum_deadline",
                    detail={"deadline_seconds": decision.deadline_seconds},
                )
                if state["completed"] >= 1:
                    _close(event.timestamp)

            self.engine.schedule_at(
                start + decision.deadline_seconds,
                kind="quorum_deadline",
                priority=1,
                callback=_on_deadline,
            )

        self._drive_until_closed(closure)
        # Untruncated local-phase makespan: for dropped stragglers this is
        # their projected completion, so the quorum statistics observe what
        # the round *would* have taken under a full barrier.
        full_makespan = max(
            (
                entry.completion - start
                for entry in flight.values()
                if not entry.abandoned
            ),
            default=0.0,
        )
        return self._finish_dynamic_round(
            plan,
            round_index,
            start,
            closure["time"],
            flight,
            observed_makespan=full_makespan,
        )

    def _run_round_async_dynamic(self, round_index: int) -> RoundRecord:
        """Per-unit gossip aggregation with in-flight dynamics.

        Each surviving unit's completion schedules its own aggregation;
        the round closes when every non-abandoned unit has aggregated.
        Unlike the closed-form async path, gossip costs are priced at
        completion time, so mid-round churn affects them too.
        """
        start, plan, flight = self._start_dynamic_round(round_index)
        learning_rate = self._lr_schedule.learning_rate
        state = {"accuracy": self._last_accuracy, "outstanding": len(flight)}
        closure = {"closed": not flight, "time": start}

        def _close(at: float) -> None:
            if closure["closed"]:
                return
            closure["closed"] = True
            closure["time"] = at

        def _aggregate(event: Event) -> None:
            unit: WorkUnit = event.payload
            participation = participation_fraction(self.registry, unit.decisions)
            state["accuracy"] = self.accuracy_tracker.after_round(
                unit.decisions, participation, learning_rate
            )
            self.trace.record(
                event.timestamp,
                round_index,
                "aggregation",
                unit.agent_ids,
                detail={"accuracy": state["accuracy"]},
            )
            state["outstanding"] -= 1
            if state["outstanding"] <= 0:
                _close(event.timestamp)

        def _on_done(entry: _FlightEntry, event: Event) -> None:
            cost = max(
                0.0, self.strategy.async_unit_aggregation_seconds(plan, entry.unit)
            )
            self.engine.schedule_after(
                cost, kind="aggregation", payload=entry.unit, callback=_aggregate
            )

        def _on_abandon(entry: _FlightEntry) -> None:
            state["outstanding"] -= 1
            if state["outstanding"] <= 0:
                _close(self.engine.now)

        self._on_done_hook = _on_done
        self._on_abandon_hook = _on_abandon
        self._drive_until_closed(closure)
        end = max(closure["time"], start)
        compute = max(
            (entry.updated_at - start for entry in flight.values() if entry.done),
            default=0.0,
        )
        # Like the other dynamic paths, the record reflects only the units
        # that actually ran: an abandoned pair contributes neither its pair
        # count nor its offload traffic.
        kept_decisions = tuple(
            decision
            for entry in flight.values()
            if entry.done
            for decision in entry.unit.decisions
        )
        self._flight = None
        self.engine.run_until(end)
        accuracy = state["accuracy"]
        self._lr_schedule.step(accuracy)
        return self._finish_round(
            plan,
            accuracy,
            duration=end - start,
            compute_seconds=compute,
            aggregation_seconds=max(0.0, (end - start) - compute),
            num_pairs=sum(1 for d in kept_decisions if d.fast_id is not None),
            communication_seconds=self._communication_for(plan, kept_decisions),
        )

    # ------------------------------------------------------------------
    def run_round(self, round_index: int) -> RoundRecord:
        """Execute one global round in the configured mode.

        A non-empty :class:`~repro.runtime.dynamics.DynamicsSchedule`
        selects the dynamics-aware execution paths; otherwise the original
        closed-form paths run (``sync`` stays bit-for-bit identical to the
        seed loops).
        """
        mode = self.config.execution_mode
        self._current_round = round_index
        if self.dynamics:
            if mode == "sync":
                return self._run_round_sync_dynamic(round_index)
            if mode == "semi-sync":
                return self._run_round_semi_sync_dynamic(round_index)
            if mode == "async":
                return self._run_round_async_dynamic(round_index)
        else:
            if mode == "sync":
                return self._run_round_sync(round_index)
            if mode == "semi-sync":
                return self._run_round_semi_sync(round_index)
            if mode == "async":
                return self._run_round_async(round_index)
        raise ValueError(f"unknown execution mode {mode!r}")

    def run(self) -> RunHistory:
        """Run until the target accuracy is reached or ``max_rounds`` expire."""
        for round_index in range(self.config.max_rounds):
            record = self.run_round(round_index)
            if (
                self.config.target_accuracy is not None
                and record.accuracy >= self.config.target_accuracy
            ):
                logger.info(
                    "target accuracy %.3f reached after %d rounds (%.0f simulated s)",
                    self.config.target_accuracy,
                    round_index + 1,
                    self.engine.now,
                )
                break
        # Push any buffered trace events to their sinks; files stay open
        # (and unsealed) so callers can keep recording or close explicitly.
        self.trace.flush()
        return self.history
