"""Event-driven training runtime shared by ComDML and every baseline.

The runtime owns the round machinery that Algorithm 1 prescribes and that
every method shares — dynamic resource churn, participation sampling, the
learning-rate schedule, accuracy tracking, the
:class:`~repro.training.metrics.RunHistory`, and the per-agent
:class:`~repro.runtime.trace.EventTrace` — and drives execution as events on
a :class:`~repro.sim.engine.SimulationEngine`.  A method contributes only a
:class:`~repro.runtime.strategy.RoundStrategy` that decomposes and prices
each round into :class:`~repro.runtime.strategy.WorkUnit`.

Three execution modes are supported (``ComDMLConfig.execution_mode``):

``sync``
    The classic full barrier: the round closes when the slowest unit and
    the aggregation finish.  Bit-for-bit identical histories to the
    pre-runtime per-method loops (verified by regression tests).
``semi-sync``
    The round closes when a quorum (``ComDMLConfig.quorum_fraction``) of
    units has finished; stragglers are dropped from the aggregation and
    recorded in the trace.
``async``
    No barrier: each unit's completion event triggers its own gossip-style
    aggregation on the event queue; the round record summarises the epoch.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.agents.dynamics import ResourceChurn
from repro.agents.registry import AgentRegistry
from repro.core.config import ComDMLConfig
from repro.nn.schedule import ReduceOnPlateau
from repro.runtime.strategy import (
    RoundPlan,
    RoundStrategy,
    WorkUnit,
    participation_fraction,
)
from repro.runtime.trace import EventTrace
from repro.sim.engine import SimulationEngine
from repro.training.accuracy import AccuracyTracker
from repro.training.metrics import RoundRecord, RunHistory
from repro.utils.logging import get_logger

logger = get_logger("runtime")


class RuntimeDelegate:
    """Convenience surface for classes that wrap a :class:`TrainingRuntime`.

    ComDML and the baseline trainers are both a :class:`RoundStrategy` and
    the user-facing handle of their run; this mixin forwards the run-state
    accessors to ``self.runtime`` (which the subclass's constructor must
    set) so the delegation exists in exactly one place.
    """

    runtime: "TrainingRuntime"

    @property
    def history(self) -> RunHistory:
        """The runtime's accumulated round records."""
        return self.runtime.history

    @property
    def clock(self):
        """The runtime engine's virtual clock."""
        return self.runtime.clock

    @property
    def trace(self) -> EventTrace:
        """The runtime's per-agent event trace."""
        return self.runtime.trace

    @property
    def accuracy_tracker(self) -> AccuracyTracker:
        """The learning-plane tracker driven by the runtime."""
        return self.runtime.accuracy_tracker

    def run_round(self, round_index: int) -> RoundRecord:
        """Execute one global round and return its record."""
        return self.runtime.run_round(round_index)

    def run(self) -> RunHistory:
        """Run until the target accuracy is reached or ``max_rounds`` expire."""
        return self.runtime.run()


class TrainingRuntime:
    """Runs a :class:`RoundStrategy` on the discrete-event engine."""

    def __init__(
        self,
        strategy: RoundStrategy,
        registry: AgentRegistry,
        config: ComDMLConfig,
        accuracy_tracker: AccuracyTracker,
        churn_rng: Optional[np.random.Generator] = None,
        engine: Optional[SimulationEngine] = None,
        trace: Optional[EventTrace] = None,
    ) -> None:
        self.strategy = strategy
        self.registry = registry
        self.config = config
        self.accuracy_tracker = accuracy_tracker
        self.engine = engine if engine is not None else SimulationEngine()
        self.trace = (
            trace if trace is not None else EventTrace(config.trace_max_events)
        )
        self.history = RunHistory(method=strategy.method_name)
        self.churn = (
            ResourceChurn(
                fraction=config.churn_fraction,
                interval_rounds=config.churn_interval_rounds,
            )
            if config.churn_fraction > 0
            else None
        )
        self._churn_rng = (
            churn_rng if churn_rng is not None else np.random.default_rng(config.seed)
        )
        self._lr_schedule = ReduceOnPlateau(
            learning_rate=config.learning_rate,
            factor=config.lr_plateau_factor,
            patience=config.lr_plateau_patience,
        )
        self._last_accuracy = 0.0

    # ------------------------------------------------------------------
    @property
    def clock(self):
        """The engine's virtual clock (shared with every scheduled event)."""
        return self.engine.clock

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.engine.now

    @property
    def learning_rate(self) -> float:
        """Current learning rate of the shared plateau schedule."""
        return self._lr_schedule.learning_rate

    # ------------------------------------------------------------------
    def _plan(self, round_index: int) -> RoundPlan:
        """Shared round prologue: churn, participation sampling, planning."""
        if self.churn is not None:
            changed = self.churn.maybe_apply(
                round_index, self.registry, self._churn_rng
            )
            if changed:
                logger.debug(
                    "round %d: churned profiles of agents %s", round_index, changed
                )
                self.trace.record(
                    self.engine.now, round_index, "churn", tuple(changed)
                )
        participants = self.strategy.select_participants()
        return self.strategy.plan_round(round_index, participants)

    def _finish_round(
        self,
        plan: RoundPlan,
        accuracy: float,
        duration: float,
        compute_seconds: float,
        aggregation_seconds: float,
        num_pairs: int,
        communication_seconds: Optional[float] = None,
    ) -> RoundRecord:
        """Append the round record at the engine's current (end) time."""
        record = RoundRecord(
            round_index=plan.round_index,
            duration_seconds=duration,
            cumulative_seconds=self.engine.now,
            accuracy=accuracy,
            compute_seconds=compute_seconds,
            communication_seconds=communication_seconds
            if communication_seconds is not None
            else plan.communication_seconds,
            aggregation_seconds=aggregation_seconds,
            num_pairs=num_pairs,
        )
        self.history.append(record)
        self.trace.record(
            self.engine.now,
            plan.round_index,
            "round_end",
            detail={"accuracy": accuracy, "duration": duration},
        )
        self._last_accuracy = accuracy
        return record

    def _advance_learning_plane(self, plan: RoundPlan, decisions) -> float:
        """One accuracy-tracker step over the given decisions."""
        participation = participation_fraction(self.registry, decisions)
        accuracy = self.accuracy_tracker.after_round(
            decisions, participation, self._lr_schedule.learning_rate
        )
        self._lr_schedule.step(accuracy)
        return accuracy

    # ------------------------------------------------------------------
    # Execution modes
    # ------------------------------------------------------------------
    def _run_round_sync(self, round_index: int) -> RoundRecord:
        start = self.engine.now
        plan = self._plan(round_index)
        self.trace.record(start, round_index, "round_start")

        accuracy = self._advance_learning_plane(plan, plan.decisions)

        end = start + plan.duration_seconds
        # Clamp to the barrier so the trace stays chronological even when a
        # unit's standalone duration exceeds the round (e.g. a disconnected
        # FedAvg agent the server skips); the raw duration stays in `detail`.
        for unit in sorted(plan.units, key=lambda u: (u.duration, u.index)):
            self.trace.record(
                min(start + unit.duration, end),
                round_index,
                "unit_complete",
                unit.agent_ids,
                detail={"duration": unit.duration},
            )
        if plan.aggregation_seconds > 0:
            # Stamped at its completion (= the barrier) so it never precedes
            # unit completions whose chains overlap the aggregation window.
            self.trace.record(end, round_index, "aggregation")
        self.engine.schedule_at(end, kind="round_end", payload=round_index)
        self.engine.run_until(end)
        return self._finish_round(
            plan,
            accuracy,
            duration=plan.duration_seconds,
            compute_seconds=plan.compute_seconds,
            aggregation_seconds=plan.aggregation_seconds,
            num_pairs=plan.num_pairs,
        )

    def _run_round_semi_sync(self, round_index: int) -> RoundRecord:
        start = self.engine.now
        plan = self._plan(round_index)
        self.trace.record(start, round_index, "round_start")

        units = sorted(plan.units, key=lambda unit: (unit.duration, unit.index))
        quorum = (
            max(1, math.ceil(self.config.quorum_fraction * len(units)))
            if units
            else 0
        )
        kept, dropped = units[:quorum], units[quorum:]
        local = kept[-1].duration if kept else 0.0
        quorum_time = start + local

        for unit in kept:
            self.engine.schedule_at(
                start + unit.duration,
                kind="unit_complete",
                payload=unit,
                callback=lambda event, u=unit: self.trace.record(
                    event.timestamp,
                    round_index,
                    "unit_complete",
                    u.agent_ids,
                    detail={"duration": u.duration},
                ),
            )
        aggregation = self.strategy.semi_sync_aggregation_seconds(plan, kept)
        end = quorum_time + aggregation

        def _on_quorum(event) -> None:
            self.trace.record(
                event.timestamp,
                round_index,
                "quorum_reached",
                detail={"kept": len(kept), "dropped": len(dropped)},
            )
            # Recording the drops here (not before run_until) keeps the
            # trace chronological: completions precede the quorum closure.
            for unit in dropped:
                self.trace.record(
                    event.timestamp,
                    round_index,
                    "straggler_dropped",
                    unit.agent_ids,
                    detail={"projected_completion": start + unit.duration},
                )

        self.engine.schedule_at(
            quorum_time, kind="quorum_reached", priority=1, callback=_on_quorum
        )
        self.engine.schedule_at(end, kind="round_end", priority=2, payload=round_index)
        self.engine.run_until(end)

        kept_decisions = tuple(
            decision for unit in kept for decision in unit.decisions
        )
        accuracy = self._advance_learning_plane(plan, kept_decisions)
        num_pairs = sum(1 for d in kept_decisions if d.fast_id is not None)
        # Communication accounting covers only the quorum when the plan's
        # decisions carry per-decision traffic (ComDML's offload streams):
        # sum the kept ones — even a truthful zero for an all-solo quorum.
        # Baselines price communication at round level only, so their plan
        # figure is used as-is; it is an upper bound when the quorum dropped
        # the round's communication-heaviest agent.
        plan_has_decision_comm = any(
            decision.estimate.communication_time > 0 for decision in plan.decisions
        )
        kept_communication = (
            sum(decision.estimate.communication_time for decision in kept_decisions)
            if plan_has_decision_comm
            else plan.communication_seconds
        )
        return self._finish_round(
            plan,
            accuracy,
            duration=end - start,
            compute_seconds=local,
            aggregation_seconds=aggregation,
            num_pairs=num_pairs,
            communication_seconds=kept_communication,
        )

    def _run_round_async(self, round_index: int) -> RoundRecord:
        start = self.engine.now
        plan = self._plan(round_index)
        self.trace.record(start, round_index, "round_start")

        learning_rate = self._lr_schedule.learning_rate
        state = {"accuracy": self._last_accuracy}

        def _aggregate(event) -> None:
            unit: WorkUnit = event.payload
            participation = participation_fraction(self.registry, unit.decisions)
            state["accuracy"] = self.accuracy_tracker.after_round(
                unit.decisions, participation, learning_rate
            )
            self.trace.record(
                event.timestamp,
                round_index,
                "aggregation",
                unit.agent_ids,
                detail={"accuracy": state["accuracy"]},
            )

        # Price each unit's gossip exchange once: the round-end bound and the
        # scheduled aggregation must agree, or a state-dependent price could
        # leak an event past run_until into the next round.
        gossip_costs = {
            unit.index: self.strategy.async_unit_aggregation_seconds(plan, unit)
            for unit in plan.units
        }

        def _complete(event) -> None:
            unit: WorkUnit = event.payload
            self.trace.record(
                event.timestamp,
                round_index,
                "unit_complete",
                unit.agent_ids,
                detail={"duration": unit.duration},
            )
            self.engine.schedule_after(
                gossip_costs[unit.index],
                kind="aggregation",
                payload=unit,
                callback=_aggregate,
            )

        end = start
        for unit in plan.units:
            completion = start + unit.duration
            end = max(end, completion + gossip_costs[unit.index])
            self.engine.schedule_at(
                completion, kind="unit_complete", payload=unit, callback=_complete
            )
        self.engine.schedule_at(end, kind="round_end", priority=1, payload=round_index)
        self.engine.run_until(end)

        accuracy = state["accuracy"]
        self._lr_schedule.step(accuracy)
        compute = max((unit.duration for unit in plan.units), default=0.0)
        return self._finish_round(
            plan,
            accuracy,
            duration=end - start,
            compute_seconds=compute,
            aggregation_seconds=max(0.0, (end - start) - compute),
            num_pairs=plan.num_pairs,
        )

    # ------------------------------------------------------------------
    def run_round(self, round_index: int) -> RoundRecord:
        """Execute one global round in the configured mode."""
        mode = self.config.execution_mode
        if mode == "sync":
            return self._run_round_sync(round_index)
        if mode == "semi-sync":
            return self._run_round_semi_sync(round_index)
        if mode == "async":
            return self._run_round_async(round_index)
        raise ValueError(f"unknown execution mode {mode!r}")

    def run(self) -> RunHistory:
        """Run until the target accuracy is reached or ``max_rounds`` expire."""
        for round_index in range(self.config.max_rounds):
            record = self.run_round(round_index)
            if (
                self.config.target_accuracy is not None
                and record.accuracy >= self.config.target_accuracy
            ):
                logger.info(
                    "target accuracy %.3f reached after %d rounds (%.0f simulated s)",
                    self.config.target_accuracy,
                    round_index + 1,
                    self.engine.now,
                )
                break
        return self.history
