"""Pluggable sinks of the streaming trace pipeline.

A sink is where admitted trace events land: the in-memory store behind the
legacy :class:`~repro.runtime.trace.EventTrace` API, an append-only sealed
JSONL file, a SQLite table, or an arbitrary callback (the hook streaming
consumers like
:class:`~repro.experiments.reporting.StreamingTraceSummary` plug into).
Every sink keeps its own explicit accounting — ``delivered`` events stored
and ``dropped`` events lost at the sink itself (capacity, write failure) —
which the pipeline combines with upstream filter/buffer drops so that
``emitted == delivered + dropped`` holds per sink at any point in time.

File-backed sinks are *deferred*: the pipeline may stage their events in
its bounded buffer and deliver in batches, so the simulation loop never
blocks on I/O for each event.  In-memory and callback sinks are delivered
synchronously.

Sinks are constructed directly or from a compact spec string via
:func:`make_sink` — ``"memory"``, ``"memory:5000"``, ``"jsonl:trace.jsonl"``,
``"sqlite:trace.db"`` — which is what configuration surfaces use.
"""

from __future__ import annotations

import sqlite3
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.runtime.audit import (
    ChainState,
    event_line,
    final_seal_line,
    segment_seal_line,
)

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.runtime.trace import TraceEvent


def event_payload(event: "TraceEvent") -> dict[str, Any]:
    """Plain-dict (JSON-serialisable) form of one trace event."""
    return {
        "timestamp": event.timestamp,
        "round_index": event.round_index,
        "kind": event.kind,
        "agent_ids": list(event.agent_ids),
        "detail": event.detail,
    }


class TraceSink:
    """Destination for admitted trace events, with explicit accounting."""

    #: Sink name used in accounting tables and config errors.
    name = "sink"
    #: Deferred sinks may be batched behind the pipeline's bounded buffer.
    deferred = False

    def __init__(self) -> None:
        #: Events this sink stored/forwarded successfully.
        self.delivered = 0
        #: Events lost at this sink itself (capacity, write failure).
        self.dropped = 0

    def emit(self, event: "TraceEvent") -> bool:
        """Store one event; returns ``True`` iff it was delivered.

        Implementations must update :attr:`delivered`/:attr:`dropped`
        themselves — an event that returns from ``emit`` is accounted,
        one way or the other.
        """
        raise NotImplementedError

    def flush(self) -> None:
        """Push buffered state to durable storage (no-op by default)."""

    def close(self) -> None:
        """Release resources and seal/commit durable state."""


class MemorySink(TraceSink):
    """Bounded in-memory event store — the legacy ``EventTrace`` backing.

    Mirrors the original semantics exactly: at capacity, *new* events are
    dropped (and counted), never old ones evicted, so the stored prefix of
    a capped trace is identical to the uncapped trace's prefix.
    """

    name = "memory"

    def __init__(self, max_events: Optional[int] = None) -> None:
        super().__init__()
        if max_events is not None and max_events <= 0:
            raise ValueError(f"max_events must be positive, got {max_events}")
        self.max_events = max_events
        self.events: list["TraceEvent"] = []

    def emit(self, event: "TraceEvent") -> bool:
        if self.max_events is not None and len(self.events) >= self.max_events:
            self.dropped += 1
            return False
        self.events.append(event)
        self.delivered += 1
        return True


class CallbackSink(TraceSink):
    """Forward each event to a callable (streaming consumers, tests)."""

    def __init__(
        self, callback: Callable[["TraceEvent"], Any], name: str = "callback"
    ) -> None:
        super().__init__()
        self.callback = callback
        self.name = name

    def emit(self, event: "TraceEvent") -> bool:
        self.callback(event)
        self.delivered += 1
        return True


class JSONLSink(TraceSink):
    """Append-only sealed JSONL file: one chained event per line.

    Each line carries the event's index, canonical body, and the audit
    chain head after folding it in (see :mod:`repro.runtime.audit`).
    Every ``segment_events`` events a segment seal records the chain state,
    and :meth:`close` writes the final seal — ``comdml trace verify``
    re-derives the whole chain and reports the exact first divergent event
    on any tampering.
    """

    name = "jsonl"
    deferred = True

    def __init__(
        self,
        path: str | Path,
        segment_events: Optional[int] = 4096,
    ) -> None:
        super().__init__()
        if segment_events is not None and segment_events <= 0:
            raise ValueError(
                f"segment_events must be positive, got {segment_events}"
            )
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.segment_events = segment_events
        self.chain = ChainState()
        self._segment = 0
        self._segment_start = 0
        self._handle = open(self.path, "w", encoding="utf-8")
        self._closed = False

    def emit(self, event: "TraceEvent") -> bool:
        if self._closed:
            self.dropped += 1
            return False
        index = self.chain.index
        try:
            head = self.chain.update(event_payload(event))
            self._handle.write(event_line(index, event_payload(event), head) + "\n")
        except (OSError, ValueError):
            self.dropped += 1
            return False
        self.delivered += 1
        if (
            self.segment_events is not None
            and self.chain.index - self._segment_start >= self.segment_events
        ):
            self._write_segment_seal()
        return True

    def _write_segment_seal(self) -> None:
        self._handle.write(
            segment_seal_line(
                self._segment,
                self._segment_start,
                self.chain.index - self._segment_start,
                self.chain.head,
            )
            + "\n"
        )
        self._segment += 1
        self._segment_start = self.chain.index

    def flush(self) -> None:
        if not self._closed:
            self._handle.flush()

    def close(self) -> None:
        """Write the final seal and close the file (idempotent)."""
        if self._closed:
            return
        if self.chain.index > self._segment_start:
            self._write_segment_seal()
        self._handle.write(final_seal_line(self.chain.index, self.chain.head) + "\n")
        self._handle.close()
        self._closed = True


class SQLiteSink(TraceSink):
    """Trace events in a SQLite table (queryable post-hoc at any scale)."""

    name = "sqlite"
    deferred = True

    #: Rows per implicit transaction; committed on flush/close as well.
    COMMIT_EVERY = 1024

    def __init__(self, path: str | Path, table: str = "trace_events") -> None:
        super().__init__()
        if not table.isidentifier():
            raise ValueError(f"table must be an identifier, got {table!r}")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.table = table
        self._connection = sqlite3.connect(str(self.path))
        self._connection.execute(
            f"CREATE TABLE IF NOT EXISTS {table} ("
            "  idx INTEGER PRIMARY KEY,"
            "  timestamp REAL NOT NULL,"
            "  round_index INTEGER NOT NULL,"
            "  kind TEXT NOT NULL,"
            "  agent_ids TEXT NOT NULL,"
            "  detail TEXT"
            ")"
        )
        self._pending = 0
        self._closed = False

    def emit(self, event: "TraceEvent") -> bool:
        if self._closed:
            self.dropped += 1
            return False
        from repro.runtime.audit import canonical_json

        try:
            self._connection.execute(
                f"INSERT INTO {self.table} "
                "(idx, timestamp, round_index, kind, agent_ids, detail) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                (
                    self.delivered,
                    event.timestamp,
                    event.round_index,
                    event.kind,
                    canonical_json(list(event.agent_ids)),
                    canonical_json(event.detail)
                    if event.detail is not None
                    else None,
                ),
            )
        except sqlite3.Error:
            self.dropped += 1
            return False
        self.delivered += 1
        self._pending += 1
        if self._pending >= self.COMMIT_EVERY:
            self._connection.commit()
            self._pending = 0
        return True

    def flush(self) -> None:
        if not self._closed:
            self._connection.commit()
            self._pending = 0

    def close(self) -> None:
        if self._closed:
            return
        self._connection.commit()
        self._connection.close()
        self._closed = True


def load_sqlite_trace(
    path: str | Path, table: str = "trace_events"
) -> list[dict[str, Any]]:
    """Read a :class:`SQLiteSink` table back as plain event dicts."""
    import json

    if not table.isidentifier():
        raise ValueError(f"table must be an identifier, got {table!r}")
    with sqlite3.connect(str(path)) as connection:
        rows = connection.execute(
            f"SELECT timestamp, round_index, kind, agent_ids, detail "
            f"FROM {table} ORDER BY idx"
        ).fetchall()
    return [
        {
            "timestamp": timestamp,
            "round_index": round_index,
            "kind": kind,
            "agent_ids": json.loads(agent_ids),
            "detail": json.loads(detail) if detail is not None else None,
        }
        for timestamp, round_index, kind, agent_ids, detail in rows
    ]


# ----------------------------------------------------------------------
# Spec-string construction
# ----------------------------------------------------------------------

def make_sink(spec: str) -> TraceSink:
    """Build a sink from a compact spec string.

    ``"memory"`` / ``"memory:<max_events>"`` / ``"jsonl:<path>"`` /
    ``"sqlite:<path>"`` — the form configuration files and CLIs use.
    """
    kind, _, argument = spec.partition(":")
    if kind == "memory":
        return MemorySink(int(argument) if argument else None)
    if kind == "jsonl":
        if not argument:
            raise ValueError("jsonl sink needs a path: 'jsonl:<path>'")
        return JSONLSink(argument)
    if kind == "sqlite":
        if not argument:
            raise ValueError("sqlite sink needs a path: 'sqlite:<path>'")
        return SQLiteSink(argument)
    raise ValueError(
        f"unknown sink spec {spec!r}; expected memory[:N], jsonl:<path> "
        "or sqlite:<path>"
    )
