"""The per-method contract of the :class:`~repro.runtime.TrainingRuntime`.

A training method contributes only what makes it unique — how a round's
work is decomposed, priced, and aggregated — expressed as a
:class:`RoundPlan` of :class:`WorkUnit`.  Everything methods share (churn,
participation sampling, the LR schedule, accuracy tracking, history, the
event loop) lives in the runtime.  ComDML's strategy derives its plan from
the pairing scheduler; each baseline derives its plan from its
``round_timing`` pattern.

Besides planning, a strategy exposes three *dynamics hooks* the runtime
invokes when a :class:`~repro.runtime.dynamics.DynamicsSchedule` perturbs
the population mid-run: ``reprice_unit`` (fresh price of an in-flight unit
after churn), ``on_agent_arrival`` and ``on_agent_departure`` (topology
wiring).  :class:`StrategyDefaults` provides inert fallbacks, so a
strategy can opt into dynamics incrementally.

This module also hosts the round helpers that were previously duplicated
between ``core/comdml.py`` and ``baselines/base.py``:
:func:`participation_fraction` and :func:`solo_decisions`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Protocol, Sequence, runtime_checkable

from repro.agents.agent import Agent
from repro.agents.registry import AgentRegistry
from repro.core.pairing import PairingDecision
from repro.core.profiling import SplitProfile
from repro.core.workload import OffloadEstimate, individual_training_time

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.runtime.dynamics import ArrivalAttachment


@dataclass(frozen=True)
class WorkUnit:
    """One independently completing unit of local work within a round.

    For ComDML a unit is one pairing decision (a pair or a solo agent); for
    the baselines a unit is one participant training the full model.  Units
    are what the ``semi-sync`` quorum counts and what the ``async`` mode
    aggregates one at a time.
    """

    index: int
    agent_ids: tuple[int, ...]
    duration: float
    decisions: tuple[PairingDecision, ...]


@dataclass(frozen=True)
class RoundPlan:
    """A fully priced round, before the runtime executes it.

    Attributes
    ----------
    round_index:
        Zero-based round this plan belongs to.
    decisions:
        Every pairing decision of the round (the learning-plane input).
    units:
        The round's independently completing work units.
    aggregation_seconds:
        Round-closing aggregation cost under a full barrier.
    duration_seconds:
        Full synchronous round duration (local + aggregation).
    compute_seconds / communication_seconds:
        Values recorded in the round record's breakdown fields.
    num_pairs:
        Number of offloading pairs formed (0 for baselines).
    """

    round_index: int
    decisions: tuple[PairingDecision, ...]
    units: tuple[WorkUnit, ...]
    aggregation_seconds: float
    duration_seconds: float
    compute_seconds: float
    communication_seconds: float
    num_pairs: int


@runtime_checkable
class RoundStrategy(Protocol):
    """What a training method contributes to the shared runtime."""

    #: Human-readable method name used in histories and reports.
    method_name: str

    def select_participants(self) -> list[Agent]:
        """Sample this round's participants (consumes the method's RNG)."""
        ...

    def plan_round(
        self, round_index: int, participants: Sequence[Agent]
    ) -> RoundPlan:
        """Decompose and price one round of work for the participants."""
        ...

    def semi_sync_aggregation_seconds(
        self, plan: RoundPlan, kept_units: Sequence[WorkUnit]
    ) -> float:
        """Aggregation cost when only the quorum's units are aggregated."""
        ...

    def async_unit_aggregation_seconds(self, plan: RoundPlan, unit: WorkUnit) -> float:
        """Cost of one unit's gossip-style aggregation in ``async`` mode."""
        ...

    def reprice_unit(self, plan: RoundPlan, unit: WorkUnit) -> float:
        """Current full-round price of a unit under present agent profiles.

        Called when a :class:`~repro.runtime.dynamics.DynamicsSchedule`
        churn event lands while the unit is in flight: the runtime keeps the
        completed fraction of the unit and re-costs the remainder at this
        fresh price.
        """
        ...

    def on_agent_arrival(
        self,
        agent: Agent,
        neighbors: Optional[Sequence[int]] = None,
        attachment: Optional["ArrivalAttachment"] = None,
    ) -> None:
        """React to a mid-run arrival (e.g. wire the agent into the topology).

        ``attachment`` carries the arrival event's
        :class:`~repro.runtime.dynamics.ArrivalAttachment` policy; explicit
        ``neighbors`` take precedence over it.
        """
        ...

    def on_agent_departure(self, agent: Agent) -> None:
        """React to a mid-run departure (e.g. drop the agent's topology links)."""
        ...


class StrategyDefaults:
    """Default mode-specific pricing and dynamics hooks shared by strategies.

    ``semi-sync`` conservatively keeps the full-barrier aggregation price;
    ``async`` splits it evenly across the round's units (each unit pays its
    share when it gossips its update).  Methods with a real per-subset cost
    model (e.g. ComDML's AllReduce over the finishers) override these.

    The dynamics hooks default to inert behaviour — ``reprice_unit`` keeps
    the plan-time price, and the arrival/departure callbacks do nothing —
    so a strategy that ignores mid-round dynamics still runs correctly
    under a :class:`~repro.runtime.dynamics.DynamicsSchedule` (churn simply
    has no mid-round timing effect on it).
    """

    def semi_sync_aggregation_seconds(
        self, plan: RoundPlan, kept_units: Sequence[WorkUnit]
    ) -> float:
        return plan.aggregation_seconds

    def async_unit_aggregation_seconds(self, plan: RoundPlan, unit: WorkUnit) -> float:
        return plan.aggregation_seconds / max(1, len(plan.units))

    def reprice_unit(self, plan: RoundPlan, unit: WorkUnit) -> float:
        return unit.duration

    def on_agent_arrival(
        self,
        agent: Agent,
        neighbors: Optional[Sequence[int]] = None,
        attachment: Optional["ArrivalAttachment"] = None,
    ) -> None:
        return None

    def on_agent_departure(self, agent: Agent) -> None:
        return None


def participation_fraction(
    registry: AgentRegistry, decisions: Sequence[PairingDecision]
) -> float:
    """Fraction of the population's data that contributed to a round.

    Counts every agent involved in a decision (solo agents and both members
    of each pair) once, weighted by its local dataset size.
    """
    involved: set[int] = set()
    for decision in decisions:
        involved.add(decision.slow_id)
        if decision.fast_id is not None:
            involved.add(decision.fast_id)
    total = registry.total_samples
    if total == 0:
        return 1.0
    contributed = sum(
        registry.get(agent_id).num_samples
        for agent_id in involved
        if agent_id in registry
    )
    return min(1.0, contributed / total)


def solo_decisions(
    participants: Sequence[Agent],
    profile: SplitProfile,
    batch_size: Optional[int] = None,
) -> list[PairingDecision]:
    """Every participant trains the full model alone (no offloading)."""
    decisions: list[PairingDecision] = []
    for agent in participants:
        own_time = individual_training_time(
            agent, profile, batch_size if batch_size is not None else agent.batch_size
        )
        estimate = OffloadEstimate(
            offloaded_layers=0,
            slow_time=own_time,
            fast_own_time=0.0,
            communication_time=0.0,
            fast_offload_time=0.0,
            pair_time=own_time,
        )
        decisions.append(
            PairingDecision(
                slow_id=agent.agent_id,
                fast_id=None,
                offloaded_layers=0,
                estimate=estimate,
            )
        )
    return decisions
