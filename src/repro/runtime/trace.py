"""Per-agent event traces emitted by the :class:`~repro.runtime.TrainingRuntime`.

Every runtime execution — regardless of mode — records a chronological
:class:`EventTrace` of :class:`TraceEvent` entries: round boundaries, resource
churn, per-unit (pair or solo agent) completions, quorum closures, dropped
stragglers, aggregations, and — under a
:class:`~repro.runtime.dynamics.DynamicsSchedule` — agent arrivals,
departures, in-flight re-costs, and abandoned units.  Experiments and
benchmarks assert against the trace instead of re-deriving behaviour from
round records, and the trace is the debugging surface for the
``semi-sync``/``async`` modes where round records alone hide the per-agent
interleaving.  :mod:`repro.experiments.reporting` renders traces as
per-agent plain-text timelines and summarises dynamics events as
annotations next to the comparison tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped occurrence in a training run.

    Attributes
    ----------
    timestamp:
        Simulated time (seconds) at which the event occurred.
    round_index:
        Zero-based round the event belongs to.
    kind:
        Event type: ``"round_start"``, ``"churn"``, ``"unit_complete"``,
        ``"quorum_reached"``, ``"quorum_deadline"``,
        ``"straggler_dropped"``, ``"aggregation"``, ``"round_end"``, or —
        from a dynamics schedule — ``"arrival"``, ``"departure"``,
        ``"unit_repriced"`` and ``"unit_abandoned"``.
    agent_ids:
        Agents involved in the event (empty for round-level events).
    detail:
        Optional free-form payload (e.g. the unit duration or accuracy).
    """

    timestamp: float
    round_index: int
    kind: str
    agent_ids: tuple[int, ...] = ()
    detail: Optional[dict[str, Any]] = None


class EventTrace:
    """Bounded, append-only chronological record of :class:`TraceEvent`.

    Parameters
    ----------
    max_events:
        Optional cap on retained events.  When the cap is reached, further
        events are counted in :attr:`dropped_events` but not stored, so
        million-round runs cannot exhaust memory through tracing.
    """

    def __init__(self, max_events: Optional[int] = None) -> None:
        if max_events is not None and max_events <= 0:
            raise ValueError(f"max_events must be positive, got {max_events}")
        self.max_events = max_events
        self.events: list[TraceEvent] = []
        self.dropped_events = 0

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def record(
        self,
        timestamp: float,
        round_index: int,
        kind: str,
        agent_ids: tuple[int, ...] = (),
        detail: Optional[dict[str, Any]] = None,
    ) -> Optional[TraceEvent]:
        """Append an event; returns it, or ``None`` if the cap dropped it."""
        if self.max_events is not None and len(self.events) >= self.max_events:
            self.dropped_events += 1
            return None
        event = TraceEvent(
            timestamp=timestamp,
            round_index=round_index,
            kind=kind,
            agent_ids=tuple(agent_ids),
            detail=detail,
        )
        self.events.append(event)
        return event

    def of_kind(self, kind: str) -> list[TraceEvent]:
        """All events of the given kind, in order."""
        return [event for event in self.events if event.kind == kind]

    def for_agent(self, agent_id: int) -> list[TraceEvent]:
        """All events that involve the given agent, in order."""
        return [event for event in self.events if agent_id in event.agent_ids]

    def for_round(self, round_index: int) -> list[TraceEvent]:
        """All events belonging to the given round, in order."""
        return [event for event in self.events if event.round_index == round_index]

    def agent_ids(self) -> list[int]:
        """Sorted union of every agent id the trace mentions."""
        ids: set[int] = set()
        for event in self.events:
            ids.update(event.agent_ids)
        return sorted(ids)

    def kind_counts(self) -> dict[str, int]:
        """Histogram of event kinds (useful in assertions and reports)."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def to_dicts(self) -> list[dict[str, Any]]:
        """Plain-dict form of the trace (JSON-serialisable)."""
        return [
            {
                "timestamp": event.timestamp,
                "round_index": event.round_index,
                "kind": event.kind,
                "agent_ids": list(event.agent_ids),
                "detail": event.detail,
            }
            for event in self.events
        ]
