"""Streaming per-agent event traces emitted by the training runtime.

Every runtime execution — regardless of mode — records a chronological
stream of :class:`TraceEvent` entries: round boundaries, resource churn,
per-unit (pair or solo agent) completions, quorum closures, dropped
stragglers, aggregations, and — under a
:class:`~repro.runtime.dynamics.DynamicsSchedule` — agent arrivals,
departures, in-flight re-costs, and abandoned units.

Since the streaming refactor, :class:`EventTrace` is no longer a bounded
list but the front end of a **trace pipeline**: each recorded event passes
through composable filter stages (:mod:`repro.runtime.filters`: level,
token-bucket rate limit, adaptive sampling that tightens under sustained
load) and is delivered to pluggable sinks (:mod:`repro.runtime.sinks`:
the in-memory store behind the legacy query API, sealed JSONL, SQLite,
callbacks) — file sinks optionally behind a non-blocking bounded buffer.
Nothing is ever lost silently: every stage and every sink keeps explicit
drop counters, and :meth:`EventTrace.accounting` exposes the conservation
invariant ``emitted == delivered + dropped`` per sink.

The default configuration — no filters, no extra sinks, no buffer —
reduces *exactly* to the pre-pipeline behaviour (golden regressions assert
byte-identity), so existing callers and experiments are unaffected until
they opt in via the ``trace_*`` fields of
:class:`~repro.core.config.ComDMLConfig` (see :func:`build_event_trace`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator, Optional, Sequence

from repro.runtime.filters import (
    AdaptiveSamplingFilter,
    LevelFilter,
    TokenBucketFilter,
    TraceFilter,
)
from repro.runtime.sinks import (
    JSONLSink,
    MemorySink,
    SQLiteSink,
    TraceSink,
    event_payload,
)

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.config import ComDMLConfig

#: Buffer overflow policies: ``"flush"`` drains the buffer in place (the
#: pipeline never loses data, at the cost of a synchronous batch write);
#: ``"drop"`` rejects the incoming event for the deferred sinks and counts
#: it (strictly non-blocking).
OVERFLOW_POLICIES = ("flush", "drop")


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped occurrence in a training run.

    Attributes
    ----------
    timestamp:
        Simulated time (seconds) at which the event occurred.
    round_index:
        Zero-based round the event belongs to.
    kind:
        Event type: ``"round_start"``, ``"churn"``, ``"unit_complete"``,
        ``"quorum_reached"``, ``"quorum_deadline"``,
        ``"straggler_dropped"``, ``"aggregation"``, ``"round_end"``, or —
        from a dynamics schedule — ``"arrival"``, ``"departure"``,
        ``"unit_repriced"`` and ``"unit_abandoned"`` (plus the opt-in
        ``"engine_event"`` debug kind).
    agent_ids:
        Agents involved in the event (empty for round-level events).
    detail:
        Optional free-form payload (e.g. the unit duration or accuracy).
    """

    timestamp: float
    round_index: int
    kind: str
    agent_ids: tuple[int, ...] = ()
    detail: Optional[dict[str, Any]] = None


@dataclass
class PipelineStats:
    """Explicit per-stage accounting of one trace pipeline.

    ``emitted`` counts every event offered to :meth:`EventTrace.record`;
    ``filtered`` attributes rejections to the stage that made them;
    ``buffer_dropped`` counts events the bounded buffer rejected for the
    deferred sinks under the ``"drop"`` overflow policy; ``sink_errors``
    counts events lost to a sink raising mid-emit.  Together with each
    sink's own ``delivered``/``dropped`` counters these close the
    conservation equation checked by :meth:`EventTrace.accounting`.
    """

    emitted: int = 0
    filtered: dict[str, int] = field(default_factory=dict)
    buffer_dropped: int = 0
    sink_errors: dict[str, int] = field(default_factory=dict)

    @property
    def filtered_total(self) -> int:
        """Events rejected by any filter stage."""
        return sum(self.filtered.values())

    def as_dict(self) -> dict[str, Any]:
        """JSON-serialisable snapshot."""
        return {
            "emitted": self.emitted,
            "filtered": dict(self.filtered),
            "buffer_dropped": self.buffer_dropped,
            "sink_errors": dict(self.sink_errors),
        }


class EventTrace:
    """Streaming trace pipeline behind the legacy bounded-trace API.

    Parameters
    ----------
    max_events:
        Optional cap on events retained *in memory*.  At capacity further
        events are counted in :attr:`dropped_events` but not stored —
        exactly the pre-pipeline semantics — while still flowing to any
        extra sinks (a sealed JSONL file keeps every event even when the
        in-memory view is capped).
    filters:
        Ordered filter stages applied before any sink (see
        :mod:`repro.runtime.filters`).  A stage rejection counts as a drop
        for every sink.
    sinks:
        Extra sinks beyond the built-in in-memory store (see
        :mod:`repro.runtime.sinks`).
    buffer_capacity:
        When set, events bound for *deferred* (file-backed) sinks are
        staged in a bounded buffer of this size instead of being written
        one by one; the in-memory store and callback sinks always deliver
        synchronously.
    overflow:
        What a full buffer does with the next event: ``"flush"`` (default,
        drain in place) or ``"drop"`` (reject for the deferred sinks, with
        accounting).
    """

    def __init__(
        self,
        max_events: Optional[int] = None,
        filters: Sequence[TraceFilter] = (),
        sinks: Sequence[TraceSink] = (),
        buffer_capacity: Optional[int] = None,
        overflow: str = "flush",
    ) -> None:
        if buffer_capacity is not None and buffer_capacity <= 0:
            raise ValueError(
                f"buffer_capacity must be positive, got {buffer_capacity}"
            )
        if overflow not in OVERFLOW_POLICIES:
            raise ValueError(
                f"overflow must be one of {OVERFLOW_POLICIES}, got {overflow!r}"
            )
        self.max_events = max_events
        self.filters: tuple[TraceFilter, ...] = tuple(filters)
        self._memory = MemorySink(max_events)
        self.sinks: tuple[TraceSink, ...] = (self._memory, *sinks)
        seen: set[str] = set()
        for sink in self.sinks:
            if sink.name in seen:
                raise ValueError(f"duplicate sink name {sink.name!r}")
            seen.add(sink.name)
        self._deferred = tuple(sink for sink in self.sinks if sink.deferred)
        self._synchronous = tuple(
            sink for sink in self.sinks if not sink.deferred
        )
        self.buffer_capacity = buffer_capacity
        self.overflow = overflow
        self._buffer: list[TraceEvent] = []
        self.stats = PipelineStats()
        self._closed = False

    # ------------------------------------------------------------------
    # Legacy surface
    # ------------------------------------------------------------------
    @property
    def events(self) -> list[TraceEvent]:
        """Events retained by the in-memory sink, in order."""
        return self._memory.events

    @property
    def dropped_events(self) -> int:
        """Events emitted but absent from the in-memory view.

        Counts capacity drops (the legacy meaning) plus any filter-stage
        rejections — truncation is never silent.
        """
        return self.stats.filtered_total + self._memory.dropped

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------
    def record(
        self,
        timestamp: float,
        round_index: int,
        kind: str,
        agent_ids: tuple[int, ...] = (),
        detail: Optional[dict[str, Any]] = None,
    ) -> Optional[TraceEvent]:
        """Offer one event to the pipeline.

        Returns the event when the in-memory sink retained it, ``None``
        when a filter rejected it or the memory cap dropped it (matching
        the pre-pipeline contract); extra sinks may still have received it.
        """
        event = TraceEvent(
            timestamp=timestamp,
            round_index=round_index,
            kind=kind,
            agent_ids=tuple(agent_ids),
            detail=detail,
        )
        self.stats.emitted += 1
        for stage in self.filters:
            if not stage.admit(event):
                self.stats.filtered[stage.name] = (
                    self.stats.filtered.get(stage.name, 0) + 1
                )
                return None
        in_memory = False
        for sink in self._synchronous:
            delivered = self._emit(sink, event)
            if sink is self._memory:
                in_memory = delivered
        if self._deferred:
            if self.buffer_capacity is None:
                for sink in self._deferred:
                    self._emit(sink, event)
            elif (
                len(self._buffer) >= self.buffer_capacity
                and self.overflow == "drop"
            ):
                self.stats.buffer_dropped += 1
                for sink in self._deferred:
                    sink.dropped += 1
            else:
                self._buffer.append(event)
                if (
                    len(self._buffer) >= self.buffer_capacity
                    and self.overflow == "flush"
                ):
                    self._drain_buffer()
        return event if in_memory else None

    def _emit(self, sink: TraceSink, event: TraceEvent) -> bool:
        """Guarded delivery: a failing sink drops (and counts) the event."""
        try:
            return bool(sink.emit(event))
        except Exception:  # noqa: BLE001 - sink isolation is the contract
            sink.dropped += 1
            self.stats.sink_errors[sink.name] = (
                self.stats.sink_errors.get(sink.name, 0) + 1
            )
            return False

    def _drain_buffer(self) -> None:
        buffered, self._buffer = self._buffer, []
        for event in buffered:
            for sink in self._deferred:
                self._emit(sink, event)

    def flush(self) -> None:
        """Drain the buffer and flush every sink to durable storage."""
        self._drain_buffer()
        for sink in self.sinks:
            sink.flush()

    def close(self) -> None:
        """Flush, then close/seal every sink (idempotent)."""
        if self._closed:
            return
        self._drain_buffer()
        for sink in self.sinks:
            sink.flush()
            sink.close()
        self._closed = True

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def accounting(self) -> dict[str, dict[str, int]]:
        """Per-sink conservation table built from the explicit counters.

        For every sink: ``emitted == delivered + dropped + buffered``,
        where ``dropped`` sums upstream filter rejections with the sink's
        own losses (capacity, buffer overflow, emit failure) and
        ``buffered`` counts events still staged for deferred sinks (always
        0 after :meth:`flush`).  The figures come from independent
        counters — the equation is an invariant the test suite enforces,
        not an identity by construction.
        """
        buffered = len(self._buffer)
        table: dict[str, dict[str, int]] = {}
        for sink in self.sinks:
            table[sink.name] = {
                "emitted": self.stats.emitted,
                "delivered": sink.delivered,
                "dropped": self.stats.filtered_total + sink.dropped,
                "buffered": buffered if sink.deferred else 0,
            }
        return table

    def check_conservation(self) -> None:
        """Raise ``AssertionError`` if any sink's accounting doesn't close."""
        for name, row in self.accounting().items():
            total = row["delivered"] + row["dropped"] + row["buffered"]
            if row["emitted"] != total:
                raise AssertionError(
                    f"sink {name!r} lost events silently: emitted "
                    f"{row['emitted']} != delivered {row['delivered']} + "
                    f"dropped {row['dropped']} + buffered {row['buffered']}"
                )

    # ------------------------------------------------------------------
    # Queries over the in-memory view
    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> list[TraceEvent]:
        """All retained events of the given kind, in order."""
        return [event for event in self.events if event.kind == kind]

    def for_agent(self, agent_id: int) -> list[TraceEvent]:
        """All retained events that involve the given agent, in order."""
        return [event for event in self.events if agent_id in event.agent_ids]

    def for_round(self, round_index: int) -> list[TraceEvent]:
        """All retained events belonging to the given round, in order."""
        return [event for event in self.events if event.round_index == round_index]

    def agent_ids(self) -> list[int]:
        """Sorted union of every agent id the retained events mention."""
        ids: set[int] = set()
        for event in self.events:
            ids.update(event.agent_ids)
        return sorted(ids)

    def kind_counts(self) -> dict[str, int]:
        """Histogram of retained event kinds (useful in assertions/reports)."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def to_dicts(self) -> list[dict[str, Any]]:
        """Plain-dict form of the retained events (JSON-serialisable)."""
        return [event_payload(event) for event in self.events]


def build_event_trace(config: "ComDMLConfig") -> EventTrace:
    """Construct the runtime's trace pipeline from its configuration.

    With the default configuration this returns a bare
    ``EventTrace(config.trace_max_events)`` — no filters, no extra sinks,
    no buffer — which is byte-identical to the pre-pipeline behaviour.
    Each ``trace_*`` field independently adds one stage or sink:
    ``trace_min_level`` a :class:`~repro.runtime.filters.LevelFilter`,
    ``trace_rate_limit`` a token bucket, ``trace_adaptive_target`` the
    adaptive sampler, ``trace_jsonl_path``/``trace_sqlite_path`` the
    sealed-file sinks (optionally buffered via ``trace_buffer_capacity``
    and ``trace_overflow``).
    """
    filters: list[TraceFilter] = []
    if config.trace_min_level > 0:
        filters.append(LevelFilter(config.trace_min_level))
    if config.trace_rate_limit is not None:
        filters.append(
            TokenBucketFilter(config.trace_rate_limit, config.trace_rate_burst)
        )
    if config.trace_adaptive_target is not None:
        filters.append(AdaptiveSamplingFilter(config.trace_adaptive_target))
    sinks: list[TraceSink] = []
    if config.trace_jsonl_path is not None:
        sinks.append(
            JSONLSink(
                config.trace_jsonl_path,
                segment_events=config.trace_segment_events,
            )
        )
    if config.trace_sqlite_path is not None:
        sinks.append(SQLiteSink(config.trace_sqlite_path))
    return EventTrace(
        max_events=config.trace_max_events,
        filters=filters,
        sinks=sinks,
        buffer_capacity=config.trace_buffer_capacity,
        overflow=config.trace_overflow,
    )
