"""Discrete-event simulation substrate.

The timing plane of the reproduction: a deterministic virtual clock
(:class:`~repro.sim.clock.SimClock`), an event queue and engine
(:mod:`repro.sim.engine`), and cost-model primitives
(:mod:`repro.sim.costs`) used to convert work (FLOPs, bytes) into simulated
seconds given an agent's resources.
"""

from repro.sim.clock import SimClock
from repro.sim.events import Event, EventQueue
from repro.sim.engine import SimulationEngine
from repro.sim.costs import compute_time_seconds, transfer_time_seconds

__all__ = [
    "SimClock",
    "Event",
    "EventQueue",
    "SimulationEngine",
    "compute_time_seconds",
    "transfer_time_seconds",
]
