"""Virtual simulation clock.

All training/communication durations in the reproduction are *simulated*
seconds accumulated on a :class:`SimClock`, never wall-clock time.  This is
what makes the experiments deterministic and hardware-independent: the
paper's testbed simulated CPU shares and link speeds on a real machine,
whereas here the whole clock is virtual.
"""

from __future__ import annotations

from repro.utils.validation import check_non_negative


class SimClock:
    """Monotonically non-decreasing virtual clock measured in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        check_non_negative(start, "start")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, delta: float) -> float:
        """Advance the clock by ``delta`` seconds and return the new time."""
        check_non_negative(delta, "delta")
        self._now += delta
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Jump the clock forward to ``timestamp``.

        Raises
        ------
        ValueError
            If ``timestamp`` is earlier than the current time (the clock
            never moves backwards).
        """
        if timestamp < self._now:
            raise ValueError(
                f"cannot move clock backwards: now={self._now}, target={timestamp}"
            )
        self._now = float(timestamp)
        return self._now

    def reset(self, start: float = 0.0) -> None:
        """Reset the clock to ``start`` (used between experiment repetitions)."""
        check_non_negative(start, "start")
        self._now = float(start)

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.3f}s)"
