"""Cost-model primitives: work → simulated seconds.

Three calibration constants underpin every timing number in the
reproduction; all three are documented substitutions for quantities the
paper measured on its physical testbed (dual Xeon + 4× GTX 1080 Ti with
simulated CPU/bandwidth shares):

* ``BASELINE_FLOPS_PER_SECOND`` — effective training throughput of a
  resource share of 1.0, set to the order of magnitude of a mobile/edge-class
  CPU (the resource-constrained devices motivating the paper).  Together with
  the link profiles this keeps computation the dominant cost of a round, as
  in the paper's measurements, while remaining within roughly an order of
  magnitude of the paper's absolute table entries.
* ``CPU_SCALING_EXPONENT`` — throughput scales as ``share ** exponent``;
  the default of 1.0 is the paper's nominal linear CPU-share model.  The
  exponent is exposed because real containers scale sub-linearly, and the
  ablation benchmarks sweep it.
* **Transfer**: moving ``b`` bytes over a link of ``c`` bytes/second costs
  ``latency + b / c`` seconds.

The models are deliberately simple — the scheduler only relies on costs
being monotone in work and in (inverse) capacity, which they preserve.
"""

from __future__ import annotations

from repro.utils.validation import check_non_negative, check_positive

#: Flop-equivalents per second delivered by a resource share of 1.0.
BASELINE_FLOPS_PER_SECOND = 1.0e10

#: Scaling of throughput with the CPU share (1.0 = linear, the paper's model).
CPU_SCALING_EXPONENT = 1.0

#: Fixed per-message latency in seconds added to every transfer.
DEFAULT_LINK_LATENCY_SECONDS = 0.005


def cpu_share_to_throughput(
    cpu_share: float,
    baseline_flops_per_second: float = BASELINE_FLOPS_PER_SECOND,
    scaling_exponent: float = CPU_SCALING_EXPONENT,
) -> float:
    """Flop-equivalents per second delivered by an agent with the given CPU share."""
    check_positive(cpu_share, "cpu_share")
    check_positive(baseline_flops_per_second, "baseline_flops_per_second")
    check_positive(scaling_exponent, "scaling_exponent")
    return baseline_flops_per_second * cpu_share**scaling_exponent


def compute_time_seconds(
    flops: float,
    cpu_share: float,
    baseline_flops_per_second: float = BASELINE_FLOPS_PER_SECOND,
    scaling_exponent: float = CPU_SCALING_EXPONENT,
) -> float:
    """Time to execute ``flops`` flop-equivalents on a given CPU share."""
    check_non_negative(flops, "flops")
    throughput = cpu_share_to_throughput(
        cpu_share, baseline_flops_per_second, scaling_exponent
    )
    return flops / throughput


def transfer_time_seconds(
    num_bytes: float,
    bandwidth_bytes_per_second: float,
    latency_seconds: float = DEFAULT_LINK_LATENCY_SECONDS,
) -> float:
    """Time to move ``num_bytes`` over a link.

    Raises
    ------
    ValueError
        If the bandwidth is zero or negative — zero-bandwidth (disconnected)
        links must be filtered out by the caller, mirroring the paper's
        treatment of the 0 Mbps profile as "no link".
    """
    check_non_negative(num_bytes, "num_bytes")
    check_non_negative(latency_seconds, "latency_seconds")
    if bandwidth_bytes_per_second <= 0:
        raise ValueError(
            "cannot transfer over a disconnected link "
            f"(bandwidth={bandwidth_bytes_per_second} B/s)"
        )
    if num_bytes == 0:
        return 0.0
    return latency_seconds + num_bytes / bandwidth_bytes_per_second
