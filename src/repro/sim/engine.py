"""Discrete-event simulation engine.

The engine couples a :class:`~repro.sim.clock.SimClock` with an
:class:`~repro.sim.events.EventQueue`.  It is the execution substrate of
the :class:`~repro.runtime.TrainingRuntime`: every training run — ComDML
and all baselines alike — advances its clock by scheduling round and
work-unit events here.  ``sync`` mode
(``ComDMLConfig.execution_mode = "sync"``) schedules one round-closing
event per round; ``semi-sync`` and ``async`` modes schedule per-pair
completion, quorum, and gossip-aggregation events; and a
:class:`~repro.runtime.dynamics.DynamicsSchedule` registers timestamped
arrival/departure/churn events directly on the engine at construction
time, which is what lets them land *mid-round* while work is in flight.

Two driving styles coexist: :meth:`SimulationEngine.run_until` processes
everything up to a known horizon (the closed-form round paths), while
:meth:`SimulationEngine.step` advances one event at a time until a caller's
closure condition fires (the dynamics-aware paths, where a round's end is
not known upfront because churn can re-cost in-flight work).  Both rely on
the queue's total event order for bit-for-bit deterministic runs.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.clock import SimClock
from repro.sim.events import Event, EventQueue
from repro.utils.logging import get_logger

logger = get_logger("sim.engine")


class SimulationEngine:
    """Runs events in timestamp order on a virtual clock."""

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.queue = EventQueue()
        self._handlers: dict[str, list[Callable[[Event], None]]] = {}
        self._observers: list[Callable[[Event], None]] = []
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock.now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule_at(
        self,
        timestamp: float,
        kind: str = "generic",
        payload: Any = None,
        priority: int = 0,
        callback: Optional[Callable[[Event], None]] = None,
    ) -> Event:
        """Schedule an event at an absolute simulated time."""
        if timestamp < self.clock.now:
            raise ValueError(
                f"cannot schedule in the past: now={self.clock.now}, at={timestamp}"
            )
        return self.queue.schedule(timestamp, kind, payload, priority, callback)

    def schedule_after(
        self,
        delay: float,
        kind: str = "generic",
        payload: Any = None,
        priority: int = 0,
        callback: Optional[Callable[[Event], None]] = None,
    ) -> Event:
        """Schedule an event ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(
            self.clock.now + delay, kind, payload, priority, callback
        )

    def on(self, kind: str, handler: Callable[[Event], None]) -> None:
        """Register a handler for all events of the given kind."""
        self._handlers.setdefault(kind, []).append(handler)

    def subscribe(self, observer: Callable[[Event], None]) -> None:
        """Register an observer called for *every* processed event.

        Observers run after the event's own callback and kind handlers —
        they watch the stream (e.g. the trace pipeline's opt-in
        ``engine_event`` debug feed) and must not schedule into the past.
        """
        self._observers.append(observer)

    def step(self) -> Optional[Event]:
        """Process the next event (advancing the clock); ``None`` if empty."""
        if not self.queue:
            return None
        event = self.queue.pop()
        self.clock.advance_to(event.timestamp)
        if event.callback is not None:
            event.callback(event)
        for handler in self._handlers.get(event.kind, []):
            handler(event)
        for observer in self._observers:
            observer(event)
        self._processed += 1
        return event

    def run_until(self, timestamp: float) -> int:
        """Process all events with ``event.timestamp <= timestamp``.

        Returns the number of events processed.  The clock ends at
        ``timestamp`` even if the last event fired earlier.
        """
        count = 0
        while self.queue and self.queue.peek().timestamp <= timestamp:
            self.step()
            count += 1
        if timestamp > self.clock.now:
            self.clock.advance_to(timestamp)
        return count

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the queue (optionally bounded); returns events processed."""
        count = 0
        while self.queue:
            if max_events is not None and count >= max_events:
                break
            self.step()
            count += 1
        return count
