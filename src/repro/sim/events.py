"""Event primitives for the discrete-event engine.

Events are ordered by ``(timestamp, priority, sequence)``.  The sequence
number is a monotonically increasing tiebreaker assigned by the queue so
that events scheduled at the same instant fire in insertion order — this
keeps runs deterministic regardless of payload contents.

The runtime leans on that total order in two ways worth knowing about:

* *Priorities* separate same-instant round machinery — unit completions
  fire before a ``quorum_deadline`` (priority 1) before a ``round_end``
  (priority 2), so a unit finishing exactly at the deadline still makes
  the quorum.
* *Stale events are never cancelled.*  When mid-round churn re-costs an
  in-flight unit or a departure abandons one
  (see :mod:`repro.runtime.dynamics`), the superseded completion event
  stays queued under its old version stamp and is recognised and ignored
  when it eventually fires — the queue needs no removal operation.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled simulation event.

    Attributes
    ----------
    timestamp:
        Simulated time (seconds) at which the event fires.
    priority:
        Secondary ordering key; lower fires first at equal timestamps.
    sequence:
        Insertion-order tiebreaker, assigned by :class:`EventQueue`.
    kind:
        Free-form event type string (e.g. ``"round_end"``,
        ``"profile_churn"``); excluded from ordering.
    payload:
        Arbitrary data attached to the event; excluded from ordering.
    callback:
        Optional callable invoked by the engine when the event fires.
    """

    timestamp: float
    priority: int = 0
    sequence: int = 0
    kind: str = field(default="generic", compare=False)
    payload: Any = field(default=None, compare=False)
    callback: Optional[Callable[["Event"], None]] = field(default=None, compare=False)


class EventQueue:
    """Min-heap of :class:`Event` ordered by time, priority, insertion order."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, event: Event) -> Event:
        """Insert an event, stamping its sequence number; returns the event."""
        event.sequence = next(self._counter)
        heapq.heappush(self._heap, event)
        return event

    def schedule(
        self,
        timestamp: float,
        kind: str = "generic",
        payload: Any = None,
        priority: int = 0,
        callback: Optional[Callable[[Event], None]] = None,
    ) -> Event:
        """Convenience constructor + push."""
        event = Event(
            timestamp=timestamp,
            priority=priority,
            kind=kind,
            payload=payload,
            callback=callback,
        )
        return self.push(event)

    def pop(self) -> Event:
        """Remove and return the earliest event.

        Raises
        ------
        IndexError
            If the queue is empty.
        """
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        return heapq.heappop(self._heap)

    def peek(self) -> Event:
        """Return (without removing) the earliest event."""
        if not self._heap:
            raise IndexError("peek on empty EventQueue")
        return self._heap[0]

    def clear(self) -> None:
        """Drop all pending events."""
        self._heap.clear()
