"""Training plane: local trainers, local-loss split training, metrics, curves."""

from repro.training.trainer import LocalTrainer, evaluate_accuracy
from repro.training.local_loss import LocalLossSplitTrainer, SplitTrainingResult
from repro.training.metrics import RoundRecord, RunHistory
from repro.training.curves import LearningCurveModel, CurvePreset, curve_preset_for

__all__ = [
    "LocalTrainer",
    "evaluate_accuracy",
    "LocalLossSplitTrainer",
    "SplitTrainingResult",
    "RoundRecord",
    "RunHistory",
    "LearningCurveModel",
    "CurvePreset",
    "curve_preset_for",
]
