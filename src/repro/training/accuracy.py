"""Accuracy trackers: the learning plane behind each timing-plane round.

Two interchangeable implementations of the same small interface
(:class:`AccuracyTracker`):

* :class:`CurveAccuracyTracker` — drives a calibrated
  :class:`~repro.training.curves.LearningCurveModel`; used by the large
  (10-100 agent, ResNet-56/110) table reproductions where real training is
  computationally impossible in this environment.
* :class:`ProxyAccuracyTracker` — genuinely trains numpy proxy models with
  local-loss split training and weighted AllReduce averaging; used by the
  examples, the integration tests, and any small-scale run.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol, Sequence

import numpy as np

from repro.core.pairing import PairingDecision
from repro.data.dataset import Dataset
from repro.models.proxy import ProxyModelFactory
from repro.models.split import split_sequential
from repro.network.allreduce import allreduce_average
from repro.nn.module import Sequential
from repro.nn.serialization import get_flat_parameters, set_flat_parameters
from repro.training.curves import LearningCurveModel
from repro.training.local_loss import LocalLossSplitTrainer
from repro.training.trainer import LocalTrainer, evaluate_accuracy


class AccuracyTracker(Protocol):
    """Produces the post-aggregation accuracy after each round."""

    def after_round(
        self,
        decisions: Sequence[PairingDecision],
        participation_fraction: float,
        learning_rate: float,
    ) -> float:
        """Advance the learning plane by one round and return the accuracy."""
        ...


class CurveAccuracyTracker:
    """Accuracy from a calibrated learning-curve model."""

    def __init__(self, curve: LearningCurveModel) -> None:
        self.curve = curve

    def after_round(
        self,
        decisions: Sequence[PairingDecision],
        participation_fraction: float,
        learning_rate: float,
    ) -> float:
        return self.curve.advance_round(participation_fraction)


class ProxyAccuracyTracker:
    """Accuracy from real numpy training of a shared proxy model.

    Per round, every pairing decision produces one or two model updates:

    * the slow agent's dataset trained through local-loss split training
      (prefix on the slow agent, suffix on the fast agent), and
    * the fast agent's own dataset trained end-to-end (its own task),

    or a single end-to-end update for solo agents.  Updates are combined by
    a dataset-size-weighted average (the numerical effect of AllReduce on
    Eq. 1's objective), optionally after a privacy transform of the
    parameters (e.g. differential-privacy noise).
    """

    def __init__(
        self,
        factory: ProxyModelFactory,
        agent_datasets: dict[int, Dataset],
        test_dataset: Dataset,
        batch_size: int = 100,
        local_epochs: int = 1,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        seed: int = 0,
        activation_transform: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        parameter_transform: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> None:
        self.factory = factory
        self.agent_datasets = agent_datasets
        self.test_dataset = test_dataset
        self.activation_transform = activation_transform
        self.parameter_transform = parameter_transform
        self._rng = np.random.default_rng(seed)
        self._init_rng = np.random.default_rng(seed + 1)
        self.global_model: Sequential = factory.build(self._init_rng)
        self.global_parameters = get_flat_parameters(self.global_model)
        self.local_trainer = LocalTrainer(
            batch_size=batch_size,
            local_epochs=local_epochs,
            momentum=momentum,
            weight_decay=weight_decay,
            rng=np.random.default_rng(seed + 2),
        )
        self.split_trainer = LocalLossSplitTrainer(
            batch_size=batch_size,
            local_epochs=local_epochs,
            momentum=momentum,
            weight_decay=weight_decay,
            rng=np.random.default_rng(seed + 3),
            activation_transform=activation_transform,
        )

    # ------------------------------------------------------------------
    def _clone_global(self) -> Sequential:
        """A fresh backbone initialised with the current global parameters."""
        backbone = self.factory.build(self._init_rng)
        set_flat_parameters(backbone, self.global_parameters)
        return backbone

    def current_accuracy(self) -> float:
        """Accuracy of the current global model on the test set."""
        model = self._clone_global()
        return evaluate_accuracy(model, self.test_dataset)

    def after_round(
        self,
        decisions: Sequence[PairingDecision],
        participation_fraction: float,
        learning_rate: float,
    ) -> float:
        updates: list[np.ndarray] = []
        weights: list[float] = []

        for decision in decisions:
            slow_dataset = self.agent_datasets.get(decision.slow_id)
            if slow_dataset is None or len(slow_dataset) == 0:
                continue
            if decision.is_offloading:
                backbone = self._clone_global()
                split = self.factory.build_split(
                    decision.offloaded_layers,
                    rng=self._init_rng,
                    backbone=backbone,
                )
                self.split_trainer.train(split, slow_dataset, learning_rate)
                updates.append(get_flat_parameters(backbone))
                weights.append(float(len(slow_dataset)))

                fast_dataset = self.agent_datasets.get(decision.fast_id)
                if fast_dataset is not None and len(fast_dataset) > 0:
                    fast_backbone = self._clone_global()
                    self.local_trainer.train(fast_backbone, fast_dataset, learning_rate)
                    updates.append(get_flat_parameters(fast_backbone))
                    weights.append(float(len(fast_dataset)))
            else:
                backbone = self._clone_global()
                self.local_trainer.train(backbone, slow_dataset, learning_rate)
                updates.append(get_flat_parameters(backbone))
                weights.append(float(len(slow_dataset)))

        if not updates:
            return self.current_accuracy()

        if self.parameter_transform is not None:
            # Privacy mechanisms (e.g. differential privacy) are applied to the
            # *update* an agent contributes, the standard DP-FL formulation:
            # clip/perturb (w_local - w_global), then re-anchor at the global
            # model before averaging.
            updates = [
                self.global_parameters
                + self.parameter_transform(update - self.global_parameters)
                for update in updates
            ]

        self.global_parameters = allreduce_average(updates, weights)
        set_flat_parameters(self.global_model, self.global_parameters)
        return evaluate_accuracy(self.global_model, self.test_dataset)
