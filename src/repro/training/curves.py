"""Calibrated learning-curve model.

The Table II / Table III / Figure 3 experiments involve 10-100 agents
training ResNet-56/110 for hundreds of rounds.  Training such models for
real is impossible in this environment (see DESIGN.md), so the *accuracy*
progression for those large sweeps comes from a calibrated learning-curve
model, while the *timing* comes from the exact cost model.  Small-scale runs
(the examples and several tests) instead train the numpy proxy model for
real; the curve model's qualitative behaviour (saturating exponential whose
rate scales with the fraction of data actually contributing each round) is
validated against those real runs.

The curve is a saturating exponential in *effective progress*:

    acc(P) = acc_final - (acc_final - acc_initial) * exp(-rate * P)

where each round contributes ``participation × statistical_efficiency`` to
``P``.  Statistical efficiency captures that methods which average over all
agents every round (FedAvg, AllReduce, ComDML) make more progress per round
than purely local exchanges (gossip averages only one neighbour per round),
and that local-loss split training gives up a small amount of per-round
progress relative to end-to-end backpropagation — consistent with the
findings of the local-loss literature the paper builds on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive, check_probability

#: Per-round statistical efficiency of each aggregation style, relative to
#: synchronous full averaging with end-to-end backpropagation.
METHOD_EFFICIENCY = {
    "comdml": 0.95,        # local-loss split training: slightly lower per-round gain
    "fedavg": 1.00,
    "fedprox": 0.97,
    "allreduce": 1.00,
    "braintorrent": 0.98,  # sequential aggregator rotation
    "gossip": 0.62,        # neighbour-only averaging mixes information slowly
}


@dataclass(frozen=True)
class CurvePreset:
    """Calibration of one (dataset, model, distribution) combination.

    Attributes
    ----------
    accuracy_initial:
        Accuracy of the untrained model (chance level).
    accuracy_final:
        Asymptotic accuracy of the trained model.
    rate:
        Exponential rate per unit of effective progress; larger is faster.
    noniid_final_penalty:
        Absolute drop of the asymptote under Dirichlet(0.5) label skew.
    noniid_rate_factor:
        Multiplicative slowdown of the rate under label skew.
    """

    accuracy_initial: float
    accuracy_final: float
    rate: float
    noniid_final_penalty: float = 0.05
    noniid_rate_factor: float = 0.75

    def __post_init__(self) -> None:
        check_probability(self.accuracy_initial, "accuracy_initial")
        check_probability(self.accuracy_final, "accuracy_final")
        if self.accuracy_final <= self.accuracy_initial:
            raise ValueError("accuracy_final must exceed accuracy_initial")
        check_positive(self.rate, "rate")


#: Presets keyed by (dataset, model).  The asymptotes follow the published
#: accuracies of ResNet-56/110 on these datasets; the rates are set so the
#: paper's target accuracies are reached after a plausible number of rounds
#: (roughly 150-300 full-participation rounds).
_CURVE_PRESETS: dict[tuple[str, str], CurvePreset] = {
    ("cifar10", "resnet56"): CurvePreset(0.10, 0.935, 0.022, 0.030, 0.95),
    ("cifar10", "resnet110"): CurvePreset(0.10, 0.940, 0.020, 0.030, 0.95),
    ("cifar100", "resnet56"): CurvePreset(0.01, 0.710, 0.016, 0.060, 0.70),
    ("cifar100", "resnet110"): CurvePreset(0.01, 0.725, 0.015, 0.060, 0.70),
    ("cinic10", "resnet56"): CurvePreset(0.10, 0.840, 0.014, 0.090, 0.70),
    ("cinic10", "resnet110"): CurvePreset(0.10, 0.850, 0.013, 0.090, 0.70),
}


def curve_preset_for(dataset: str, model: str) -> CurvePreset:
    """Look up the calibration preset for a dataset/model combination."""
    dataset_key = dataset.lower().replace("-like", "").replace("-", "").replace("_", "")
    model_key = model.lower().replace("-", "").replace("_", "")
    key = (dataset_key, model_key)
    if key not in _CURVE_PRESETS:
        raise KeyError(
            f"no curve preset for dataset={dataset!r}, model={model!r}; "
            f"available: {sorted(_CURVE_PRESETS)}"
        )
    return _CURVE_PRESETS[key]


class LearningCurveModel:
    """Stateful accuracy tracker driven by per-round effective progress."""

    def __init__(
        self,
        preset: CurvePreset,
        method: str = "comdml",
        iid: bool = True,
        rng: np.random.Generator | None = None,
        noise_scale: float = 0.002,
    ) -> None:
        method_key = method.lower()
        if method_key not in METHOD_EFFICIENCY:
            raise ValueError(
                f"unknown method {method!r}; expected one of {sorted(METHOD_EFFICIENCY)}"
            )
        self.preset = preset
        self.method = method_key
        self.iid = bool(iid)
        self.noise_scale = noise_scale
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._progress = 0.0

    @property
    def accuracy_final(self) -> float:
        """Asymptotic accuracy for this configuration."""
        if self.iid:
            return self.preset.accuracy_final
        return self.preset.accuracy_final - self.preset.noniid_final_penalty

    @property
    def rate(self) -> float:
        """Effective exponential rate for this configuration."""
        base = self.preset.rate
        if not self.iid:
            base *= self.preset.noniid_rate_factor
        return base

    @property
    def progress(self) -> float:
        """Accumulated effective progress."""
        return self._progress

    def current_accuracy(self) -> float:
        """Accuracy implied by the accumulated progress (noise-free)."""
        final = self.accuracy_final
        initial = self.preset.accuracy_initial
        return final - (final - initial) * np.exp(-self.rate * self._progress)

    def advance_round(
        self,
        participation_fraction: float = 1.0,
        efficiency_override: float | None = None,
    ) -> float:
        """Account for one global round and return the new accuracy.

        ``participation_fraction`` is the fraction of agents (weighted by
        data) whose updates entered the aggregation this round.
        """
        check_probability(participation_fraction, "participation_fraction")
        efficiency = (
            efficiency_override
            if efficiency_override is not None
            else METHOD_EFFICIENCY[self.method]
        )
        self._progress += participation_fraction * efficiency
        accuracy = self.current_accuracy()
        if self.noise_scale > 0:
            accuracy += float(self._rng.normal(0.0, self.noise_scale))
        return float(np.clip(accuracy, 0.0, 1.0))

    def rounds_to_accuracy(
        self, target: float, participation_fraction: float = 1.0
    ) -> int:
        """Rounds needed to reach ``target`` (noise-free closed form).

        Raises
        ------
        ValueError
            If the target exceeds the asymptotic accuracy for this
            configuration.
        """
        check_probability(target, "target")
        final = self.accuracy_final
        initial = self.preset.accuracy_initial
        if target >= final:
            raise ValueError(
                f"target accuracy {target} is unreachable (asymptote {final:.3f})"
            )
        if target <= initial:
            return 0
        needed_progress = -np.log((final - target) / (final - initial)) / self.rate
        per_round = participation_fraction * METHOD_EFFICIENCY[self.method]
        return int(np.ceil(needed_progress / per_round))
