"""Local-loss-based split training (Section III-B of the paper).

The paired agents train in parallel without waiting for each other's
gradients:

1. the **slow agent** runs its prefix (slow side) of the model, computes a
   *local* loss through the auxiliary head, and updates prefix + auxiliary
   parameters with that loss only;
2. the boundary activations (detached — no gradient flows back across the
   split) are shipped to the **fast agent**, which runs the suffix, computes
   the task loss against the true labels, and updates the suffix parameters.

This removes the per-batch synchronisation of classical split learning: the
slow agent never waits for backpropagated gradients from the fast agent,
which is the property that lets ComDML overlap the two agents' work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.data.dataset import Dataset
from repro.data.loader import BatchLoader
from repro.models.split import SplitModel
from repro.nn.losses import CrossEntropyLoss
from repro.nn.optim import SGD
from repro.utils.validation import check_positive


@dataclass
class SplitTrainingResult:
    """Losses observed during one round of split training.

    Attributes
    ----------
    slow_loss:
        Mean auxiliary-head (local) loss on the slow side.
    fast_loss:
        Mean task loss on the fast side (0.0 when nothing was offloaded).
    batches:
        Number of mini-batches processed.
    intermediate_scalars:
        Total number of activation scalars that crossed the split (what the
        timing plane charges as ν_m traffic).
    """

    slow_loss: float = 0.0
    fast_loss: float = 0.0
    batches: int = 0
    intermediate_scalars: int = 0


class LocalLossSplitTrainer:
    """Trains a :class:`~repro.models.split.SplitModel` on one agent's shard."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        batch_size: int = 100,
        local_epochs: int = 1,
        rng: Optional[np.random.Generator] = None,
        activation_transform=None,
    ) -> None:
        check_positive(batch_size, "batch_size")
        check_positive(local_epochs, "local_epochs")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.batch_size = int(batch_size)
        self.local_epochs = int(local_epochs)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        #: Optional privacy transform applied to the boundary activation
        #: before it is "sent" to the fast agent (e.g. patch shuffling or a
        #: distance-correlation defense).
        self.activation_transform = activation_transform

    def train(
        self,
        split_model: SplitModel,
        dataset: Dataset,
        learning_rate: Optional[float] = None,
    ) -> SplitTrainingResult:
        """Run one round of local-loss split training in place."""
        if len(dataset) == 0:
            return SplitTrainingResult()
        learning_rate = learning_rate if learning_rate is not None else self.learning_rate

        if not split_model.is_split:
            # Degenerate case: nothing offloaded — plain local training of the
            # slow side (which then is the full model).
            return self._train_unsplit(split_model, dataset, learning_rate)

        slow_loss_fn = CrossEntropyLoss()
        fast_loss_fn = CrossEntropyLoss()
        slow_optimizer = SGD(
            split_model.slow_parameters(),
            learning_rate=learning_rate,
            momentum=self.momentum,
            weight_decay=self.weight_decay,
        )
        fast_optimizer = SGD(
            split_model.fast_parameters(),
            learning_rate=learning_rate,
            momentum=self.momentum,
            weight_decay=self.weight_decay,
        )
        loader = BatchLoader(
            dataset, batch_size=self.batch_size, shuffle=True, rng=self._rng
        )

        slow_losses: list[float] = []
        fast_losses: list[float] = []
        batches = 0
        intermediate_scalars = 0
        for _ in range(self.local_epochs):
            for features, labels in loader:
                # --- slow agent: prefix + auxiliary head, local loss only ---
                slow_optimizer.zero_grad()
                boundary = split_model.forward_slow(features)
                aux_logits = split_model.forward_auxiliary(boundary)
                slow_loss = slow_loss_fn.forward(aux_logits, labels)
                grad_aux = slow_loss_fn.backward()
                grad_boundary = split_model.auxiliary.backward(grad_aux)
                split_model.slow_side.backward(grad_boundary)
                slow_optimizer.step()

                # --- boundary activation crosses the network (detached) ---
                shipped = boundary.copy()
                if self.activation_transform is not None:
                    shipped = self.activation_transform(shipped)
                intermediate_scalars += int(shipped.size)

                # --- fast agent: suffix on received activations, task loss ---
                fast_optimizer.zero_grad()
                logits = split_model.forward_fast(shipped)
                fast_loss = fast_loss_fn.forward(logits, labels)
                grad_logits = fast_loss_fn.backward()
                split_model.fast_side.backward(grad_logits)
                fast_optimizer.step()

                slow_losses.append(slow_loss)
                fast_losses.append(fast_loss)
                batches += 1

        return SplitTrainingResult(
            slow_loss=float(np.mean(slow_losses)),
            fast_loss=float(np.mean(fast_losses)),
            batches=batches,
            intermediate_scalars=intermediate_scalars,
        )

    def _train_unsplit(
        self,
        split_model: SplitModel,
        dataset: Dataset,
        learning_rate: float,
    ) -> SplitTrainingResult:
        """Full-model training when ``offloaded_layers == 0``."""
        loss_fn = CrossEntropyLoss()
        optimizer = SGD(
            split_model.slow_side.parameters(),
            learning_rate=learning_rate,
            momentum=self.momentum,
            weight_decay=self.weight_decay,
        )
        loader = BatchLoader(
            dataset, batch_size=self.batch_size, shuffle=True, rng=self._rng
        )
        losses: list[float] = []
        batches = 0
        for _ in range(self.local_epochs):
            for features, labels in loader:
                optimizer.zero_grad()
                logits = split_model.slow_side.forward(features)
                loss = loss_fn.forward(logits, labels)
                grad_logits = loss_fn.backward()
                split_model.slow_side.backward(grad_logits)
                optimizer.step()
                losses.append(loss)
                batches += 1
        return SplitTrainingResult(
            slow_loss=float(np.mean(losses)) if losses else 0.0,
            fast_loss=0.0,
            batches=batches,
            intermediate_scalars=0,
        )
