"""Round-level metrics and run histories.

Every training method (ComDML and baselines) produces a :class:`RunHistory`:
an ordered list of :class:`RoundRecord` with the simulated round duration,
cumulative time, and model accuracy.  ``time_to_accuracy`` is the primary
quantity reported in the paper's Tables II/III and Figure 3.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class RoundRecord:
    """Outcome of one global training round.

    Attributes
    ----------
    round_index:
        Zero-based round number.
    duration_seconds:
        Simulated duration of this round (compute + communication +
        aggregation).
    cumulative_seconds:
        Simulated time elapsed since the start of training, inclusive.
    accuracy:
        Global-model test accuracy after aggregation.
    compute_seconds / communication_seconds / aggregation_seconds:
        Breakdown of the round duration (useful for the Table I style
        decomposition).
    num_pairs:
        Number of offloading pairs formed in this round (0 for baselines).
    """

    round_index: int
    duration_seconds: float
    cumulative_seconds: float
    accuracy: float
    compute_seconds: float = 0.0
    communication_seconds: float = 0.0
    aggregation_seconds: float = 0.0
    num_pairs: int = 0


@dataclass
class RunHistory:
    """Accumulated per-round records for one training run."""

    method: str
    records: list[RoundRecord] = field(default_factory=list)

    def append(self, record: RoundRecord) -> None:
        """Add a round record (rounds must be appended in order)."""
        if self.records and record.round_index <= self.records[-1].round_index:
            raise ValueError(
                "round records must be appended in strictly increasing order"
            )
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def total_time(self) -> float:
        """Total simulated training time so far."""
        return self.records[-1].cumulative_seconds if self.records else 0.0

    @property
    def final_accuracy(self) -> float:
        """Accuracy after the last recorded round."""
        return self.records[-1].accuracy if self.records else 0.0

    @property
    def best_accuracy(self) -> float:
        """Best accuracy seen over the run."""
        return max((r.accuracy for r in self.records), default=0.0)

    def accuracies(self) -> list[float]:
        """Accuracy after each round."""
        return [record.accuracy for record in self.records]

    def times(self) -> list[float]:
        """Cumulative simulated time after each round."""
        return [record.cumulative_seconds for record in self.records]

    def time_to_accuracy(self, target: float) -> Optional[float]:
        """Simulated seconds needed to first reach ``target`` accuracy.

        Returns ``None`` if the target was never reached during the run.
        """
        for record in self.records:
            if record.accuracy >= target:
                return record.cumulative_seconds
        return None

    def rounds_to_accuracy(self, target: float) -> Optional[int]:
        """Number of rounds needed to first reach ``target`` accuracy."""
        for record in self.records:
            if record.accuracy >= target:
                return record.round_index + 1
        return None

    def digest(self) -> str:
        """Content hash of the full run (method + every round record).

        Two runs with bit-identical histories produce the same digest, so
        equality of runs can be asserted (and cached) without shipping the
        records themselves — e.g. the campaign determinism property that
        ``--jobs 1`` and ``--jobs 4`` executions are indistinguishable.
        """
        canonical = json.dumps(
            {
                "method": self.method,
                "records": [record.__dict__ for record in self.records],
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def audit_record(self) -> dict:
        """Hash-chained audit record of the run (tamper-localising digest).

        Where :meth:`digest` is one flat hash over everything, the audit
        record folds each round through a SHA-256 chain, so verification
        (:func:`repro.runtime.audit.verify_history_record`) pinpoints the
        exact first divergent round of a tampered copy.
        """
        from repro.runtime.audit import history_audit_record

        return history_audit_record(self)

    def summary(self) -> dict:
        """Compact dictionary summary for reports."""
        return {
            "method": self.method,
            "rounds": len(self.records),
            "total_time_seconds": self.total_time,
            "final_accuracy": self.final_accuracy,
            "best_accuracy": self.best_accuracy,
        }
