"""Standard (non-split) local training.

Used by every baseline and by the fast agent's own task in ComDML: the agent
trains the full model on its local shard for ``local_epochs`` epochs with
SGD + momentum.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.dataset import Dataset
from repro.data.loader import BatchLoader
from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import Module, Sequential
from repro.nn.optim import SGD
from repro.utils.validation import check_positive


def evaluate_accuracy(model: Module, dataset: Dataset, batch_size: int = 256) -> float:
    """Top-1 accuracy of ``model`` on ``dataset``."""
    if len(dataset) == 0:
        return 0.0
    model.eval()
    correct = 0
    loader = BatchLoader(dataset, batch_size=batch_size, shuffle=False)
    for features, labels in loader:
        logits = model.forward(features)
        predictions = np.argmax(logits, axis=1)
        correct += int((predictions == labels).sum())
    model.train()
    return correct / len(dataset)


class LocalTrainer:
    """Full-model local SGD training on one agent's shard."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        batch_size: int = 100,
        local_epochs: int = 1,
        proximal_mu: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        check_positive(batch_size, "batch_size")
        check_positive(local_epochs, "local_epochs")
        if proximal_mu < 0:
            raise ValueError(f"proximal_mu must be non-negative, got {proximal_mu}")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.batch_size = int(batch_size)
        self.local_epochs = int(local_epochs)
        self.proximal_mu = proximal_mu
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def train(
        self,
        model: Sequential,
        dataset: Dataset,
        learning_rate: Optional[float] = None,
        global_reference: Optional[np.ndarray] = None,
    ) -> float:
        """Run local training in place; returns the mean training loss.

        ``global_reference`` (a flat parameter vector) activates the FedProx
        proximal term ``(mu/2) ||w - w_global||^2``, applied as an extra
        gradient on every step.
        """
        if len(dataset) == 0:
            return 0.0
        learning_rate = learning_rate if learning_rate is not None else self.learning_rate
        loss_fn = CrossEntropyLoss()
        optimizer = SGD(
            model.parameters(),
            learning_rate=learning_rate,
            momentum=self.momentum,
            weight_decay=self.weight_decay,
        )
        loader = BatchLoader(
            dataset, batch_size=self.batch_size, shuffle=True, rng=self._rng
        )
        model.train()
        losses: list[float] = []
        reference_offsets: Optional[list[tuple[int, int]]] = None
        if global_reference is not None and self.proximal_mu > 0:
            reference_offsets = []
            offset = 0
            for parameter in model.parameters():
                reference_offsets.append((offset, offset + parameter.size))
                offset += parameter.size
        for _ in range(self.local_epochs):
            for features, labels in loader:
                optimizer.zero_grad()
                logits = model.forward(features)
                loss = loss_fn.forward(logits, labels)
                grad_logits = loss_fn.backward()
                model.backward(grad_logits)
                if reference_offsets is not None:
                    for parameter, (start, stop) in zip(
                        model.parameters(), reference_offsets
                    ):
                        reference = global_reference[start:stop].reshape(parameter.shape)
                        parameter.grad += self.proximal_mu * (parameter.value - reference)
                optimizer.step()
                losses.append(loss)
        return float(np.mean(losses)) if losses else 0.0
