"""Shared utilities: units, seeding, logging and validation helpers."""

from repro.utils.units import (
    BYTES_PER_MB,
    bits_to_bytes,
    bytes_to_megabytes,
    mbps_to_bytes_per_second,
    megabytes_to_bytes,
    seconds_to_human,
)
from repro.utils.seeding import SeedSequenceFactory, seeded_rng
from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_probability,
    check_in_range,
)

__all__ = [
    "BYTES_PER_MB",
    "bits_to_bytes",
    "bytes_to_megabytes",
    "mbps_to_bytes_per_second",
    "megabytes_to_bytes",
    "seconds_to_human",
    "SeedSequenceFactory",
    "seeded_rng",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in_range",
]
