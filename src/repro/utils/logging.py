"""Logging helpers.

The library uses the standard :mod:`logging` module.  ``get_logger`` returns
a namespaced logger; ``configure_logging`` installs a simple console handler
suitable for the example scripts and benchmarks.
"""

from __future__ import annotations

import logging

_ROOT_NAME = "repro"


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro`` namespace."""
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def configure_logging(level: int = logging.INFO) -> None:
    """Attach a console handler to the ``repro`` root logger (idempotent)."""
    root = logging.getLogger(_ROOT_NAME)
    root.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in root.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        root.addHandler(handler)
