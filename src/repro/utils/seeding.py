"""Deterministic random-number management.

Every stochastic component in the library (data synthesis, Dirichlet
partitioning, agent profile assignment, dynamic churn, gossip peer
selection, ...) draws from a ``numpy.random.Generator`` owned by that
component.  The :class:`SeedSequenceFactory` hands out independent child
generators derived from a single experiment seed, so that

* the same experiment seed always reproduces the same run, and
* adding a new consumer of randomness does not perturb existing streams
  (each consumer is keyed by a stable string label).
"""

from __future__ import annotations

import hashlib

import numpy as np


def seeded_rng(seed: int | None) -> np.random.Generator:
    """Create a generator from an integer seed (``None`` → non-deterministic)."""
    return np.random.default_rng(seed)


def _stable_hash(label: str) -> int:
    """Map a string label to a stable 64-bit integer (independent of PYTHONHASHSEED)."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class SeedSequenceFactory:
    """Factory of named, independent random generators.

    Parameters
    ----------
    seed:
        Root experiment seed.  Two factories built from the same seed hand
        out identical streams for identical labels.
    """

    def __init__(self, seed: int) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        """Root seed this factory was created with."""
        return self._seed

    def generator(self, label: str) -> np.random.Generator:
        """Return an independent generator for the given label."""
        if not label:
            raise ValueError("label must be a non-empty string")
        child_seed = np.random.SeedSequence([self._seed, _stable_hash(label)])
        return np.random.default_rng(child_seed)

    def spawn(self, label: str) -> "SeedSequenceFactory":
        """Derive a child factory (e.g. one per agent) from a label."""
        return SeedSequenceFactory(self._seed ^ _stable_hash(label) & 0x7FFFFFFF)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeedSequenceFactory(seed={self._seed})"
