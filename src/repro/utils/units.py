"""Unit conversions used throughout the timing simulator.

The paper expresses link speed in Mbps (megabits per second) and model /
intermediate-activation sizes in bytes.  All timing code in this repository
works in *bytes* and *seconds*; these helpers keep the conversions in one
place so that factor-of-8 errors cannot creep in.
"""

from __future__ import annotations

BITS_PER_BYTE = 8
BYTES_PER_KB = 1024
BYTES_PER_MB = 1024 * 1024
BYTES_PER_GB = 1024 * 1024 * 1024


def bits_to_bytes(bits: float) -> float:
    """Convert a number of bits to bytes."""
    return bits / BITS_PER_BYTE


def mbps_to_bytes_per_second(mbps: float) -> float:
    """Convert a link speed in megabits per second to bytes per second.

    A value of ``0`` (the paper's "disconnected" profile) maps to ``0.0``;
    callers must treat zero-bandwidth links as unusable rather than dividing
    by the result.
    """
    if mbps < 0:
        raise ValueError(f"link speed must be non-negative, got {mbps}")
    return mbps * 1_000_000 / BITS_PER_BYTE


def bytes_per_second_to_mbps(bytes_per_second: float) -> float:
    """Inverse of :func:`mbps_to_bytes_per_second`."""
    if bytes_per_second < 0:
        raise ValueError(
            f"throughput must be non-negative, got {bytes_per_second}"
        )
    return bytes_per_second * BITS_PER_BYTE / 1_000_000


def megabytes_to_bytes(megabytes: float) -> float:
    """Convert mebibytes to bytes."""
    return megabytes * BYTES_PER_MB


def bytes_to_megabytes(num_bytes: float) -> float:
    """Convert bytes to mebibytes."""
    return num_bytes / BYTES_PER_MB


def seconds_to_human(seconds: float) -> str:
    """Render a duration as ``"1h 02m 03s"`` for logs and reports."""
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    total = int(round(seconds))
    hours, remainder = divmod(total, 3600)
    minutes, secs = divmod(remainder, 60)
    if hours:
        return f"{hours}h {minutes:02d}m {secs:02d}s"
    if minutes:
        return f"{minutes}m {secs:02d}s"
    return f"{secs}s"
