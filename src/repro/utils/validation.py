"""Small argument-validation helpers.

These raise ``ValueError`` with consistent messages; they exist so that the
public API fails loudly and early instead of producing NaN timings deep in
the simulator.
"""

from __future__ import annotations

from typing import Any


def check_positive(value: float, name: str) -> float:
    """Ensure ``value > 0`` and return it."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Ensure ``value >= 0`` and return it."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def check_probability(value: float, name: str) -> float:
    """Ensure ``0 <= value <= 1`` and return it."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return value


def check_in_range(value: float, low: float, high: float, name: str) -> float:
    """Ensure ``low <= value <= high`` and return it."""
    if not low <= value <= high:
        raise ValueError(f"{name} must lie in [{low}, {high}], got {value}")
    return value


def check_type(value: Any, expected: type | tuple[type, ...], name: str) -> Any:
    """Ensure ``value`` is an instance of ``expected`` and return it."""
    if not isinstance(value, expected):
        expected_name = (
            expected.__name__
            if isinstance(expected, type)
            else " or ".join(t.__name__ for t in expected)
        )
        raise TypeError(
            f"{name} must be {expected_name}, got {type(value).__name__}"
        )
    return value
