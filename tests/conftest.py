"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents.agent import Agent
from repro.agents.registry import AgentRegistry
from repro.agents.resources import ResourceProfile
from repro.core.profiling import profile_architecture
from repro.models.resnet import resnet56_spec
from repro.models.spec import ArchitectureSpec, LayerCost
from repro.network.link import LinkModel
from repro.network.topology import full_topology


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_spec() -> ArchitectureSpec:
    """A small 4-layer architecture for fast unit tests."""
    layers = (
        LayerCost("l1", forward_flops=1_000.0, parameter_count=100, output_elements=64),
        LayerCost("l2", forward_flops=2_000.0, parameter_count=200, output_elements=32),
        LayerCost("l3", forward_flops=2_000.0, parameter_count=200, output_elements=32),
        LayerCost("l4", forward_flops=1_000.0, parameter_count=100, output_elements=16),
    )
    return ArchitectureSpec(
        name="tiny",
        layers=layers,
        input_elements=128,
        num_classes=10,
        head_flops=100.0,
        head_parameter_count=170,
    )


@pytest.fixture
def resnet56():
    """The full ResNet-56 cost descriptor."""
    return resnet56_spec()


@pytest.fixture
def resnet56_profile(resnet56):
    """Split profile of ResNet-56 with a coarse granularity (fast tests)."""
    return profile_architecture(resnet56, granularity=9)


@pytest.fixture
def two_agents() -> tuple[Agent, Agent]:
    """A slow (0.5 CPU) and a fast (2 CPU) agent with 50 Mbps links."""
    slow = Agent(
        agent_id=0,
        profile=ResourceProfile(cpu_share=0.5, bandwidth_mbps=50.0),
        num_samples=1_000,
        batch_size=100,
    )
    fast = Agent(
        agent_id=1,
        profile=ResourceProfile(cpu_share=2.0, bandwidth_mbps=50.0),
        num_samples=1_000,
        batch_size=100,
    )
    return slow, fast


@pytest.fixture
def small_registry(rng) -> AgentRegistry:
    """Six-agent heterogeneous population."""
    profiles = [
        ResourceProfile(4.0, 100.0),
        ResourceProfile(2.0, 50.0),
        ResourceProfile(1.0, 50.0),
        ResourceProfile(1.0, 20.0),
        ResourceProfile(0.5, 20.0),
        ResourceProfile(0.2, 10.0),
    ]
    return AgentRegistry.build(
        num_agents=6,
        rng=rng,
        samples_per_agent=600,
        batch_size=100,
        profiles=profiles,
    )


@pytest.fixture
def small_link_model(small_registry) -> LinkModel:
    """Fully connected link model over the six-agent population."""
    return LinkModel(full_topology(small_registry.ids))
