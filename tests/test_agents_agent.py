"""Tests for the Agent timing-plane quantities."""

import pytest

from repro.agents.agent import Agent
from repro.agents.resources import ResourceProfile


def make_agent(cpu=1.0, bandwidth=50.0, samples=1_000, batch=100):
    return Agent(
        agent_id=0,
        profile=ResourceProfile(cpu_share=cpu, bandwidth_mbps=bandwidth),
        num_samples=samples,
        batch_size=batch,
    )


class TestAgentBatches:
    def test_num_batches_rounds_up(self):
        assert make_agent(samples=250, batch=100).num_batches == 3

    def test_no_samples_no_batches(self):
        assert make_agent(samples=0).num_batches == 0

    def test_batches_per_round_scales_with_epochs(self):
        agent = make_agent(samples=300, batch=100)
        agent.local_epochs = 2
        assert agent.batches_per_round == 6

    def test_rejects_negative_samples(self):
        with pytest.raises(ValueError):
            make_agent(samples=-1)

    def test_rejects_zero_batch_size(self):
        with pytest.raises(ValueError):
            make_agent(batch=0)


class TestProcessingSpeed:
    def test_speed_proportional_to_cpu(self):
        flops = 1e9
        slow = make_agent(cpu=1.0).processing_speed(flops)
        fast = make_agent(cpu=2.0).processing_speed(flops)
        assert fast > slow

    def test_individual_training_time_inverse_of_speed(self):
        agent = make_agent(cpu=1.0, samples=1_000, batch=100)
        flops = 1e9
        expected = agent.batches_per_round / agent.processing_speed(flops)
        assert agent.individual_training_time(flops) == pytest.approx(expected)

    def test_faster_agent_trains_faster(self):
        flops = 1e9
        assert make_agent(cpu=4.0).individual_training_time(flops) < make_agent(
            cpu=0.5
        ).individual_training_time(flops)

    def test_no_data_no_time(self):
        assert make_agent(samples=0).individual_training_time(1e9) == 0.0

    def test_rejects_non_positive_flops(self):
        with pytest.raises(ValueError):
            make_agent().processing_speed(0.0)


class TestAgentProfileUpdates:
    def test_update_profile(self):
        agent = make_agent(cpu=1.0)
        agent.update_profile(ResourceProfile(cpu_share=2.0, bandwidth_mbps=10.0))
        assert agent.profile.cpu_share == 2.0

    def test_is_connected_tracks_profile(self):
        agent = make_agent(bandwidth=0.0)
        assert not agent.is_connected
        agent.update_profile(ResourceProfile(cpu_share=1.0, bandwidth_mbps=10.0))
        assert agent.is_connected

    def test_agent_hashable_by_id(self):
        assert hash(make_agent()) == hash(make_agent())
