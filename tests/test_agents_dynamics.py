"""Tests for dynamic resource churn."""

import numpy as np
import pytest

from repro.agents.dynamics import ResourceChurn
from repro.agents.registry import AgentRegistry


class TestChurnTrigger:
    def test_does_not_trigger_at_round_zero(self):
        assert not ResourceChurn(interval_rounds=100).should_trigger(0)

    def test_triggers_on_interval(self):
        churn = ResourceChurn(interval_rounds=100)
        assert churn.should_trigger(100)
        assert churn.should_trigger(200)
        assert not churn.should_trigger(150)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            ResourceChurn(fraction=1.5)

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            ResourceChurn(interval_rounds=0)


class TestChurnApplication:
    def test_apply_changes_requested_fraction(self, rng):
        registry = AgentRegistry.build(num_agents=20, rng=rng)
        churn = ResourceChurn(fraction=0.2, interval_rounds=100)
        changed = churn.apply(registry, np.random.default_rng(0))
        assert len(changed) == 4

    def test_apply_changes_profiles(self, rng):
        registry = AgentRegistry.build(num_agents=10, rng=rng)
        before = {agent.agent_id: agent.profile for agent in registry}
        churn = ResourceChurn(fraction=1.0, interval_rounds=100)
        changed = churn.apply(registry, np.random.default_rng(1))
        assert len(changed) == 10
        after = {agent.agent_id: agent.profile for agent in registry}
        # At least some profiles must differ (all re-drawn from the grid).
        assert any(before[i] != after[i] for i in before)

    def test_zero_fraction_changes_nothing(self, rng):
        registry = AgentRegistry.build(num_agents=10, rng=rng)
        churn = ResourceChurn(fraction=0.0, interval_rounds=100)
        assert churn.apply(registry, np.random.default_rng(2)) == []

    def test_maybe_apply_respects_interval(self, rng):
        registry = AgentRegistry.build(num_agents=10, rng=rng)
        churn = ResourceChurn(fraction=0.5, interval_rounds=10)
        assert churn.maybe_apply(5, registry, np.random.default_rng(3)) == []
        assert len(churn.maybe_apply(10, registry, np.random.default_rng(3))) == 5

    def test_new_profiles_remain_connected(self, rng):
        registry = AgentRegistry.build(num_agents=10, rng=rng)
        churn = ResourceChurn(fraction=1.0, interval_rounds=1)
        churn.apply(registry, np.random.default_rng(4))
        assert all(agent.is_connected for agent in registry)
