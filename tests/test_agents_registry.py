"""Tests for the agent registry."""

import numpy as np
import pytest

from repro.agents.agent import Agent
from repro.agents.registry import AgentRegistry
from repro.agents.resources import ResourceProfile


class TestRegistryConstruction:
    def test_build_creates_requested_population(self, rng):
        registry = AgentRegistry.build(num_agents=8, rng=rng, samples_per_agent=500)
        assert len(registry) == 8
        assert registry.total_samples == 4_000

    def test_build_with_per_agent_sizes(self, rng):
        sizes = [100, 200, 300]
        registry = AgentRegistry.build(num_agents=3, rng=rng, samples_per_agent=sizes)
        assert [agent.num_samples for agent in registry] == sizes

    def test_build_size_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            AgentRegistry.build(num_agents=3, rng=rng, samples_per_agent=[100, 200])

    def test_build_profile_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            AgentRegistry.build(
                num_agents=3,
                rng=rng,
                profiles=[ResourceProfile(1.0, 10.0)],
            )

    def test_duplicate_ids_rejected(self):
        registry = AgentRegistry()
        agent = Agent(agent_id=1, profile=ResourceProfile(1.0, 10.0), num_samples=10)
        registry.add(agent)
        with pytest.raises(ValueError):
            registry.add(Agent(agent_id=1, profile=ResourceProfile(1.0, 10.0), num_samples=5))


class TestRegistryAccess:
    def test_get_and_contains(self, small_registry):
        assert 0 in small_registry
        assert small_registry.get(0).agent_id == 0
        assert 999 not in small_registry

    def test_get_unknown_raises(self, small_registry):
        with pytest.raises(KeyError):
            small_registry.get(999)

    def test_iteration_order_stable(self, small_registry):
        assert [a.agent_id for a in small_registry] == small_registry.ids

    def test_agents_property(self, small_registry):
        assert len(small_registry.agents) == len(small_registry)


class TestParticipationSampling:
    def test_sampling_fraction(self, rng):
        registry = AgentRegistry.build(num_agents=50, rng=rng)
        sample = registry.sample_participants(0.2, rng)
        assert len(sample) == 10

    def test_sampling_respects_minimum(self, rng):
        registry = AgentRegistry.build(num_agents=10, rng=rng)
        sample = registry.sample_participants(0.01, rng, minimum=2)
        assert len(sample) >= 2

    def test_sampling_no_duplicates(self, rng):
        registry = AgentRegistry.build(num_agents=30, rng=rng)
        sample = registry.sample_participants(0.5, rng)
        ids = [agent.agent_id for agent in sample]
        assert len(ids) == len(set(ids))

    def test_sampling_full_fraction_returns_everyone(self, rng):
        registry = AgentRegistry.build(num_agents=12, rng=rng)
        assert len(registry.sample_participants(1.0, rng)) == 12

    def test_invalid_fraction_rejected(self, rng):
        registry = AgentRegistry.build(num_agents=5, rng=rng)
        with pytest.raises(ValueError):
            registry.sample_participants(1.5, rng)
