"""Tests for resource profiles and assignment strategies."""

import numpy as np
import pytest

from repro.agents.resources import (
    BANDWIDTH_PROFILES_MBPS,
    CONNECTED_BANDWIDTH_PROFILES_MBPS,
    CPU_PROFILES,
    ResourceProfile,
    assign_profiles_evenly,
    assign_profiles_randomly,
    default_profile_grid,
)


class TestResourceProfile:
    def test_paper_profiles_present(self):
        assert CPU_PROFILES == (4.0, 2.0, 1.0, 0.5, 0.2)
        assert BANDWIDTH_PROFILES_MBPS == (0.0, 10.0, 20.0, 50.0, 100.0)

    def test_bandwidth_conversion(self):
        profile = ResourceProfile(cpu_share=1.0, bandwidth_mbps=8.0)
        assert profile.bandwidth_bytes_per_second == pytest.approx(1_000_000.0)

    def test_disconnected_profile(self):
        assert not ResourceProfile(cpu_share=1.0, bandwidth_mbps=0.0).is_connected
        assert ResourceProfile(cpu_share=1.0, bandwidth_mbps=10.0).is_connected

    def test_rejects_non_positive_cpu(self):
        with pytest.raises(ValueError):
            ResourceProfile(cpu_share=0.0, bandwidth_mbps=10.0)

    def test_rejects_negative_bandwidth(self):
        with pytest.raises(ValueError):
            ResourceProfile(cpu_share=1.0, bandwidth_mbps=-1.0)

    def test_with_cpu_and_bandwidth(self):
        profile = ResourceProfile(cpu_share=1.0, bandwidth_mbps=10.0)
        assert profile.with_cpu(2.0).cpu_share == 2.0
        assert profile.with_bandwidth(50.0).bandwidth_mbps == 50.0
        # Original unchanged (frozen dataclass).
        assert profile.cpu_share == 1.0

    def test_profile_is_hashable(self):
        assert len({ResourceProfile(1.0, 10.0), ResourceProfile(1.0, 10.0)}) == 1


class TestProfileGrid:
    def test_grid_excludes_disconnected_by_default(self):
        grid = default_profile_grid()
        assert all(profile.is_connected for profile in grid)
        assert len(grid) == len(CPU_PROFILES) * len(CONNECTED_BANDWIDTH_PROFILES_MBPS)

    def test_grid_with_disconnected(self):
        grid = default_profile_grid(include_disconnected=True)
        assert len(grid) == len(CPU_PROFILES) * len(BANDWIDTH_PROFILES_MBPS)


class TestEvenAssignment:
    def test_counts_per_tier_balanced(self, rng):
        profiles = assign_profiles_evenly(20, rng)
        counts = {cpu: 0 for cpu in CPU_PROFILES}
        for profile in profiles:
            counts[profile.cpu_share] += 1
        assert all(count == 4 for count in counts.values())

    def test_handles_remainder(self, rng):
        profiles = assign_profiles_evenly(12, rng)
        assert len(profiles) == 12

    def test_all_connected(self, rng):
        assert all(p.is_connected for p in assign_profiles_evenly(15, rng))

    def test_rejects_zero_agents(self, rng):
        with pytest.raises(ValueError):
            assign_profiles_evenly(0, rng)

    def test_deterministic_given_rng(self):
        a = assign_profiles_evenly(10, np.random.default_rng(3))
        b = assign_profiles_evenly(10, np.random.default_rng(3))
        assert a == b


class TestRandomAssignment:
    def test_length(self, rng):
        assert len(assign_profiles_randomly(25, rng)) == 25

    def test_values_from_grid(self, rng):
        for profile in assign_profiles_randomly(50, rng):
            assert profile.cpu_share in CPU_PROFILES
            assert profile.bandwidth_mbps in CONNECTED_BANDWIDTH_PROFILES_MBPS

    def test_rejects_zero_agents(self, rng):
        with pytest.raises(ValueError):
            assign_profiles_randomly(0, rng)
