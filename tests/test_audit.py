"""Fault-injection tests for the tamper-evident audit chain.

Sealed JSONL traces from real runs in all three execution modes must
verify clean; flipping one byte, dropping one event, or reordering two
events must fail verification at exactly the first divergent event index.
Also covers the hash-chained run-history audit record, the chain-folded
campaign summary, and the ``comdml trace verify`` CLI exit codes.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.experiments.campaign import CampaignSpec, CellResult, CampaignResult
from repro.experiments.reporting import campaign_summary
from repro.experiments.runner import ExperimentRunner
from repro.experiments.scenarios import ScenarioConfig
from repro.runtime.audit import (
    ALGORITHM,
    ChainState,
    canonical_digest,
    canonical_json,
    genesis_head,
    read_sealed_events,
    verify_campaign_summary,
    verify_history_record,
    verify_sealed_jsonl,
)

GOLDEN_PATH = Path(__file__).parent / "data" / "runtime_sync_golden.json"
SCENARIO = json.loads(GOLDEN_PATH.read_text())["scenario"]


def sealed_run(tmp_path: Path, mode: str = "sync", rounds: int = 4) -> Path:
    """Record a small real run to a sealed JSONL trace."""
    scenario = dict(SCENARIO, max_rounds=rounds, execution_mode=mode)
    runner = ExperimentRunner(ScenarioConfig(**scenario))
    path = tmp_path / f"{mode}.jsonl"
    runner.run_method_sealed("ComDML", path, segment_events=10)
    return path


def event_lines(path: Path) -> list[int]:
    """Line numbers (0-based) of the event (non-seal) records."""
    lines = path.read_text().splitlines()
    return [i for i, line in enumerate(lines) if "seal" not in json.loads(line)]


# ----------------------------------------------------------------------
# Chain primitives
# ----------------------------------------------------------------------

class TestChainPrimitives:
    def test_canonical_json_is_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})
        assert canonical_digest({"b": 1, "a": 2}) == canonical_digest(
            {"a": 2, "b": 1}
        )

    def test_canonical_json_rejects_nan(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})

    def test_chain_is_deterministic_and_order_sensitive(self):
        a, b = ChainState(), ChainState()
        for record in ({"r": 0}, {"r": 1}, {"r": 2}):
            a.update(record)
            b.update(record)
        assert a.head == b.head
        assert a.index == 3
        c = ChainState()
        for record in ({"r": 1}, {"r": 0}, {"r": 2}):  # swapped
            c.update(record)
        assert c.head != a.head

    def test_genesis_head_commits_to_algorithm_label(self):
        assert genesis_head() == ChainState().head
        assert ALGORITHM in ("sha256-chain-v1",)


# ----------------------------------------------------------------------
# Sealed traces: clean verification across execution modes
# ----------------------------------------------------------------------

class TestCleanVerification:
    @pytest.mark.parametrize("mode", ["sync", "semi-sync", "async"])
    def test_untampered_trace_verifies_clean(self, tmp_path, mode):
        path = sealed_run(tmp_path, mode)
        result = verify_sealed_jsonl(path)
        assert result.ok, result.error
        assert result.events == len(event_lines(path))
        assert result.first_divergent_index is None

    def test_read_sealed_events_round_trips(self, tmp_path):
        path = sealed_run(tmp_path)
        events = read_sealed_events(path)
        assert events
        assert all({"timestamp", "round_index", "kind"} <= set(e) for e in events)

    def test_missing_file_reports_unreadable(self, tmp_path):
        result = verify_sealed_jsonl(tmp_path / "absent.jsonl")
        assert not result.ok
        assert "unreadable" in result.error


# ----------------------------------------------------------------------
# Tamper detection: exact first divergent index
# ----------------------------------------------------------------------

class TestTamperDetection:
    @pytest.mark.parametrize("target_event", [0, 5, 12])
    def test_byte_flip_fails_at_exact_index(self, tmp_path, target_event):
        path = sealed_run(tmp_path)
        lines = path.read_text().splitlines()
        line_no = event_lines(path)[target_event]
        record = json.loads(lines[line_no])
        record["event"]["timestamp"] += 1e-9  # one perturbed value
        lines[line_no] = canonical_json(record)
        tampered = tmp_path / "flip.jsonl"
        tampered.write_text("\n".join(lines) + "\n")
        result = verify_sealed_jsonl(tampered)
        assert not result.ok
        assert result.first_divergent_index == target_event

    @pytest.mark.parametrize("target_event", [0, 7])
    def test_dropped_event_fails_at_exact_index(self, tmp_path, target_event):
        path = sealed_run(tmp_path)
        lines = path.read_text().splitlines()
        del lines[event_lines(path)[target_event]]
        tampered = tmp_path / "drop.jsonl"
        tampered.write_text("\n".join(lines) + "\n")
        result = verify_sealed_jsonl(tampered)
        assert not result.ok
        assert result.first_divergent_index == target_event

    @pytest.mark.parametrize("target_event", [0, 9])
    def test_reordered_events_fail_at_exact_index(self, tmp_path, target_event):
        path = sealed_run(tmp_path)
        lines = path.read_text().splitlines()
        indices = event_lines(path)
        a, b = indices[target_event], indices[target_event + 1]
        lines[a], lines[b] = lines[b], lines[a]
        tampered = tmp_path / "swap.jsonl"
        tampered.write_text("\n".join(lines) + "\n")
        result = verify_sealed_jsonl(tampered)
        assert not result.ok
        assert result.first_divergent_index == target_event

    def test_truncated_trace_is_unsealed(self, tmp_path):
        path = sealed_run(tmp_path)
        lines = path.read_text().splitlines()
        truncated = tmp_path / "cut.jsonl"
        truncated.write_text("\n".join(lines[: len(lines) // 2]) + "\n")
        result = verify_sealed_jsonl(truncated)
        assert not result.ok

    def test_forged_final_seal_head_is_rejected(self, tmp_path):
        path = sealed_run(tmp_path)
        lines = path.read_text().splitlines()
        seal = json.loads(lines[-1])
        assert seal["seal"].get("final")
        seal["seal"]["head"] = "0" * 64
        lines[-1] = canonical_json(seal)
        tampered = tmp_path / "forged.jsonl"
        tampered.write_text("\n".join(lines) + "\n")
        assert not verify_sealed_jsonl(tampered).ok

    def test_content_after_final_seal_is_rejected(self, tmp_path):
        path = sealed_run(tmp_path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"i": 999, "event": {}, "chain": "00"}\n')
        assert not verify_sealed_jsonl(path).ok


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

class TestTraceCLI:
    def test_record_then_verify_exit_codes(self, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        assert (
            cli_main(
                [
                    "trace",
                    "record",
                    "--out",
                    str(out),
                    "--max-rounds",
                    "3",
                    "--agents",
                    "6",
                ]
            )
            == 0
        )
        assert cli_main(["trace", "verify", str(out)]) == 0
        captured = capsys.readouterr()
        assert "OK" in captured.out
        # single-byte mutation → exit 1 with the exact divergent index
        lines = out.read_text().splitlines()
        line_no = event_lines(out)[2]
        lines[line_no] = lines[line_no].replace('"kind":"', '"kind":"x', 1)
        bad = tmp_path / "bad.jsonl"
        bad.write_text("\n".join(lines) + "\n")
        assert cli_main(["trace", "verify", str(bad)]) == 1
        captured = capsys.readouterr()
        assert "first divergent event index: 2" in captured.err


# ----------------------------------------------------------------------
# Run-history audit records
# ----------------------------------------------------------------------

class TestHistoryAuditRecord:
    def _history(self):
        scenario = dict(SCENARIO, max_rounds=4)
        return ExperimentRunner(ScenarioConfig(**scenario)).run_method("ComDML")

    def test_audit_record_verifies_and_extends_digest(self):
        history = self._history()
        record = history.audit_record()
        assert record["algorithm"] == ALGORITHM
        assert record["digest"] == history.digest()
        assert len(record["rounds"]) == len(history)
        assert verify_history_record(record).ok

    def test_tampered_round_localised_exactly(self):
        record = self._history().audit_record()
        record["rounds"][2]["record"]["accuracy"] += 1e-12
        result = verify_history_record(record)
        assert not result.ok
        assert result.first_divergent_index == 2

    def test_tampered_head_is_rejected(self):
        record = self._history().audit_record()
        record["head"] = "f" * 64
        assert not verify_history_record(record)


# ----------------------------------------------------------------------
# Campaign summary chain
# ----------------------------------------------------------------------

def _fake_campaign_result() -> CampaignResult:
    spec = CampaignSpec.create(
        name="audit-demo",
        runner="demo:run",
        axes={"x": (1, 2, 3)},
        base={},
    )
    cells = []
    for index, x in enumerate((1, 2, 3)):
        payload = {"x": x, "value": x * x}
        cells.append(
            CellResult(
                index=index,
                params={"x": x},
                key=f"key-{index}",
                status="miss",
                payload=payload,
                elapsed_seconds=0.0,
                payload_digest=canonical_digest(payload),
            )
        )
    return CampaignResult(
        spec=spec, cells=tuple(cells), wall_seconds=0.1, jobs=1
    )


class TestCampaignSummaryChain:
    def test_summary_chain_verifies_clean(self):
        summary = campaign_summary(_fake_campaign_result())
        assert verify_campaign_summary(summary).ok
        assert summary["digest"] == summary["per_cell"][-1]["chain"]
        assert all(len(r["payload_digest"]) == 64 for r in summary["per_cell"])

    def test_tampered_cell_digest_localised(self):
        summary = campaign_summary(_fake_campaign_result())
        summary["per_cell"][1]["payload_digest"] = "0" * 64
        result = verify_campaign_summary(summary)
        assert not result.ok
        assert result.first_divergent_index == 1

    def test_tampered_overall_digest_rejected(self):
        summary = campaign_summary(_fake_campaign_result())
        summary["digest"] = "0" * 64
        assert not verify_campaign_summary(summary)

    def test_summary_consumes_streamed_digests(self):
        """The summary uses the digest stamped on each CellResult."""
        result = _fake_campaign_result()
        summary = campaign_summary(result)
        for cell, row in zip(result.cells, summary["per_cell"]):
            assert row["payload_digest"] == cell.payload_digest
